type outcome = {
  distributive : bool;
  blocking : string option;
  steps : string list;
}

let rec simplify_for_assessment (p : Plan.t) : Plan.t =
  let s = simplify_for_assessment in
  match p with
  | Plan.Distinct q -> s q
  | Plan.Row_num (_, q) -> s q
  | Plan.Lit_table _ | Plan.Doc _ | Plan.Fix_ref _ -> p
  | Plan.Project (cols, q) -> Plan.Project (cols, s q)
  | Plan.Select (c, q) -> Plan.Select (c, s q)
  | Plan.Join (pred, a, b) -> Plan.Join (pred, s a, s b)
  | Plan.Cross (a, b) -> Plan.Cross (s a, s b)
  | Plan.Union (a, b) -> Plan.Union (s a, s b)
  | Plan.Difference (a, b) -> Plan.Difference (s a, s b)
  | Plan.Aggr (agg, spec, q) -> Plan.Aggr (agg, spec, s q)
  | Plan.Fun (prim, spec, q) -> Plan.Fun (prim, spec, s q)
  | Plan.Tag (c, q) -> Plan.Tag (c, s q)
  | Plan.Step (axis, test, col, q) -> Plan.Step (axis, test, col, s q)
  | Plan.Id_join (a, b) -> Plan.Id_join (s a, s b)
  | Plan.Construct (k, q) -> Plan.Construct (k, s q)
  | Plan.Mu f -> Plan.Mu { f with seed = s f.seed; body = s f.body }
  | Plan.Mu_delta f -> Plan.Mu_delta { f with seed = s f.seed; body = s f.body }
  | Plan.Template (n, q) -> Plan.Template (n, s q)
  | Plan.Iterate it ->
    (* The shared map/source nodes must remain physically shared with
       their occurrences inside it_result, so simplification keeps
       Iterate nodes intact (δ/̺ inside stay — harmless, the big step
       crosses the template as a whole). *)
    Plan.Iterate it

type state =
  | Clean  (** the subtree does not involve the recursion input *)
  | Carries of string list  (** ∪ pushed to the subtree root; crossed ops *)
  | Blocked of string * string list

let check ?(simplify = true) ?(stratified = false) ~fix_id plan =
  (* [cuts] holds physical map nodes of enclosing Iterate templates:
     the ∪ reaching the body through the iterated binding is accounted
     for by the big step, so a cut node reads as Clean. δ and ̺ are
     "removed" on the fly when [simplify] is set — rewriting the plan
     would break the physical sharing the templates rely on. *)
  let rec go ?(cuts = []) (p : Plan.t) : state =
    let go ?(cuts = cuts) p = go ~cuts p in
    if List.memq p cuts then Clean
    else
    match p with
    | Plan.Distinct q when simplify -> go q
    (* ̺ is NOT skipped: set-oriented compilation emits no order
       bookkeeping, so every Row_num in a plan realizes a positional
       predicate and must block the push (Table 1). *)
    | Plan.Fix_ref (id, _) -> if id = fix_id then Carries [] else Clean
    | Plan.Lit_table _ | Plan.Doc _ -> Clean
    | Plan.Iterate it -> (
      (* Big step across the iteration template (Figure 7(b)). The
         iterated source and the residual body (everything reached not
         through the map) mirror rules FOR2/STEP2 and FOR1/STEP1:
         - ∪ through the source only, body independent → push across;
         - ∪ through lifted variables in the body only → push across
           (itemwise iteration distributes over the body's ∪);
         - ∪ through both → the linearity violation of FOR1/FOR2. *)
      let st_source = go it.Plan.it_source in
      let st_rest = go ~cuts:(it.Plan.it_map :: cuts) it.Plan.it_result in
      let sym = Plan.op_symbol p in
      match (st_source, st_rest) with
      | (Blocked (b, s), _) | (_, Blocked (b, s)) -> Blocked (b, s)
      | (Clean, Clean) -> Clean
      | (Clean, Carries steps) -> Carries (sym :: steps)
      | (Carries steps, Clean) -> Carries (sym :: steps)
      | (Carries sl, Carries sr) ->
        Blocked
          ( Printf.sprintf
              "%s (∪ reaches both the iterated input and the body)" sym,
            sl @ sr ))
    | Plan.Template (name, body) -> (
      (* Big step: one crossing for the whole template, provided the ∪
         traverses its contents. *)
      match go body with
      | Clean -> Clean
      | Carries steps -> Carries (("«" ^ name ^ "»") :: steps)
      | Blocked _ as b -> b)
    | Plan.Id_join (ctx, arg) -> (
      (* Figure 9(a): the id lookup is a join against the document's
         id|ref table. The ctx input only locates that table (the roots
         of the context nodes); the compiler guarantees ctx and arg are
         iteration-aligned copies of the same binding, so the ∪ push
         follows the arg input and may ignore ctx carrying the ref. *)
      match (go ctx, go arg) with
      | (Blocked (b, s), _) | (_, Blocked (b, s)) -> Blocked (b, s)
      | (Clean, Clean) -> Clean
      | (_, Carries steps) | (Carries steps, Clean) ->
        Carries (Plan.op_symbol p :: steps))
    | Plan.Mu f | Plan.Mu_delta f -> (
      (* An outer recursion input feeding a nested fixpoint: the nested
         µ consumes its input repeatedly — conservative block. *)
      match (go f.seed, go f.body) with
      | (Clean, Clean) -> Clean
      | (Blocked (b, s), _) | (_, Blocked (b, s)) -> Blocked (b, s)
      | _ -> Blocked (Plan.op_symbol p, []))
    | _ -> (
      let sym = Plan.op_symbol p in
      match Plan.children p with
      | [ child ] -> (
        match go child with
        | Clean -> Clean
        | Blocked _ as b -> b
        | Carries steps ->
          if Plan.push_through p then Carries (sym :: steps)
          else Blocked (sym, steps))
      | [ l; r ] -> (
        match (go l, go r) with
        | (Blocked (b, s), _) | (_, Blocked (b, s)) -> Blocked (b, s)
        | (Clean, Clean) -> Clean
        | (Carries sl, Carries sr) -> (
          match p with
          | Plan.Union _ -> Carries ((sym :: sl) @ sr)
          | _ ->
            Blocked
              ( Printf.sprintf "%s (∪ arrives on both inputs)" sym,
                sl @ sr ))
        | (Carries steps, Clean) ->
          (* stratified refinement: ∪ passes a difference when only the
             left (diminished) input carries it *)
          if
            Plan.push_through p
            || (stratified && match p with Plan.Difference _ -> true | _ -> false)
          then Carries (sym :: steps)
          else Blocked (sym, steps)
        | (Clean, Carries steps) ->
          if Plan.push_through p then Carries (sym :: steps)
          else Blocked (sym, steps))
      | _ -> Clean)
  in
  match go plan with
  | Clean ->
    (* The body ignores its recursion input entirely: trivially
       distributive (one round reaches the fixed point). *)
    { distributive = true; blocking = None; steps = [] }
  | Carries steps ->
    { distributive = true; blocking = None; steps = List.rev steps }
  | Blocked (b, steps) ->
    { distributive = false; blocking = Some b; steps = List.rev steps }

let pp_outcome ppf o =
  if o.distributive then
    Format.fprintf ppf "distributive (∪ pushed through: %s)"
      (String.concat " → " o.steps)
  else
    Format.fprintf ppf "NOT distributive (blocked at %s after %s)"
      (Option.value ~default:"?" o.blocking)
      (String.concat " → " o.steps)
