module Phys = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let rewrites = ref 0

let last_rewrite_count () = !rewrites

let is_empty_lit = function Plan.Lit_table (_, []) -> true | _ -> false

(* Re-project [p] onto [schema] (all names must exist in p). *)
let reproject schema p =
  if Plan.schema_of p = schema then p
  else Plan.Project (List.map (fun c -> (c, c)) schema, p)

(* One local simplification step at the root of [p]; children are
   already rewritten. *)
let step (p : Plan.t) : Plan.t =
  let hit q =
    incr rewrites;
    q
  in
  match p with
  (* δ is idempotent; the step join already emits distinct rows *)
  | Plan.Distinct (Plan.Distinct _ as q) -> hit q
  | Plan.Distinct (Plan.Step _ as q) -> hit q
  | Plan.Distinct (Plan.Id_join _ as q) -> hit q
  (* projection fusion: π_a(π_b(q)) = π_{a∘b}(q) *)
  | Plan.Project (outer, Plan.Project (inner, q)) ->
    let compose (n, o) =
      match List.assoc_opt o inner with
      | Some deeper -> (n, deeper)
      | None -> (n, o) (* unreachable for well-formed plans *)
    in
    hit (Plan.Project (List.map compose outer, q))
  (* identity projection *)
  | Plan.Project (cols, q)
    when List.for_all (fun (n, o) -> String.equal n o) cols
         && (try Plan.schema_of q = List.map fst cols with _ -> false) ->
    hit q
  (* units of ∪ *)
  | Plan.Union (a, b) when is_empty_lit a -> (
    match Plan.schema_of p with
    | schema -> hit (reproject schema b)
    | exception _ -> p)
  | Plan.Union (a, b) when is_empty_lit b ->
    ignore b;
    hit a
  (* difference with an empty subtrahend / minuend *)
  | Plan.Difference (a, b) when is_empty_lit b -> hit a
  | Plan.Difference (a, b) when is_empty_lit a ->
    ignore b;
    hit a (* a is the empty table: result is empty = a *)
  (* keyless equi-join is a cross product *)
  | Plan.Join ({ Plan.equi = []; theta = [] }, a, b) -> hit (Plan.Cross (a, b))
  | p -> p

let optimize plan =
  rewrites := 0;
  let memo : Plan.t Phys.t = Phys.create 64 in
  let rec go p =
    match Phys.find_opt memo p with
    | Some q -> q
    | None ->
      let q = step (rebuild p) in
      Phys.replace memo p q;
      q
  and rebuild (p : Plan.t) : Plan.t =
    match p with
    | Plan.Lit_table _ | Plan.Doc _ | Plan.Fix_ref _ -> p
    | Plan.Project (cols, q) -> Plan.Project (cols, go q)
    | Plan.Select (c, q) -> Plan.Select (c, go q)
    | Plan.Join (pred, a, b) -> Plan.Join (pred, go a, go b)
    | Plan.Cross (a, b) -> Plan.Cross (go a, go b)
    | Plan.Distinct q -> Plan.Distinct (go q)
    | Plan.Union (a, b) -> Plan.Union (go a, go b)
    | Plan.Difference (a, b) -> Plan.Difference (go a, go b)
    | Plan.Aggr (agg, spec, q) -> Plan.Aggr (agg, spec, go q)
    | Plan.Fun (prim, spec, q) -> Plan.Fun (prim, spec, go q)
    | Plan.Tag (c, q) -> Plan.Tag (c, go q)
    | Plan.Row_num (spec, q) -> Plan.Row_num (spec, go q)
    | Plan.Step (axis, test, col, q) -> Plan.Step (axis, test, col, go q)
    | Plan.Id_join (a, b) -> Plan.Id_join (go a, go b)
    | Plan.Construct (k, q) -> Plan.Construct (k, go q)
    | Plan.Mu f ->
      Plan.Mu { f with Plan.seed = go f.Plan.seed; body = go f.Plan.body }
    | Plan.Mu_delta f ->
      Plan.Mu_delta
        { f with Plan.seed = go f.Plan.seed; body = go f.Plan.body }
    | Plan.Template (n, q) -> Plan.Template (n, go q)
    | Plan.Iterate it ->
      Plan.Iterate
        { it with
          Plan.it_source = go it.Plan.it_source;
          it_map = go it.Plan.it_map;
          it_result = go it.Plan.it_result }
  in
  go plan
