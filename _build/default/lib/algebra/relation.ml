type t = { schema : string list; rows : Value.t array list }

let schema t = t.schema
let rows t = t.rows
let cardinal t = List.length t.rows

let create schema rows =
  let n = List.length schema in
  List.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Relation.create: row width %d, schema width %d"
             (Array.length r) n))
    rows;
  { schema; rows }

let empty schema = { schema; rows = [] }

let column_index t c =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Relation: unknown column %S" c)
    | x :: rest -> if String.equal x c then i else go (i + 1) rest
  in
  go 0 t.schema

let get t row c = row.(column_index t c)

let project renames t =
  let idx = List.map (fun (_, old) -> column_index t old) renames in
  { schema = List.map fst renames;
    rows =
      List.map (fun r -> Array.of_list (List.map (fun i -> r.(i)) idx)) t.rows
  }

let select p t = { t with rows = List.filter p t.rows }

let map_rows f schema t = { schema; rows = List.map f t.rows }

let append_column name f t =
  { schema = t.schema @ [ name ];
    rows = List.map (fun r -> Array.append r [| f r |]) t.rows }

let row_key r = Array.to_list (Array.map Value.key r)

let distinct t =
  let seen = Hashtbl.create (max 16 (List.length t.rows)) in
  let rows =
    List.filter
      (fun r ->
        let k = row_key r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      t.rows
  in
  { t with rows }

let union a b =
  if List.sort compare a.schema <> List.sort compare b.schema then
    invalid_arg "Relation.union: incompatible schemas";
  let b' =
    if a.schema = b.schema then b
    else project (List.map (fun c -> (c, c)) a.schema) b
  in
  { schema = a.schema; rows = a.rows @ b'.rows }

let difference a b =
  if List.sort compare a.schema <> List.sort compare b.schema then
    invalid_arg "Relation.difference: incompatible schemas";
  let b' =
    if a.schema = b.schema then b
    else project (List.map (fun c -> (c, c)) a.schema) b
  in
  let counts = Hashtbl.create (max 16 (List.length b'.rows)) in
  List.iter
    (fun r ->
      let k = row_key r in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    b'.rows;
  let rows =
    List.filter
      (fun r ->
        let k = row_key r in
        match Hashtbl.find_opt counts k with
        | Some n when n > 0 ->
          Hashtbl.replace counts k (n - 1);
          false
        | _ -> true)
      a.rows
  in
  { schema = a.schema; rows }

let rename_clashes left_schema right_schema =
  List.map
    (fun c -> if List.mem c left_schema then c ^ "'" else c)
    right_schema

let equi_join ?extra keys l r =
  let lidx = List.map (fun (lc, _) -> column_index l lc) keys in
  let ridx = List.map (fun (_, rc) -> column_index r rc) keys in
  (* Hash the right side on its key columns. *)
  let tbl = Hashtbl.create (max 16 (List.length r.rows)) in
  let key_of row idx = List.map (fun i -> Value.key row.(i)) idx in
  List.iter
    (fun row -> Hashtbl.add tbl (key_of row ridx) row)
    (List.rev r.rows);
  let out_schema = l.schema @ rename_clashes l.schema r.schema in
  let rows =
    List.concat_map
      (fun lrow ->
        let matches = Hashtbl.find_all tbl (key_of lrow lidx) in
        List.filter_map
          (fun rrow ->
            let keep =
              match extra with None -> true | Some f -> f lrow rrow
            in
            if keep then Some (Array.append lrow rrow) else None)
          matches)
      l.rows
  in
  { schema = out_schema; rows }

let cross l r =
  let out_schema = l.schema @ rename_clashes l.schema r.schema in
  { schema = out_schema;
    rows =
      List.concat_map
        (fun lrow -> List.map (fun rrow -> Array.append lrow rrow) r.rows)
        l.rows }

let group_count ~partition ~result t =
  match partition with
  | None ->
    { schema = [ result ];
      rows = [ [| Value.Int (List.length t.rows) |] ] }
  | Some part ->
    let pi = column_index t part in
    let counts = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        let k = Value.key r.(pi) in
        (match Hashtbl.find_opt counts k with
        | None ->
          order := (k, r.(pi)) :: !order;
          Hashtbl.replace counts k 1
        | Some n -> Hashtbl.replace counts k (n + 1)))
      t.rows;
    { schema = [ part; result ];
      rows =
        List.rev_map
          (fun (k, v) -> [| v; Value.Int (Hashtbl.find counts k) |])
          !order }

let sort_by cols t =
  let idx = List.map (column_index t) cols in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | i :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
    in
    go idx
  in
  { t with rows = List.stable_sort cmp t.rows }

let number ~order ~partition ~result t =
  let sorted =
    sort_by (match partition with None -> order | Some p -> p :: order) t
  in
  let pi = Option.map (column_index t) partition in
  let rows =
    let rank = ref 0 in
    let current = ref None in
    List.map
      (fun r ->
        (match pi with
        | None -> incr rank
        | Some i ->
          let key = r.(i) in
          (match !current with
          | Some k when Value.equal k key -> incr rank
          | _ ->
            current := Some key;
            rank := 1));
        Array.append r [| Value.Int !rank |])
      sorted.rows
  in
  { schema = t.schema @ [ result ]; rows }

let tag_counter = ref 0

let tag ~result t =
  { schema = t.schema @ [ result ];
    rows =
      List.map
        (fun r ->
          incr tag_counter;
          Array.append r [| Value.Int !tag_counter |])
        t.rows }

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.schema);
  List.iter
    (fun r ->
      Format.fprintf ppf "%s@,"
        (String.concat " | "
           (Array.to_list (Array.map (Format.asprintf "%a" Value.pp) r))))
    t.rows;
  Format.fprintf ppf "@]"
