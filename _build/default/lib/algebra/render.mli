(** Plan rendering: ASCII trees (for terminal output à la Figure 9) and
    Graphviz dot. *)

(** ASCII tree, root at top. *)
val to_ascii : Plan.t -> string

(** Graphviz [digraph]. *)
val to_dot : Plan.t -> string

(** One-line summary: operator count and depth. *)
val summary : Plan.t -> string
