(** The relational algebra dialect of Table 1, as a plan DAG.

    Non-textbook operators ([step], [id-join], the fixpoint operators µ
    and µ∆) are first-class here, exactly as the Pathfinder compiler
    emits them; ε/τ node constructors appear as {!Construct} (the
    compiler never emits them inside recursion bodies — their presence
    voids distributivity).

    {!Fix_ref} marks the recursion input of a fixpoint body: µ/µ∆
    rebind it on every iteration, and the algebraic distributivity
    check of Section 4.1 starts its ∪ push-up there. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

(** Primitive row functions (the ⊚ operator family). *)
type prim =
  | P_cmp of cmp  (** value comparison of two columns *)
  | P_arith of Fixq_lang.Ast.arith
  | P_and
  | P_or
  | P_not
  | P_data  (** node → untyped atomic (string value) *)
  | P_name  (** node → element/attribute name *)
  | P_root  (** node → root of its tree *)
  | P_ebv  (** item → effective boolean value (itemwise) *)
  | P_const of Value.t

type agg = A_count | A_sum | A_max | A_min

type join_pred = {
  equi : (string * string) list;  (** (left column, right column) *)
  theta : (string * cmp * string) list;  (** extra comparisons *)
}

type agg_spec = {
  agg_result : string;
  agg_input : string option;  (** [None] for count *)
  agg_partition : string option;
}

type fun_spec = { fun_result : string; fun_args : string list }

type num_spec = {
  num_result : string;
  num_order : string list;
  num_partition : string option;
}

type t =
  | Lit_table of string list * Value.t array list
  | Doc of string  (** document node of a registered URI; schema [item] (one row) *)
  | Fix_ref of int * string list
  | Project of (string * string) list * t  (** (new, old) *)
  | Select of string * t  (** keep rows whose boolean column is true *)
  | Join of join_pred * t * t
  | Cross of t * t
  | Distinct of t
  | Union of t * t
  | Difference of t * t
  | Aggr of agg * agg_spec * t
  | Fun of prim * fun_spec * t
  | Tag of string * t  (** # — unique row tags *)
  | Row_num of num_spec * t  (** ̺ *)
  | Step of Fixq_xdm.Axis.t * Fixq_xdm.Axis.test * string * t
      (** XPath step join over the named node column (staircase join);
          the step replaces that column, other columns are preserved,
          duplicates eliminated *)
  | Id_join of t * t
      (** [fn:id]: ctx plan × arg plan — the arg's [iter|item] strings
          are matched against the ID index of the documents of the ctx
          nodes (the relational id|ref table join of Figure 9(a));
          output is the ctx schema with [item] holding matched
          elements *)
  | Construct of string * t  (** ε, τ, … — opaque here *)
  | Mu of fix
  | Mu_delta of fix
  | Template of string * t
      (** compiler-emitted plan template; the ∪ push-up may cross it in
          one big step (Figure 7(b)) *)
  | Iterate of iterate
      (** the loop-lifting iteration template ([for]-loops, general path
          right-hand sides, filters): [it_result] is the complete
          expanded plan (shared DAG); [it_source] and [it_map] expose
          the iterated input and the # map node so the ∪ push-up can
          take the big step of Figure 7(b) with the linearity check of
          rules FOR1/FOR2 *)

and fix = { fix_id : int; seed : t; body : t }

and iterate = {
  it_name : string;  (** "loop" or "filter" *)
  it_source : t;
  it_map : t;  (** the physical # (Tag) node binding iterations *)
  it_result : t;
}

(** Operator name as in Table 1 (π, σ, ⋈, ×, δ, ∪, \, count, ⊚, #, ̺,
    step, ε, µ, µ∆). *)
val op_symbol : t -> string

(** The Push? column of Table 1 for the operator at the root of the
    plan: may a ∪ arriving at (one of) its input(s) be pushed above
    it? *)
val push_through : t -> bool

(** Direct children of the root operator. *)
val children : t -> t list

(** Does a [Fix_ref] with the given id occur in the plan (not counting
    nested fixpoint bodies' own refs)? *)
val contains_fix_ref : int -> t -> bool

(** Output schema of a plan. Raises [Invalid_argument] when the plan is
    ill-formed (unknown columns, schema mismatches). *)
val schema_of : t -> string list

(** Fresh fixpoint-reference ids for compilers/tests. *)
val fresh_fix_id : unit -> int
