lib/algebra/value.mli: Fixq_xdm Format
