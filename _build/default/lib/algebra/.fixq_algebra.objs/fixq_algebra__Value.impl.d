lib/algebra/value.ml: Bool Fixq_xdm Float Format Int String
