lib/algebra/relation.ml: Array Format Hashtbl List Option Printf String Value
