lib/algebra/compile.ml: Array Fixq_lang Fixq_xdm Format Hashtbl List Map Plan Relation String Value
