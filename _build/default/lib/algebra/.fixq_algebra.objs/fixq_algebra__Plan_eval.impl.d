lib/algebra/plan_eval.ml: Array Fixq_lang Fixq_store Fixq_xdm Float Format Hashtbl Int List Map Option Plan Relation String Value
