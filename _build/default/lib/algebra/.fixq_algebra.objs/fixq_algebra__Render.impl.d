lib/algebra/render.ml: Buffer List Plan Printf String
