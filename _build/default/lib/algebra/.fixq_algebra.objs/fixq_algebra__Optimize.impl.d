lib/algebra/optimize.ml: Hashtbl List Plan String
