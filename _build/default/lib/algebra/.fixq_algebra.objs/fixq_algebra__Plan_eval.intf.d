lib/algebra/plan_eval.mli: Fixq_lang Fixq_xdm Hashtbl Plan Relation
