lib/algebra/relation.mli: Format Value
