lib/algebra/optimize.mli: Plan
