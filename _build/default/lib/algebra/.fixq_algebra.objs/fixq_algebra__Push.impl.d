lib/algebra/push.ml: Format List Option Plan Printf String
