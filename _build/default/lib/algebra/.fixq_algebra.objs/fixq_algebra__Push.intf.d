lib/algebra/push.mli: Format Plan
