lib/algebra/compile.mli: Fixq_lang Fixq_xdm Hashtbl Plan Relation
