lib/algebra/plan.ml: Fixq_lang Fixq_xdm Format List Printf String Value
