lib/algebra/render.mli: Plan
