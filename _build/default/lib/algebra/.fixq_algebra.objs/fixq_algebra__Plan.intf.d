lib/algebra/plan.mli: Fixq_lang Fixq_xdm Value
