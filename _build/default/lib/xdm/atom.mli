(** Atomic values of the XQuery Data Model subset used by [fixq].

    The language is LiXQuery-class: the atomic types are integers,
    doubles, strings and booleans. Untyped atomics produced by node
    atomization are represented as strings and promoted on demand
    ({!to_number}). *)

type t =
  | Int of int
  | Dbl of float
  | Str of string
  | Bool of bool

(** Total order used by [fn:distinct-values] and value comparisons across
    numeric types; numeric values compare numerically regardless of
    representation. Raises [Type_error] when comparing incomparable
    atoms (e.g. a string with a number), mirroring XPath's dynamic
    errors. *)
val compare_value : t -> t -> int

exception Type_error of string

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [equal_value a b] is value equality with numeric promotion. *)
val equal_value : t -> t -> bool

(** Numeric promotion: ["42"] and [Int 42] both yield [42.0]; raises
    [Type_error] for non-numeric strings or booleans. *)
val to_number : t -> float

(** Integer view; raises [Type_error] if not an integer (or an integral
    double/string). *)
val to_int : t -> int

(** XPath string value of the atom. Doubles print like XPath ([1] not
    [1.]). *)
val to_string : t -> string

(** Effective boolean value of a single atom. *)
val to_bool : t -> bool

val is_numeric : t -> bool
val pp : Format.formatter -> t -> unit
