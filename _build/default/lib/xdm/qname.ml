type t = { prefix : string option; local : string }

let make ?prefix local = { prefix; local }

let of_string s =
  match String.index_opt s ':' with
  | None -> { prefix = None; local = s }
  | Some i ->
    { prefix = Some (String.sub s 0 i);
      local = String.sub s (i + 1) (String.length s - i - 1) }

let to_string n =
  match n.prefix with None -> n.local | Some p -> p ^ ":" ^ n.local

let local n = n.local
let equal a b = a.prefix = b.prefix && String.equal a.local b.local
let compare a b = Stdlib.compare (a.prefix, a.local) (b.prefix, b.local)
let pp ppf n = Format.pp_print_string ppf (to_string n)
