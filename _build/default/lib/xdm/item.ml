type t = N of Node.t | A of Atom.t

type seq = t list

let node n = N n
let atom a = A a

let as_node_seq who s =
  List.map
    (function
      | N n -> n
      | A a ->
        Atom.type_error "%s: expected a sequence of nodes, got atom %s" who
          (Atom.to_string a))
    s

let sort_uniq_nodes ns =
  let sorted = List.sort Node.compare_doc_order ns in
  let rec dedup = function
    | a :: (b :: _ as rest) ->
      if Node.equal a b then dedup rest else a :: dedup rest
    | l -> l
  in
  dedup sorted

let ddo s = List.map node (sort_uniq_nodes (as_node_seq "fs:ddo" s))

let union a b =
  let na = as_node_seq "union" a and nb = as_node_seq "union" b in
  List.map node (sort_uniq_nodes (na @ nb))

let except a b =
  let na = as_node_seq "except" a and nb = as_node_seq "except" b in
  let forbidden = Node_set.of_nodes nb in
  List.map node
    (sort_uniq_nodes (List.filter (fun n -> not (Node_set.mem n forbidden)) na))

let intersect a b =
  let na = as_node_seq "intersect" a and nb = as_node_seq "intersect" b in
  let wanted = Node_set.of_nodes nb in
  List.map node
    (sort_uniq_nodes (List.filter (fun n -> Node_set.mem n wanted) na))

(* Set-equality s= over general sequences: split into node part (by
   identity) and atom part (by value). *)
module Atom_set = struct
  let mem a l = List.exists (Atom.equal_value a) l

  let of_seq s =
    List.fold_left (fun acc a -> if mem a acc then acc else a :: acc) [] s

  let equal a b =
    let a = of_seq a and b = of_seq b in
    List.length a = List.length b && List.for_all (fun x -> mem x b) a
end

let set_equal a b =
  let nodes_of = List.filter_map (function N n -> Some n | A _ -> None) in
  let atoms_of = List.filter_map (function A a -> Some a | N _ -> None) in
  Node_set.equal (Node_set.of_nodes (nodes_of a)) (Node_set.of_nodes (nodes_of b))
  && Atom_set.equal (atoms_of a) (atoms_of b)

let effective_boolean = function
  | [] -> false
  | [ A a ] -> Atom.to_bool a
  | N _ :: _ -> true
  | _ ->
    Atom.type_error
      "effective boolean value undefined for a multi-atom sequence"

let atomize s =
  List.map
    (function A a -> a | N n -> Atom.Str (Node.string_value n))
    s

let string_of_item = function
  | A a -> Atom.to_string a
  | N n -> Node.string_value n

let rec deep_equal_node (a : Node.t) (b : Node.t) =
  a.Node.kind = b.Node.kind
  && (match (a.Node.name, b.Node.name) with
     | (None, None) -> true
     | (Some x, Some y) -> Qname.equal x y
     | _ -> false)
  && (match a.Node.kind with
     | Node.Text | Node.Comment | Node.Pi | Node.Attribute ->
       String.equal a.Node.content b.Node.content
     | Node.Element | Node.Document -> true)
  && Array.length a.Node.attributes = Array.length b.Node.attributes
  && List.for_all
       (fun (x : Node.t) ->
         Array.exists
           (fun (y : Node.t) ->
             Node.name x = Node.name y
             && String.equal x.Node.content y.Node.content)
           b.Node.attributes)
       (Array.to_list a.Node.attributes)
  && Array.length a.Node.children = Array.length b.Node.children
  && List.for_all2 deep_equal_node
       (Array.to_list a.Node.children)
       (Array.to_list b.Node.children)

let deep_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | (A u, A v) -> Atom.equal_value u v
         | (N u, N v) -> deep_equal_node u v
         | _ -> false)
       a b

let node_ids s =
  Node_set.of_nodes
    (List.filter_map (function N n -> Some n | A _ -> None) s)

let equal_item a b =
  match (a, b) with
  | (N x, N y) -> Node.equal x y
  | (A x, A y) -> Atom.equal_value x y
  | _ -> false

let pp ppf = function
  | N n -> Node.pp ppf n
  | A a -> Atom.pp ppf a

let pp_seq ppf s =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
    s
