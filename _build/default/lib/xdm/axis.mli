(** XPath axes and node tests over {!Node.t} trees.

    [step axis test n] returns the nodes reachable from context node [n]
    along [axis] that satisfy [test], in {e axis order}: forward axes in
    document order, reverse axes nearest-first (reverse document
    order) — so positional predicates count as XPath prescribes
    ([preceding-sibling::x[1]] is the nearest such sibling). Path
    evaluation re-establishes document order afterwards via
    [fs:ddo]. *)

type t =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute

type test =
  | Name of string  (** element/attribute name test; ["*"] is wildcard *)
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_pi
  | Kind_element of string option
  | Kind_attribute of string option
  | Kind_document

val axis_of_string : string -> t option
val axis_to_string : t -> string

(** Whether the axis is a reverse axis (ancestor, preceding, …). *)
val is_reverse : t -> bool

val matches : t -> test -> Node.t -> bool

(** All nodes along [axis] from [n] (unfiltered), document order. *)
val nodes : t -> Node.t -> Node.t list

(** [step axis test n]: axis step with node test, document order. *)
val step : t -> test -> Node.t -> Node.t list

val pp_test : Format.formatter -> test -> unit
