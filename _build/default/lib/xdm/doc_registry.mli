(** Registry backing [fn:doc]: maps URIs to document nodes.

    Queries in this reproduction never touch the file system; the
    benchmark and test harnesses register generated documents under the
    URIs the paper's queries use ([doc("curriculum.xml")],
    [doc("auction.xml")], …). A registered URI always returns the same
    node, preserving [doc] stability as required by XQuery. *)

(** Isolated registry instances let tests avoid cross-talk. *)
type t

val create : unit -> t

(** The process-wide default registry. *)
val default : t

val register : ?registry:t -> string -> Node.t -> unit

(** [find uri] returns the registered document. Falls back to parsing
    the file at [uri] if nothing is registered and the file exists. *)
val find : ?registry:t -> string -> Node.t option

val clear : ?registry:t -> unit -> unit
