(** Sets of node identities (integer ids), used by the fixpoint
    algorithms to detect growth and compute deltas. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val mem : Node.t -> t -> bool
val add : Node.t -> t -> t
val of_nodes : Node.t list -> t
val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
