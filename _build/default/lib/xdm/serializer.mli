(** XML serialization of {!Node.t} trees and item sequences. *)

(** [to_string ?indent n] serializes the subtree under [n].
    [indent] (default [false]) pretty-prints with two-space
    indentation; text nodes suppress indentation of their element. *)
val to_string : ?indent:bool -> Node.t -> string

val to_buffer : ?indent:bool -> Buffer.t -> Node.t -> unit

(** Serialize a whole item sequence: nodes as XML, atoms via their
    string value, separated by spaces as in XQuery serialization. *)
val seq_to_string : ?indent:bool -> Item.seq -> string

(** Escape a string for use as XML character data. *)
val escape_text : string -> string

(** Escape a string for use inside a double-quoted attribute. *)
val escape_attr : string -> string
