type t =
  | Int of int
  | Dbl of float
  | Str of string
  | Bool of bool

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let to_number = function
  | Int i -> float_of_int i
  | Dbl f -> f
  | Str s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> type_error "cannot convert %S to a number" s)
  | Bool _ -> type_error "cannot convert a boolean to a number"

let to_int = function
  | Int i -> i
  | Dbl f when Float.is_integer f -> int_of_float f
  | Str s as a -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> i
    | None -> type_error "cannot convert %S to an integer" (to_number a |> string_of_float))
  | a -> type_error "expected an integer, got %f" (to_number a)

let to_string = function
  | Int i -> string_of_int i
  | Dbl f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else string_of_float f
  | Str s -> s
  | Bool b -> if b then "true" else "false"

let to_bool = function
  | Bool b -> b
  | Int i -> i <> 0
  | Dbl f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> String.length s > 0

let is_numeric = function Int _ | Dbl _ -> true | Str _ | Bool _ -> false

let compare_value a b =
  match (a, b) with
  | (Int x, Int y) -> Int.compare x y
  | ((Int _ | Dbl _), (Int _ | Dbl _)) -> Float.compare (to_number a) (to_number b)
  | (Str x, Str y) -> String.compare x y
  | (Bool x, Bool y) -> Bool.compare x y
  | (Str x, (Int _ | Dbl _)) -> Float.compare (to_number (Str x)) (to_number b)
  | ((Int _ | Dbl _), Str y) -> Float.compare (to_number a) (to_number (Str y))
  | (Bool _, _) | (_, Bool _) ->
    type_error "cannot compare a boolean with a non-boolean"

let equal_value a b =
  match (a, b) with
  | (Str x, Str y) -> String.equal x y
  | _ -> ( try compare_value a b = 0 with Type_error _ -> false)

let pp ppf a =
  match a with
  | Str s -> Format.fprintf ppf "%S" s
  | _ -> Format.pp_print_string ppf (to_string a)
