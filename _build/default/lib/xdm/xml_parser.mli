(** A small, dependency-free XML parser producing {!Node.t} trees.

    Supported: prolog, comments, processing instructions, CDATA,
    character/entity references, attributes with single or double
    quotes, and a minimal internal DTD subset — [<!ATTLIST elem attr ID
    …>] declarations are honored so that [fn:id] works on parsed
    documents (the paper's curriculum data declares [course/@code] of
    type ID this way).

    Not supported (irrelevant for the reproduction): external DTDs,
    namespaces beyond prefixed names, parameter entities. *)

exception Parse_error of { line : int; col : int; msg : string }

(** [parse_string ?uri ?strip_whitespace s] parses a complete document.
    [strip_whitespace] (default [false]) drops whitespace-only text
    nodes, which the data generators use for compact trees. *)
val parse_string : ?uri:string -> ?strip_whitespace:bool -> string -> Node.t

(** Parse a well-formed external general parsed entity (a bare element,
    no prolog) into a parentless element node. *)
val parse_fragment : ?strip_whitespace:bool -> string -> Node.t
