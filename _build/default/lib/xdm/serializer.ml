let escape_gen escape_quote s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when escape_quote -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape_gen false
let escape_attr = escape_gen true

let to_buffer ?(indent = false) buf (n : Node.t) =
  let pad d = if indent then Buffer.add_string buf (String.make (2 * d) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let has_element_content (n : Node.t) =
    Array.length n.Node.children > 0
    && Array.for_all
         (fun (c : Node.t) -> c.Node.kind <> Node.Text)
         n.Node.children
  in
  let rec go d (n : Node.t) =
    match n.Node.kind with
    | Node.Document -> Array.iter (go d) n.Node.children
    | Node.Text -> Buffer.add_string buf (escape_text n.Node.content)
    | Node.Comment ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf n.Node.content;
      Buffer.add_string buf "-->"
    | Node.Pi ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf (Node.name n);
      if n.Node.content <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf n.Node.content
      end;
      Buffer.add_string buf "?>"
    | Node.Attribute ->
      Buffer.add_string buf (Node.name n);
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr n.Node.content);
      Buffer.add_char buf '"'
    | Node.Element ->
      Buffer.add_char buf '<';
      Buffer.add_string buf (Node.name n);
      Array.iter
        (fun a ->
          Buffer.add_char buf ' ';
          go d a)
        n.Node.attributes;
      if Array.length n.Node.children = 0 then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let structured = has_element_content n in
        Array.iter
          (fun c ->
            if structured then begin
              nl ();
              pad (d + 1)
            end;
            go (d + 1) c)
          n.Node.children;
        if structured then begin
          nl ();
          pad d
        end;
        Buffer.add_string buf "</";
        Buffer.add_string buf (Node.name n);
        Buffer.add_char buf '>'
      end
  in
  go 0 n

let to_string ?indent n =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf n;
  Buffer.contents buf

let seq_to_string ?indent (s : Item.seq) =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char buf ' ';
      match it with
      | Item.N n -> to_buffer ?indent buf n
      | Item.A a -> Buffer.add_string buf (escape_text (Atom.to_string a)))
    s;
  Buffer.contents buf
