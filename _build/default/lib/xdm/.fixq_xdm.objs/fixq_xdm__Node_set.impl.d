lib/xdm/node_set.ml: Int List Node Set
