lib/xdm/xml_parser.ml: Buffer Char Format List Node String
