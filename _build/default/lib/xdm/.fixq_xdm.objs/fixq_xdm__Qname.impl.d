lib/xdm/qname.ml: Format Stdlib String
