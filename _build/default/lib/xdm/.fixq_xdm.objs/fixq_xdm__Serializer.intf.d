lib/xdm/serializer.mli: Buffer Item Node
