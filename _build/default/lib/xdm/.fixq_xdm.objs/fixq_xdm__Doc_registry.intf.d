lib/xdm/doc_registry.mli: Node
