lib/xdm/node.mli: Format Hashtbl Qname
