lib/xdm/axis.ml: Array Format List Node String
