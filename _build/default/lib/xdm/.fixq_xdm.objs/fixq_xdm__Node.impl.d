lib/xdm/node.ml: Array Buffer Format Hashtbl Int List Option Qname String
