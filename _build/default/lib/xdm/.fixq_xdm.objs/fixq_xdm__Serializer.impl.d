lib/xdm/serializer.ml: Array Atom Buffer Item List Node String
