lib/xdm/item.ml: Array Atom Format List Node Node_set Qname String
