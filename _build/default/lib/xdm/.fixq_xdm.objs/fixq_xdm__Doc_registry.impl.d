lib/xdm/doc_registry.ml: Hashtbl Node Sys Xml_parser
