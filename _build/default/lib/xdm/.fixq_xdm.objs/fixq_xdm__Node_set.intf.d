lib/xdm/node_set.mli: Node
