lib/xdm/atom.ml: Bool Float Format Int Printf String
