lib/xdm/item.mli: Atom Format Node Node_set
