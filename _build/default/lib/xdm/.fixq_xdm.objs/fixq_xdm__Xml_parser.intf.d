lib/xdm/xml_parser.mli: Node
