lib/xdm/atom.mli: Format
