lib/xdm/axis.mli: Format Node
