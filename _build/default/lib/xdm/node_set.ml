module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let cardinal = S.cardinal
let mem (n : Node.t) s = S.mem n.Node.id s
let add (n : Node.t) s = S.add n.Node.id s
let of_nodes ns = List.fold_left (fun s n -> add n s) S.empty ns
let union = S.union
let diff = S.diff
let inter = S.inter
let equal = S.equal
let subset = S.subset
