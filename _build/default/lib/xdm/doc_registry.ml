type t = (string, Node.t) Hashtbl.t

let create () : t = Hashtbl.create 8
let default : t = create ()

let register ?(registry = default) uri doc =
  Node.set_uri doc uri;
  Hashtbl.replace registry uri doc

let find ?(registry = default) uri =
  match Hashtbl.find_opt registry uri with
  | Some d -> Some d
  | None ->
    if Sys.file_exists uri then begin
      let ic = open_in_bin uri in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Xml_parser.parse_string ~uri s with
      | doc ->
        Hashtbl.replace registry uri doc;
        Some doc
      | exception Xml_parser.Parse_error _ -> None
    end
    else None

let clear ?(registry = default) () = Hashtbl.reset registry
