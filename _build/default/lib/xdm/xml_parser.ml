exception Parse_error of { line : int; col : int; msg : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  strip : bool;
  mutable id_attrs : (string * string) list;
      (* (element, attribute) pairs declared ID *)
  mutable idref_attrs : (string * string) list;
      (* (element, attribute) pairs declared IDREF/IDREFS *)
}

let error st fmt =
  Format.kasprintf
    (fun msg -> raise (Parse_error { line = st.line; col = st.col; msg }))
    fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  (if not (eof st) then
     match st.src.[st.pos] with
     | '\n' ->
       st.line <- st.line + 1;
       st.col <- 1
     | _ -> st.col <- st.col + 1);
  st.pos <- st.pos + 1

let next st =
  let c = peek st in
  advance st;
  c

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else error st "expected %S" s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_reference st buf =
  (* Called after '&'. *)
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    while peek st <> ';' && not (eof st) do
      advance st
    done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> error st "bad character reference"
    in
    if code < 128 then Buffer.add_char buf (Char.chr code)
    else begin
      (* Encode as UTF-8. *)
      let add c = Buffer.add_char buf (Char.chr c) in
      if code < 0x800 then begin
        add (0xC0 lor (code lsr 6));
        add (0x80 lor (code land 0x3F))
      end
      else if code < 0x10000 then begin
        add (0xE0 lor (code lsr 12));
        add (0x80 lor ((code lsr 6) land 0x3F));
        add (0x80 lor (code land 0x3F))
      end
      else begin
        add (0xF0 lor (code lsr 18));
        add (0x80 lor ((code lsr 12) land 0x3F));
        add (0x80 lor ((code lsr 6) land 0x3F));
        add (0x80 lor (code land 0x3F))
      end
    end
  end
  else
    let name = parse_name st in
    expect st ";";
    let c =
      match name with
      | "lt" -> "<"
      | "gt" -> ">"
      | "amp" -> "&"
      | "quot" -> "\""
      | "apos" -> "'"
      | other -> error st "unknown entity &%s;" other
    in
    Buffer.add_string buf c

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then error st "expected a quoted value";
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated attribute value"
    else
      let c = next st in
      if c = quote then Buffer.contents buf
      else if c = '&' then begin
        parse_reference st buf;
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

let parse_comment st =
  (* After "<!--". *)
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "-->" then begin
      expect st "-->";
      Buffer.contents buf
    end
    else if eof st then error st "unterminated comment"
    else begin
      Buffer.add_char buf (next st);
      go ()
    end
  in
  go ()

let parse_pi st =
  (* After "<?". *)
  let target = parse_name st in
  skip_space st;
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "?>" then begin
      expect st "?>";
      (target, Buffer.contents buf)
    end
    else if eof st then error st "unterminated processing instruction"
    else begin
      Buffer.add_char buf (next st);
      go ()
    end
  in
  go ()

let parse_cdata st =
  (* After "<![CDATA[". *)
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "]]>" then begin
      expect st "]]>";
      Buffer.contents buf
    end
    else if eof st then error st "unterminated CDATA section"
    else begin
      Buffer.add_char buf (next st);
      go ()
    end
  in
  go ()

(* Minimal internal DTD subset: we only harvest <!ATTLIST e a ID …>
   declarations; everything else inside [ … ] is skipped. *)
let parse_doctype st =
  expect st "DOCTYPE";
  skip_space st;
  let _root = parse_name st in
  skip_space st;
  if peek st = '[' then begin
    advance st;
    let rec inside () =
      skip_space st;
      if peek st = ']' then advance st
      else if looking_at st "<!ATTLIST" then begin
        expect st "<!ATTLIST";
        skip_space st;
        let elem = parse_name st in
        let rec attdefs () =
          skip_space st;
          if peek st = '>' then advance st
          else
            let attr = parse_name st in
            skip_space st;
            let atttype = parse_name st in
            skip_space st;
            (* default declaration: #REQUIRED/#IMPLIED/#FIXED "v"/"v" *)
            (if peek st = '#' then begin
               advance st;
               ignore (parse_name st);
               skip_space st;
               if peek st = '"' || peek st = '\'' then
                 ignore (parse_attr_value st)
             end
             else if peek st = '"' || peek st = '\'' then
               ignore (parse_attr_value st));
            (match String.uppercase_ascii atttype with
            | "ID" -> st.id_attrs <- (elem, attr) :: st.id_attrs
            | "IDREF" | "IDREFS" ->
              st.idref_attrs <- (elem, attr) :: st.idref_attrs
            | _ -> ());
            attdefs ()
        in
        attdefs ();
        inside ()
      end
      else if looking_at st "<!--" then begin
        expect st "<!--";
        ignore (parse_comment st);
        inside ()
      end
      else begin
        (* Skip any other markup declaration up to '>'. *)
        while (not (eof st)) && peek st <> '>' do
          advance st
        done;
        expect st ">";
        inside ()
      end
    in
    inside ();
    skip_space st
  end
  else begin
    (* External id without internal subset: skip to '>'. *)
    while (not (eof st)) && peek st <> '>' do
      advance st
    done
  end;
  if peek st = '>' then advance st

let rec parse_element st : Node.spec =
  (* After '<', at name. *)
  let name = parse_name st in
  let rec attrs acc =
    skip_space st;
    match peek st with
    | '>' ->
      advance st;
      let kids = parse_content st name [] in
      Node.E (name, List.rev acc, kids)
    | '/' ->
      advance st;
      expect st ">";
      Node.E (name, List.rev acc, [])
    | _ ->
      let an = parse_name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let av = parse_attr_value st in
      attrs ((an, av) :: acc)
  in
  attrs []

and parse_content st name acc =
  if eof st then error st "unterminated element <%s>" name
  else if looking_at st "</" then begin
    expect st "</";
    let close = parse_name st in
    if close <> name then
      error st "mismatched closing tag </%s> for <%s>" close name;
    skip_space st;
    expect st ">";
    List.rev acc
  end
  else if looking_at st "<!--" then begin
    expect st "<!--";
    let c = parse_comment st in
    parse_content st name (Node.C c :: acc)
  end
  else if looking_at st "<![CDATA[" then begin
    expect st "<![CDATA[";
    let t = parse_cdata st in
    parse_content st name (Node.T t :: acc)
  end
  else if looking_at st "<?" then begin
    expect st "<?";
    let (target, data) = parse_pi st in
    parse_content st name (Node.P (target, data) :: acc)
  end
  else if peek st = '<' then begin
    advance st;
    let e = parse_element st in
    parse_content st name (e :: acc)
  end
  else begin
    let buf = Buffer.create 32 in
    let rec text () =
      if eof st || peek st = '<' then Buffer.contents buf
      else if peek st = '&' then begin
        advance st;
        parse_reference st buf;
        text ()
      end
      else begin
        Buffer.add_char buf (next st);
        text ()
      end
    in
    let t = text () in
    let keep = (not st.strip) || String.exists (fun c -> not (is_space c)) t in
    parse_content st name (if keep then Node.T t :: acc else acc)
  end

let parse_prolog st =
  skip_space st;
  if looking_at st "<?xml" then begin
    expect st "<?";
    ignore (parse_pi st)
  end;
  let rec misc () =
    skip_space st;
    if looking_at st "<!--" then begin
      expect st "<!--";
      ignore (parse_comment st);
      misc ()
    end
    else if looking_at st "<!" then begin
      expect st "<!";
      parse_doctype st;
      misc ()
    end
    else if looking_at st "<?" then begin
      expect st "<?";
      ignore (parse_pi st);
      misc ()
    end
  in
  misc ()

let make_state ?(strip_whitespace = false) s =
  { src = s; pos = 0; line = 1; col = 1; strip = strip_whitespace;
    id_attrs = []; idref_attrs = [] }

let parse_string ?uri ?strip_whitespace s =
  let st = make_state ?strip_whitespace s in
  parse_prolog st;
  skip_space st;
  if peek st <> '<' then error st "expected the root element";
  advance st;
  let root_spec = parse_element st in
  skip_space st;
  if not (eof st) then error st "trailing content after the root element";
  (* Distinct per-element ID attributes collapse to attribute names: the
     Node-level index is name-keyed, which matches every instance in the
     paper's workloads (one ID attribute per document class). *)
  let id_attrs = List.map snd st.id_attrs in
  let doc = Node.of_spec ?uri ~id_attrs root_spec in
  List.iter (fun (_, a) -> Node.register_idref_attribute doc a) st.idref_attrs;
  doc

let parse_fragment ?strip_whitespace s =
  let st = make_state ?strip_whitespace s in
  skip_space st;
  if peek st <> '<' then error st "expected an element";
  advance st;
  let spec = parse_element st in
  let doc = Node.of_spec spec in
  match Node.children doc with
  | [ e ] -> e
  | _ -> assert false
