(** Qualified names for XML nodes.

    The reproduction targets a LiXQuery-class language in which namespace
    processing plays no role, so a qualified name is an optional prefix
    plus a local part. Two names are equal when both components are
    equal. *)

type t = private { prefix : string option; local : string }

val make : ?prefix:string -> string -> t

(** [of_string s] splits [s] at the first [':'] into prefix and local
    part; a string without [':'] has no prefix. *)
val of_string : string -> t

(** [to_string n] re-assembles ["prefix:local"] or ["local"]. *)
val to_string : t -> string

val local : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
