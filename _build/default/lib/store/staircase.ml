module Axis = Fixq_xdm.Axis
module Node = Fixq_xdm.Node

let test_row (test : Axis.test) (r : Encoding.row) =
  let name_matches pat = pat = "*" || pat = r.Encoding.name in
  match test with
  | Axis.Name pat -> r.Encoding.kind = Node.Element && name_matches pat
  | Axis.Kind_node -> true
  | Axis.Kind_text -> r.Encoding.kind = Node.Text
  | Axis.Kind_comment -> r.Encoding.kind = Node.Comment
  | Axis.Kind_pi -> r.Encoding.kind = Node.Pi
  | Axis.Kind_element pat ->
    r.Encoding.kind = Node.Element
    && (match pat with None -> true | Some p -> name_matches p)
  | Axis.Kind_attribute _ -> false
  | Axis.Kind_document -> r.Encoding.kind = Node.Document

let sort_uniq = List.sort_uniq Int.compare

(* descendant(-or-self): context pres ascending. Pruning: a context node
   inside the subtree of the previous accepted one is covered. The scan
   over each uncovered region is a contiguous pre range. *)
let descendant_ranges enc ~or_self pres =
  let regions = ref [] in
  let horizon = ref (-1) in
  List.iter
    (fun pre ->
      let r = Encoding.row enc pre in
      let lo = if or_self then pre else pre + 1 in
      let hi = pre + r.Encoding.size in
      (* Start after the current horizon — subtrees of covered context
         nodes were already emitted (pruning). *)
      let lo = max lo (!horizon + 1) in
      if lo <= hi then begin
        regions := (lo, hi) :: !regions;
        horizon := hi
      end
      else if or_self && pre > !horizon then begin
        regions := (pre, pre) :: !regions;
        horizon := max !horizon hi
      end)
    pres;
  List.rev !regions

let descendant enc ~or_self test pres =
  let out = ref [] in
  List.iter
    (fun (lo, hi) ->
      for pre = lo to hi do
        if test_row test (Encoding.row enc pre) then out := pre :: !out
      done)
    (descendant_ranges enc ~or_self pres);
  List.rev !out

(* ancestor(-or-self): walk parent chain via level/pre scan backwards.
   For each context node, ancestors are the nodes a with
   pre(a) < pre(v) <= pre(a)+size(a). We collect into a set; the
   staircase pruning (keep only the first context node of each chain)
   is subsumed by the dedup. Parent pointers in the back-pointing nodes
   give O(depth) per context node. *)
let ancestors_of enc ~or_self pre =
  let r = Encoding.row enc pre in
  let rec chain (n : Node.t) acc =
    match Node.parent n with
    | None -> acc
    | Some p ->
      let pr = Encoding.row_of_node enc p in
      chain p (pr.Encoding.pre :: acc)
  in
  let base = if or_self then [ pre ] else [] in
  chain r.Encoding.node base

let ancestor enc ~or_self test pres =
  let all = List.concat_map (ancestors_of enc ~or_self) pres in
  List.filter (fun p -> test_row test (Encoding.row enc p)) (sort_uniq all)

let child enc test pres =
  (* Children of v occupy the pre range (v, v+size(v)] at level(v)+1;
     we jump from child to next sibling using size. *)
  let out = ref [] in
  List.iter
    (fun pre ->
      let r = Encoding.row enc pre in
      let stop = pre + r.Encoding.size in
      let c = ref (pre + 1) in
      while !c <= stop do
        let cr = Encoding.row enc !c in
        if test_row test cr then out := !c :: !out;
        c := !c + cr.Encoding.size + 1
      done)
    pres;
  sort_uniq !out

let parent enc test pres =
  let ps =
    List.filter_map
      (fun pre ->
        let r = Encoding.row enc pre in
        match Node.parent r.Encoding.node with
        | None -> None
        | Some p -> Some (Encoding.row_of_node enc p).Encoding.pre)
      pres
  in
  List.filter (fun p -> test_row test (Encoding.row enc p)) (sort_uniq ps)

let self enc test pres =
  List.filter (fun p -> test_row test (Encoding.row enc p)) pres

let following enc test pres =
  (* following(v) = (pre(v)+size(v), N): every later node is neither a
     descendant (those end at pre(v)+size(v)) nor an ancestor (those
     start before pre(v)). The union over an ascending context starts at
     the smallest subtree horizon (staircase pruning collapses the
     context to a single boundary). *)
  match pres with
  | [] -> []
  | _ ->
    let n = Encoding.size enc in
    let start =
      List.fold_left
        (fun acc pre -> min acc (pre + (Encoding.row enc pre).Encoding.size))
        max_int pres
    in
    let out = ref [] in
    for pre = start + 1 to n - 1 do
      if test_row test (Encoding.row enc pre) then out := pre :: !out
    done;
    List.rev !out

let preceding enc test pres =
  (* preceding(v) = [0, v) minus ancestors; with ascending context the
     last context node dominates. *)
  match List.rev pres with
  | [] -> []
  | last :: _ ->
    let anc = Hashtbl.create 16 in
    List.iter
      (fun p -> Hashtbl.replace anc p ())
      (ancestors_of enc ~or_self:false last);
    let out = ref [] in
    for pre = 0 to last - 1 do
      if (not (Hashtbl.mem anc pre)) && test_row test (Encoding.row enc pre)
      then out := pre :: !out
    done;
    List.rev !out

let siblings enc ~after test pres =
  let out = ref [] in
  List.iter
    (fun pre ->
      let r = Encoding.row enc pre in
      match Node.parent r.Encoding.node with
      | None -> ()
      | Some p ->
        let ppre = (Encoding.row_of_node enc p).Encoding.pre in
        let psize = (Encoding.row enc ppre).Encoding.size in
        if after then begin
          let c = ref (pre + r.Encoding.size + 1) in
          while !c <= ppre + psize do
            let cr = Encoding.row enc !c in
            if test_row test cr then out := !c :: !out;
            c := !c + cr.Encoding.size + 1
          done
        end
        else begin
          let c = ref (ppre + 1) in
          while !c < pre do
            let cr = Encoding.row enc !c in
            if test_row test cr then out := !c :: !out;
            c := !c + cr.Encoding.size + 1
          done
        end)
    pres;
  sort_uniq !out

let step enc (axis : Axis.t) test pres =
  match axis with
  | Axis.Child -> child enc test pres
  | Axis.Descendant -> descendant enc ~or_self:false test pres
  | Axis.Descendant_or_self -> descendant enc ~or_self:true test pres
  | Axis.Parent -> parent enc test pres
  | Axis.Ancestor -> ancestor enc ~or_self:false test pres
  | Axis.Ancestor_or_self -> ancestor enc ~or_self:true test pres
  | Axis.Self -> self enc test pres
  | Axis.Following -> following enc test pres
  | Axis.Preceding -> preceding enc test pres
  | Axis.Following_sibling -> siblings enc ~after:true test pres
  | Axis.Preceding_sibling -> siblings enc ~after:false test pres
  | Axis.Attribute -> []

let attribute_step enc test pres =
  List.concat_map
    (fun pre ->
      let r = Encoding.row enc pre in
      List.filter (Axis.matches Axis.Attribute test)
        (Node.attributes r.Encoding.node))
    pres

let step_nodes enc axis test nodes =
  match axis with
  | Axis.Attribute ->
    let pres =
      sort_uniq
        (List.map (fun n -> (Encoding.row_of_node enc n).Encoding.pre) nodes)
    in
    attribute_step enc test pres
  | _ ->
    let pres =
      sort_uniq
        (List.map (fun n -> (Encoding.row_of_node enc n).Encoding.pre) nodes)
    in
    List.map
      (fun pre -> (Encoding.row enc pre).Encoding.node)
      (step enc axis test pres)
