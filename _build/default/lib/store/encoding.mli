(** Relational XML encoding: pre/size/level tables.

    Following the Pathfinder / MonetDB/XQuery storage model (Grust et
    al., "XQuery on SQL Hosts", VLDB 2004; "Staircase Join", VLDB 2003),
    a tree is shredded into an array indexed by preorder rank [pre]
    where each row carries

    - [size]: number of nodes in the subtree (excluding the node),
    - [level]: depth below the root,
    - [kind], [name], [value]: node payload,
    - [node]: back-pointer to the {!Fixq_xdm.Node.t} for result
      materialization.

    All axis work in the algebra engine runs over this encoding: the
    region of [descendant(v)] is the pre range (pre(v), pre(v)+size(v)],
    ancestors satisfy pre(a) < pre(v) ≤ pre(a)+size(a), etc. *)

type row = {
  pre : int;
  size : int;
  level : int;
  kind : Fixq_xdm.Node.kind;
  name : string;
  value : string;
  node : Fixq_xdm.Node.t;
}

type t

(** Shred the tree containing the given node (the whole tree, from its
    root). Attributes are kept out of the pre/size/level table and
    reached through the original nodes, as in Pathfinder's attribute
    side tables. *)
val of_tree : Fixq_xdm.Node.t -> t

(** Encoding row of a node; the node must belong to the encoded tree. *)
val row_of_node : t -> Fixq_xdm.Node.t -> row

val row : t -> int -> row

(** Number of rows (nodes). *)
val size : t -> int

(** A process-wide cache: encodings are built once per tree root. *)
val of_tree_cached : Fixq_xdm.Node.t -> t
