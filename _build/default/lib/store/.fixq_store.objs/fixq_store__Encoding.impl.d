lib/store/encoding.ml: Array Fixq_xdm Hashtbl List
