lib/store/staircase.ml: Encoding Fixq_xdm Hashtbl Int List
