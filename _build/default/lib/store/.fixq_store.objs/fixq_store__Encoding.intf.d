lib/store/encoding.mli: Fixq_xdm
