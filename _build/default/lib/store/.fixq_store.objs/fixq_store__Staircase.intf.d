lib/store/staircase.mli: Encoding Fixq_xdm
