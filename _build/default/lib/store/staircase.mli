(** Staircase-join–style axis evaluation over the pre/size/level
    encoding (Grust, van Keulen, Teubner — VLDB 2003).

    [step enc axis test pres] takes a duplicate-free, ascending list of
    context [pre] ranks and returns the matching axis step result as an
    ascending, duplicate-free list of [pre] ranks — i.e. the result is
    already in distinct document order, which is what makes the
    staircase join a single sequential scan:

    - {e pruning}: context nodes covered by another context node
      contribute nothing new on [descendant]/[ancestor] axes and are
      skipped;
    - {e skipping}: on [descendant], the scan jumps over subtrees that
      cannot contain results.

    Attributes are not part of the pre/size/level table; the
    [attribute] axis answers through the back-pointers and is returned
    as nodes by {!attribute_step}. *)

val step :
  Encoding.t -> Fixq_xdm.Axis.t -> Fixq_xdm.Axis.test -> int list -> int list

val attribute_step :
  Encoding.t -> Fixq_xdm.Axis.test -> int list -> Fixq_xdm.Node.t list

(** Convenience: run a step on nodes and return nodes, going through the
    encoded tree (used by tests to cross-check against
    {!Fixq_xdm.Axis.step}). *)
val step_nodes :
  Encoding.t ->
  Fixq_xdm.Axis.t ->
  Fixq_xdm.Axis.test ->
  Fixq_xdm.Node.t list ->
  Fixq_xdm.Node.t list
