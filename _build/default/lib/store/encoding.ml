module Node = Fixq_xdm.Node

type row = {
  pre : int;
  size : int;
  level : int;
  kind : Node.kind;
  name : string;
  value : string;
  node : Node.t;
}

type t = { rows : row array; by_id : (int, int) Hashtbl.t }

let of_tree n =
  let root = Node.root n in
  let rows = ref [] in
  let by_id = Hashtbl.create 1024 in
  let count = ref 0 in
  (* Returns the subtree size of the visited node. *)
  let rec visit level (n : Node.t) =
    let pre = !count in
    incr count;
    let kids_size =
      List.fold_left (fun acc c -> acc + 1 + visit (level + 1) c) 0
        (Node.children n)
    in
    let r =
      { pre; size = kids_size; level; kind = n.Node.kind;
        name = Node.name n; value = n.Node.content; node = n }
    in
    rows := r :: !rows;
    Hashtbl.replace by_id n.Node.id pre;
    kids_size
  in
  ignore (visit 0 root);
  let arr = Array.make !count (List.hd !rows) in
  List.iter (fun r -> arr.(r.pre) <- r) !rows;
  { rows = arr; by_id }

let row_of_node t (n : Node.t) =
  match Hashtbl.find_opt t.by_id n.Node.id with
  | Some pre -> t.rows.(pre)
  | None -> invalid_arg "Encoding.row_of_node: node not in this tree"

let row t pre = t.rows.(pre)
let size t = Array.length t.rows

let cache : (int, t) Hashtbl.t = Hashtbl.create 8

let of_tree_cached n =
  let root = Node.root n in
  match Hashtbl.find_opt cache root.Node.id with
  | Some t -> t
  | None ->
    let t = of_tree root in
    Hashtbl.replace cache root.Node.id t;
    t
