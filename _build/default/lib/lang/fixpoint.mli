(** The two IFP evaluation algorithms of Figure 3.

    Both compute the inflationary fixed point of a payload function
    [body : node()* -> node()*] from a seed sequence:

    - {!naive} re-feeds the whole accumulated result into [body] on
      every round (Figure 3(a));
    - {!delta} feeds only the yet-unseen nodes
      [∆ ← body(∆) except res] (Figure 3(b)) — sound exactly when the
      payload is distributive (Theorem 3.2).

    Every payload invocation is recorded in the supplied {!Stats.t}
    (nodes fed, nodes produced, accumulated size), which yields the
    "Total # of Nodes Fed Back" and "Recursion Depth" columns of
    Table 2. *)

exception Diverged of int
(** Raised when the iteration count exceeds [max_iterations]; an IFP
    whose body invokes node constructors may be undefined
    (Definition 2.1). *)

(** [include_seed] selects the iteration's starting point. The paper is
    not fully consistent here: Definition 2.1 and Figure 3 start from
    [res ← erec(eseed)] (the default, [false]), whereas the iteration
    table of Example 2.4 traces the algorithms from [res ← eseed]
    (i.e. the seed itself belongs to the result; pass [true] to
    reproduce that table). Both conventions agree on which payloads make
    Naïve and Delta coincide. *)

val naive :
  ?max_iterations:int ->
  ?include_seed:bool ->
  stats:Stats.t ->
  body:(Fixq_xdm.Item.seq -> Fixq_xdm.Item.seq) ->
  seed:Fixq_xdm.Item.seq ->
  unit ->
  Fixq_xdm.Item.seq

val delta :
  ?max_iterations:int ->
  ?include_seed:bool ->
  stats:Stats.t ->
  body:(Fixq_xdm.Item.seq -> Fixq_xdm.Item.seq) ->
  seed:Fixq_xdm.Item.seq ->
  unit ->
  Fixq_xdm.Item.seq

(** Parallel Delta — the divide-and-conquer evaluation the paper's
    wrap-up (Section 7) derives from distributivity: each round's ∆ is
    split into [domains] chunks evaluated concurrently on OCaml
    domains, and the partial results are united. Sound under exactly
    the same condition as {!delta} (the body must be distributive —
    that equation is what justifies the split), and additionally the
    [body] closure must be thread-safe: evaluate only constructor-free,
    read-only expressions (which distributive bodies are), and warm any
    lazily-built per-document indexes ([fn:id]'s, for instance) before
    going parallel — this function runs the first round sequentially
    for that reason. [chunk_threshold] (default 64) keeps small rounds
    sequential; [domains] defaults to [Domain.recommended_domain_count
    () - 1], at least 1. *)
val delta_parallel :
  ?max_iterations:int ->
  ?include_seed:bool ->
  ?domains:int ->
  ?chunk_threshold:int ->
  stats:Stats.t ->
  body:(Fixq_xdm.Item.seq -> Fixq_xdm.Item.seq) ->
  seed:Fixq_xdm.Item.seq ->
  unit ->
  Fixq_xdm.Item.seq
