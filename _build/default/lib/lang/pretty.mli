(** Pretty-printer: {!Ast} back to XQuery source.

    The output re-parses to an equal tree ([Parser.parse_expr (to_string
    e)] = [e] up to [Ast.equal_expr]) — property-tested in
    [test/test_pretty.ml]. Rendering is fully parenthesized where
    precedence could bite, and uses the [with … seeded by … recurse]
    form for {!Ast.Ifp}. *)

val expr_to_string : Ast.expr -> string

val program_to_string : Ast.program -> string

val pp_expr : Format.formatter -> Ast.expr -> unit

(** Render a sequence type ([node()*], [xs:integer?], …). *)
val seq_type_to_string : Ast.seq_type -> string
