(** Recursive-descent parser for the [fixq] XQuery subset.

    Grammar highlights (see {!Ast} for the produced tree):
    - full expression language: FLWOR ([for]/[let]/[where]/[return]),
      quantifiers, [if], [typeswitch], general/value/node comparisons,
      arithmetic, ranges, node-set operators, paths with all axes and
      abbreviations ([@], [..], [//]), predicates, direct and computed
      constructors;
    - the paper's inflationary fixed point form
      [with $x seeded by e1 recurse e2];
    - a prolog of [declare function] and [declare variable]
      declarations ([local:] and [fn:] prefixes are normalized away).

    XQuery keywords are not reserved; [for], [union], … still parse as
    element names in path position. *)

exception Error of { line : int; col : int; msg : string }

(** Parse a complete program: prolog followed by the main expression. *)
val parse_program : string -> Ast.program

(** Parse a single expression (no prolog). *)
val parse_expr : string -> Ast.expr

(** Parse a sequence type, e.g. ["node()*"] (used by tests). *)
val parse_seq_type : string -> Ast.seq_type
