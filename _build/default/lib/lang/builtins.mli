(** The built-in function library (the [fn:] namespace subset used by
    the paper's queries, plus general-purpose helpers).

    Built-ins receive already-evaluated argument sequences and a
    lightweight view of the dynamic context (context item / position /
    size and the document registry for [fn:doc] and [fn:id]). *)

type ctx = {
  context_item : Fixq_xdm.Item.t option;
  context_pos : int;
  context_size : int;
  registry : Fixq_xdm.Doc_registry.t;
}

exception Error of string

(** [call ctx name args] dispatches a built-in; [None] if [name] is not
    a built-in (the evaluator then looks for a user-defined function).
    Raises {!Error} on arity or type violations. *)
val call : ctx -> string -> Fixq_xdm.Item.seq list -> Fixq_xdm.Item.seq option

val is_builtin : string -> bool

(** All built-in names (for documentation and tests). *)
val names : unit -> string list
