module Item = Fixq_xdm.Item
module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Doc_registry = Fixq_xdm.Doc_registry

type ctx = {
  context_item : Item.t option;
  context_pos : int;
  context_size : int;
  registry : Doc_registry.t;
}

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let singleton_atom who s =
  match Item.atomize s with
  | [ a ] -> a
  | l -> err "%s: expected a single atomic value, got %d items" who
           (List.length l)

let opt_atom who s =
  match Item.atomize s with
  | [] -> None
  | [ a ] -> Some a
  | l -> err "%s: expected at most one item, got %d" who (List.length l)

let singleton_node who s =
  match s with
  | [ Item.N n ] -> n
  | _ -> err "%s: expected a single node" who

let opt_node who s =
  match s with
  | [] -> None
  | [ Item.N n ] -> Some n
  | _ -> err "%s: expected at most one node" who

let string_arg who s =
  match opt_atom who s with None -> "" | Some a -> Atom.to_string a

let bool_ seq = [ Item.A (Atom.Bool (Item.effective_boolean seq)) ]
let str s = [ Item.A (Atom.Str s) ]
let int_ n = [ Item.A (Atom.Int n) ]
let dbl f = [ Item.A (Atom.Dbl f) ]

let context_node ctx who =
  match ctx.context_item with
  | Some (Item.N n) -> n
  | Some (Item.A _) -> err "%s: the context item is not a node" who
  | None -> err "%s: no context item" who

let numeric_agg who fold init s =
  let atoms = Item.atomize s in
  match atoms with
  | [] -> []
  | _ ->
    let all_int =
      List.for_all (function Atom.Int _ -> true | _ -> false) atoms
    in
    let total =
      List.fold_left (fun acc a -> fold acc (Atom.to_number a)) init atoms
    in
    ignore who;
    if all_int && Float.is_integer total then int_ (int_of_float total)
    else dbl total

let minmax who better s =
  let atoms = Item.atomize s in
  match atoms with
  | [] -> []
  | first :: rest ->
    let best =
      List.fold_left
        (fun acc a -> if better (Atom.compare_value a acc) then a else acc)
        first rest
    in
    ignore who;
    [ Item.A best ]

(* fn:id — each string in the argument is a whitespace-separated list
   of ID tokens; matching elements are returned in document order. *)
let fn_id ctx args =
  let (idrefs, roots) =
    match args with
    | [ idrefs ] -> (
      (* The context node names the document; absent a context item
         (e.g. [id($x/…)] at the top of a recursion body) the documents
         of the argument's own nodes serve instead. *)
      match ctx.context_item with
      | Some (Item.N n) -> (idrefs, [ Node.root n ])
      | _ ->
        let roots =
          List.filter_map
            (function Item.N n -> Some (Node.root n) | Item.A _ -> None)
            idrefs
        in
        let roots = List.sort_uniq Node.compare_doc_order roots in
        if roots = [] && idrefs <> [] then
          err "id: no context item and no node argument"
        else (idrefs, roots))
    | [ idrefs; node ] -> (idrefs, [ Node.root (singleton_node "id" node) ])
    | _ -> err "id: expected 1 or 2 arguments"
  in
  let tokens =
    List.concat_map
      (fun a ->
        String.split_on_char ' ' (Atom.to_string a)
        |> List.concat_map (String.split_on_char '\n')
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> ""))
      (Item.atomize idrefs)
  in
  let found =
    List.concat_map
      (fun root -> List.filter_map (Node.lookup_id root) tokens)
      roots
  in
  Item.ddo (List.map Item.node found)

(* fn:idref — attribute nodes of DTD type IDREF/IDREFS that refer to
   any of the given ID values. *)
let fn_idref ctx args =
  let (ids, roots) =
    match args with
    | [ ids ] -> (
      match ctx.context_item with
      | Some (Item.N n) -> (ids, [ Node.root n ])
      | _ ->
        let roots =
          List.filter_map
            (function Item.N n -> Some (Node.root n) | Item.A _ -> None)
            ids
          |> List.sort_uniq Node.compare_doc_order
        in
        if roots = [] && ids <> [] then
          err "idref: no context item and no node argument"
        else (ids, roots))
    | [ ids; node ] -> (ids, [ Node.root (singleton_node "idref" node) ])
    | _ -> err "idref: expected 1 or 2 arguments"
  in
  let values = List.map Atom.to_string (Item.atomize ids) in
  let found =
    List.concat_map
      (fun root -> List.concat_map (Node.lookup_idref root) values)
      roots
  in
  Item.ddo (List.map Item.node found)

let fn_doc ctx args =
  match args with
  | [ uri ] -> (
    match opt_atom "doc" uri with
    | None -> []
    | Some a -> (
      let u = Atom.to_string a in
      match Doc_registry.find ~registry:ctx.registry u with
      | Some d -> [ Item.N d ]
      | None -> err "doc: document %S is not available" u))
  | _ -> err "doc: expected 1 argument"

let fn_substring args =
  match args with
  | [ s; start ] ->
    let s = string_arg "substring" s in
    let st = Atom.to_number (singleton_atom "substring" start) in
    let from = max 0 (int_of_float (Float.round st) - 1) in
    if from >= String.length s then str ""
    else str (String.sub s from (String.length s - from))
  | [ s; start; len ] ->
    let s = string_arg "substring" s in
    let st = Float.round (Atom.to_number (singleton_atom "substring" start)) in
    let ln = Float.round (Atom.to_number (singleton_atom "substring" len)) in
    let first = int_of_float st in
    let last = int_of_float (st +. ln) - 1 in
    let from = max 1 first in
    let to_ = min (String.length s) last in
    if to_ < from then str ""
    else str (String.sub s (from - 1) (to_ - from + 1))
  | _ -> err "substring: expected 2 or 3 arguments"

let fn_translate args =
  match args with
  | [ s; from; to_ ] ->
    let s = string_arg "translate" s in
    let from = string_arg "translate" from in
    let to_ = string_arg "translate" to_ in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt from c with
        | None -> Buffer.add_char buf c
        | Some i -> if i < String.length to_ then Buffer.add_char buf to_.[i])
      s;
    str (Buffer.contents buf)
  | _ -> err "translate: expected 3 arguments"

let whitespace_split s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

let find_sub hay needle start =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  if start > h then None else go start

let normalize_space s =
  let words =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\t')
    |> List.concat_map (String.split_on_char '\r')
    |> List.filter (fun w -> w <> "")
  in
  String.concat " " words

let fn_subsequence args =
  let slice s start len =
    let items = Array.of_list s in
    let n = Array.length items in
    let first = int_of_float (Float.round start) in
    let last =
      match len with
      | None -> n
      | Some l -> first + int_of_float (Float.round l) - 1
    in
    let out = ref [] in
    for i = n downto 1 do
      if i >= first && i <= last then out := items.(i - 1) :: !out
    done;
    !out
  in
  match args with
  | [ s; start ] ->
    slice s (Atom.to_number (singleton_atom "subsequence" start)) None
  | [ s; start; len ] ->
    slice s
      (Atom.to_number (singleton_atom "subsequence" start))
      (Some (Atom.to_number (singleton_atom "subsequence" len)))
  | _ -> err "subsequence: expected 2 or 3 arguments"

let fn_index_of args =
  match args with
  | [ s; target ] ->
    let t = singleton_atom "index-of" target in
    List.filteri (fun _ _ -> true) (Item.atomize s)
    |> List.mapi (fun i a -> (i + 1, a))
    |> List.filter_map (fun (i, a) ->
           if Atom.equal_value a t then Some (Item.A (Atom.Int i)) else None)
  | _ -> err "index-of: expected 2 arguments"

let fn_insert_before args =
  match args with
  | [ target; pos; inserts ] ->
    let p = max 1 (Atom.to_int (singleton_atom "insert-before" pos)) in
    let rec go i = function
      | [] -> inserts
      | x :: rest when i < p -> x :: go (i + 1) rest
      | rest -> inserts @ rest
    in
    go 1 target
  | _ -> err "insert-before: expected 3 arguments"

let fn_remove args =
  match args with
  | [ target; pos ] ->
    let p = Atom.to_int (singleton_atom "remove" pos) in
    List.filteri (fun i _ -> i + 1 <> p) target
  | _ -> err "remove: expected 2 arguments"

let table :
    (string, ctx -> Item.seq list -> Item.seq) Hashtbl.t =
  Hashtbl.create 64

let reg name f = Hashtbl.replace table name f

let arity1 who f = function
  | [ a ] -> f a
  | args -> err "%s: expected 1 argument, got %d" who (List.length args)

let arity2 who f = function
  | [ a; b ] -> f a b
  | args -> err "%s: expected 2 arguments, got %d" who (List.length args)

let () =
  reg "doc" fn_doc;
  reg "id" fn_id;
  reg "idref" fn_idref;
  reg "root" (fun ctx args ->
      match args with
      | [] -> [ Item.N (Node.root (context_node ctx "root")) ]
      | [ s ] -> (
        match opt_node "root" s with
        | None -> []
        | Some n -> [ Item.N (Node.root n) ])
      | _ -> err "root: expected 0 or 1 arguments");
  reg "count" (fun _ -> arity1 "count" (fun s -> int_ (List.length s)));
  reg "empty" (fun _ -> arity1 "empty" (fun s -> [ Item.A (Atom.Bool (s = [])) ]));
  reg "exists" (fun _ -> arity1 "exists" (fun s -> [ Item.A (Atom.Bool (s <> [])) ]));
  reg "not" (fun _ ->
      arity1 "not" (fun s -> [ Item.A (Atom.Bool (not (Item.effective_boolean s))) ]));
  reg "boolean" (fun _ -> arity1 "boolean" bool_);
  reg "true" (fun _ args ->
      if args = [] then [ Item.A (Atom.Bool true) ] else err "true: no arguments");
  reg "false" (fun _ args ->
      if args = [] then [ Item.A (Atom.Bool false) ] else err "false: no arguments");
  reg "data" (fun _ ->
      arity1 "data" (fun s -> List.map (fun a -> Item.A a) (Item.atomize s)));
  reg "string" (fun ctx args ->
      match args with
      | [] -> (
        match ctx.context_item with
        | Some it -> str (Item.string_of_item it)
        | None -> err "string: no context item")
      | [ s ] -> (
        match s with
        | [] -> str ""
        | [ it ] -> str (Item.string_of_item it)
        | _ -> err "string: expected at most one item")
      | _ -> err "string: expected 0 or 1 arguments");
  reg "string-length" (fun ctx args ->
      match args with
      | [] -> (
        match ctx.context_item with
        | Some it -> int_ (String.length (Item.string_of_item it))
        | None -> err "string-length: no context item")
      | [ s ] -> int_ (String.length (string_arg "string-length" s))
      | _ -> err "string-length: expected 0 or 1 arguments");
  reg "normalize-space" (fun ctx args ->
      match args with
      | [] -> (
        match ctx.context_item with
        | Some it -> str (normalize_space (Item.string_of_item it))
        | None -> err "normalize-space: no context item")
      | [ s ] -> str (normalize_space (string_arg "normalize-space" s))
      | _ -> err "normalize-space: expected 0 or 1 arguments");
  reg "concat" (fun _ args ->
      if List.length args < 2 then err "concat: expected 2 or more arguments"
      else
        str (String.concat "" (List.map (string_arg "concat") args)));
  reg "string-join" (fun _ ->
      arity2 "string-join" (fun s sep ->
          let sep = string_arg "string-join" sep in
          str
            (String.concat sep
               (List.map Atom.to_string (Item.atomize s)))));
  reg "contains" (fun _ ->
      arity2 "contains" (fun a b ->
          let a = string_arg "contains" a and b = string_arg "contains" b in
          let n = String.length b in
          let ok = ref (n = 0) in
          if n > 0 then
            for i = 0 to String.length a - n do
              if String.sub a i n = b then ok := true
            done;
          [ Item.A (Atom.Bool !ok) ]));
  reg "starts-with" (fun _ ->
      arity2 "starts-with" (fun a b ->
          let a = string_arg "starts-with" a
          and b = string_arg "starts-with" b in
          [ Item.A
              (Atom.Bool
                 (String.length a >= String.length b
                 && String.sub a 0 (String.length b) = b)) ]));
  reg "ends-with" (fun _ ->
      arity2 "ends-with" (fun a b ->
          let a = string_arg "ends-with" a and b = string_arg "ends-with" b in
          let la = String.length a and lb = String.length b in
          [ Item.A (Atom.Bool (la >= lb && String.sub a (la - lb) lb = b)) ]));
  reg "substring" (fun _ args -> fn_substring args);
  reg "substring-before" (fun _ ->
      arity2 "substring-before" (fun a b ->
          let a = string_arg "substring-before" a
          and b = string_arg "substring-before" b in
          let n = String.length b in
          let res = ref "" in
          (try
             for i = 0 to String.length a - n do
               if n > 0 && String.sub a i n = b then begin
                 res := String.sub a 0 i;
                 raise Exit
               end
             done
           with Exit -> ());
          str !res));
  reg "substring-after" (fun _ ->
      arity2 "substring-after" (fun a b ->
          let a = string_arg "substring-after" a
          and b = string_arg "substring-after" b in
          let n = String.length b in
          let res = ref "" in
          (try
             for i = 0 to String.length a - n do
               if n > 0 && String.sub a i n = b then begin
                 res := String.sub a (i + n) (String.length a - i - n);
                 raise Exit
               end
             done
           with Exit -> ());
          str !res));
  reg "upper-case" (fun _ ->
      arity1 "upper-case" (fun s ->
          str (String.uppercase_ascii (string_arg "upper-case" s))));
  reg "lower-case" (fun _ ->
      arity1 "lower-case" (fun s ->
          str (String.lowercase_ascii (string_arg "lower-case" s))));
  reg "translate" (fun _ args -> fn_translate args);
  reg "number" (fun ctx args ->
      let num s =
        match opt_atom "number" s with
        | None -> dbl Float.nan
        | Some a -> ( try dbl (Atom.to_number a) with Atom.Type_error _ -> dbl Float.nan)
      in
      match args with
      | [] -> (
        match ctx.context_item with
        | Some it -> num [ it ]
        | None -> err "number: no context item")
      | [ s ] -> num s
      | _ -> err "number: expected 0 or 1 arguments");
  reg "sum" (fun _ args ->
      match args with
      | [ s ] -> (
        match numeric_agg "sum" ( +. ) 0.0 s with [] -> int_ 0 | r -> r)
      | [ s; zero ] -> (
        match numeric_agg "sum" ( +. ) 0.0 s with [] -> zero | r -> r)
      | _ -> err "sum: expected 1 or 2 arguments");
  reg "avg" (fun _ ->
      arity1 "avg" (fun s ->
          match Item.atomize s with
          | [] -> []
          | atoms ->
            let total =
              List.fold_left (fun acc a -> acc +. Atom.to_number a) 0.0 atoms
            in
            dbl (total /. float_of_int (List.length atoms))));
  reg "max" (fun _ -> arity1 "max" (fun s -> minmax "max" (fun c -> c > 0) s));
  reg "min" (fun _ -> arity1 "min" (fun s -> minmax "min" (fun c -> c < 0) s));
  reg "abs" (fun _ ->
      arity1 "abs" (fun s ->
          match opt_atom "abs" s with
          | None -> []
          | Some (Atom.Int i) -> int_ (abs i)
          | Some a -> dbl (Float.abs (Atom.to_number a))));
  reg "floor" (fun _ ->
      arity1 "floor" (fun s ->
          match opt_atom "floor" s with
          | None -> []
          | Some (Atom.Int i) -> int_ i
          | Some a -> dbl (Float.floor (Atom.to_number a))));
  reg "ceiling" (fun _ ->
      arity1 "ceiling" (fun s ->
          match opt_atom "ceiling" s with
          | None -> []
          | Some (Atom.Int i) -> int_ i
          | Some a -> dbl (Float.ceil (Atom.to_number a))));
  reg "round" (fun _ ->
      arity1 "round" (fun s ->
          match opt_atom "round" s with
          | None -> []
          | Some (Atom.Int i) -> int_ i
          | Some a -> dbl (Float.round (Atom.to_number a))));
  reg "position" (fun ctx args ->
      if args <> [] then err "position: no arguments"
      else if ctx.context_item = None then err "position: no context item"
      else int_ ctx.context_pos);
  reg "last" (fun ctx args ->
      if args <> [] then err "last: no arguments"
      else if ctx.context_item = None then err "last: no context item"
      else int_ ctx.context_size);
  reg "name" (fun ctx args ->
      let of_node = function None -> str "" | Some n -> str (Node.name n) in
      match args with
      | [] -> of_node (Some (context_node ctx "name"))
      | [ s ] -> of_node (opt_node "name" s)
      | _ -> err "name: expected 0 or 1 arguments");
  reg "local-name" (fun ctx args ->
      let of_node = function
        | None -> str ""
        | Some n -> str (Node.local_name n)
      in
      match args with
      | [] -> of_node (Some (context_node ctx "local-name"))
      | [ s ] -> of_node (opt_node "local-name" s)
      | _ -> err "local-name: expected 0 or 1 arguments");
  reg "distinct-values" (fun _ ->
      arity1 "distinct-values" (fun s ->
          let seen = ref [] in
          List.filter_map
            (fun a ->
              if List.exists (Atom.equal_value a) !seen then None
              else begin
                seen := a :: !seen;
                Some (Item.A a)
              end)
            (Item.atomize s)));
  reg "reverse" (fun _ -> arity1 "reverse" List.rev);
  reg "unordered" (fun _ -> arity1 "unordered" (fun s -> s));
  reg "subsequence" (fun _ args -> fn_subsequence args);
  reg "index-of" (fun _ args -> fn_index_of args);
  reg "insert-before" (fun _ args -> fn_insert_before args);
  reg "remove" (fun _ args -> fn_remove args);
  reg "tokenize" (fun _ ->
      (* literal-separator tokenize (no regular expressions in this
         subset); 1-arg form splits on whitespace *)
      fun args ->
        match args with
        | [ s ] ->
          List.map (fun t -> Item.A (Atom.Str t))
            (whitespace_split (string_arg "tokenize" s))
        | [ s; sep ] ->
          let s = string_arg "tokenize" s in
          let sep = string_arg "tokenize" sep in
          if sep = "" then err "tokenize: empty separator"
          else
            let rec split acc start =
              match find_sub s sep start with
              | None ->
                List.rev (String.sub s start (String.length s - start) :: acc)
              | Some i ->
                split (String.sub s start (i - start) :: acc)
                  (i + String.length sep)
            in
            List.map (fun t -> Item.A (Atom.Str t)) (split [] 0)
        | _ -> err "tokenize: expected 1 or 2 arguments");
  reg "deep-equal" (fun _ ->
      arity2 "deep-equal" (fun a b ->
          [ Item.A (Atom.Bool (Item.deep_equal a b)) ]));
  reg "zero-or-one" (fun _ ->
      arity1 "zero-or-one" (fun s ->
          if List.length s <= 1 then s
          else err "zero-or-one: more than one item"));
  reg "one-or-more" (fun _ ->
      arity1 "one-or-more" (fun s ->
          if s <> [] then s else err "one-or-more: empty sequence"));
  reg "exactly-one" (fun _ ->
      arity1 "exactly-one" (fun s ->
          if List.length s = 1 then s else err "exactly-one: not a singleton"))

let call ctx name args =
  match Hashtbl.find_opt table name with
  | Some f -> Some (f ctx args)
  | None -> None

let is_builtin name = Hashtbl.mem table name
let names () = Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare
