module Item = Fixq_xdm.Item

exception Diverged of int

let default_max = 1_000_000

(* Figure 3(a): res ← erec(eseed); do res ← erec(res) ∪ res while res
   grows. Growth is detected on node-identity sets, which for node
   sequences coincides with the set-equality test of Definition 2.1.
   With [include_seed] the iteration starts from res ← eseed instead
   (Example 2.4's convention). *)
let naive ?(max_iterations = default_max) ?(include_seed = false) ~stats ~body
    ~seed () =
  Stats.start_run stats;
  let record input out res =
    Stats.record_iteration stats ~fed:(List.length input)
      ~produced:(List.length out) ~result_size:(List.length res)
  in
  let res =
    if include_seed then Item.ddo seed
    else begin
      let first = body seed in
      let res = Item.ddo first in
      record seed first res;
      res
    end
  in
  let rec loop res i =
    if i > max_iterations then raise (Diverged i);
    let out = body res in
    let next = Item.union out res in
    record res out next;
    if List.length next = List.length res then next else loop next (i + 1)
  in
  loop res 1

(* Figure 3(b): the payload sees only the newly discovered nodes. *)
let delta ?(max_iterations = default_max) ?(include_seed = false) ~stats ~body
    ~seed () =
  Stats.start_run stats;
  let record input out res =
    Stats.record_iteration stats ~fed:(List.length input)
      ~produced:(List.length out) ~result_size:(List.length res)
  in
  let res =
    if include_seed then Item.ddo seed
    else begin
      let first = body seed in
      let res = Item.ddo first in
      record seed first res;
      res
    end
  in
  let rec loop delta res i =
    if i > max_iterations then raise (Diverged i);
    let out = body delta in
    let delta' = Item.except out res in
    let res' = Item.union delta' res in
    record delta out res';
    if delta' = [] then res' else loop delta' res' (i + 1)
  in
  loop res res 1

(* Parallel Delta (Section 7's divide-and-conquer reading of
   distributivity): split each round's ∆ across domains. The first
   round runs sequentially so lazily-built document indexes are in
   place before concurrent reads. *)
let delta_parallel ?(max_iterations = default_max) ?(include_seed = false)
    ?domains ?(chunk_threshold = 64) ~stats ~body ~seed () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let split k items =
    (* k roughly equal chunks, preserving order within chunks *)
    let n = List.length items in
    let size = max 1 ((n + k - 1) / k) in
    let rec go acc current count = function
      | [] ->
        List.rev
          (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if count = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (count + 1) rest
    in
    go [] [] 0 items
  in
  let apply_parallel input =
    if domains = 1 || List.length input < chunk_threshold then body input
    else begin
      let chunks = split domains input in
      match chunks with
      | [] -> []
      | first :: rest ->
        let handles =
          List.map (fun chunk -> Domain.spawn (fun () -> body chunk)) rest
        in
        let mine = body first in
        mine @ List.concat_map Domain.join handles
    end
  in
  Stats.start_run stats;
  let record input out res =
    Stats.record_iteration stats ~fed:(List.length input)
      ~produced:(List.length out) ~result_size:(List.length res)
  in
  let res =
    if include_seed then Item.ddo seed
    else begin
      (* sequential first application: warms lazy indexes *)
      let first = body seed in
      let res = Item.ddo first in
      record seed first res;
      res
    end
  in
  let rec loop delta res i =
    if i > max_iterations then raise (Diverged i);
    let out = apply_parallel delta in
    let delta' = Item.except out res in
    let res' = Item.union delta' res in
    record delta out res';
    if delta' = [] then res' else loop delta' res' (i + 1)
  in
  loop res res 1
