lib/lang/static.pp.ml: Ast Builtins Format Hashtbl List Printf
