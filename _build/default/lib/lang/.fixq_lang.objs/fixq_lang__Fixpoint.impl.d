lib/lang/fixpoint.pp.ml: Domain Fixq_xdm List Stats
