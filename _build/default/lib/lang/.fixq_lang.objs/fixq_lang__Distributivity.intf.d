lib/lang/distributivity.pp.mli: Ast Hashtbl
