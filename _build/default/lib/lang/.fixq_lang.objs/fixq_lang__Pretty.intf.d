lib/lang/pretty.pp.mli: Ast Format
