lib/lang/lexer.pp.ml: Buffer Char Format Printf String
