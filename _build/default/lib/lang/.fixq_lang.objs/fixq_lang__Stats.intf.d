lib/lang/stats.pp.mli: Format
