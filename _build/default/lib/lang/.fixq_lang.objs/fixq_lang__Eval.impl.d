lib/lang/eval.pp.ml: Ast Builtins Distributivity Fixpoint Fixq_xdm Float Format Hashtbl List Map Option Parser Stats String
