lib/lang/static.pp.mli: Ast Format
