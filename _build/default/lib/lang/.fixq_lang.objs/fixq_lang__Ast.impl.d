lib/lang/ast.pp.ml: Fixq_xdm Format Hashtbl List Ppx_deriving_runtime Printf String
