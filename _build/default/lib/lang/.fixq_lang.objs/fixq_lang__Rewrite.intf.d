lib/lang/rewrite.pp.mli: Ast
