lib/lang/eval.pp.mli: Ast Fixq_xdm Hashtbl Stats
