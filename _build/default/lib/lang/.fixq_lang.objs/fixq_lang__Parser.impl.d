lib/lang/parser.pp.ml: Ast Buffer Char Fixq_xdm Format Lexer List String
