lib/lang/distributivity.pp.ml: Array Ast Fixq_xdm Format Hashtbl List
