lib/lang/pretty.pp.ml: Ast Buffer Fixq_xdm Float Format List Printf String
