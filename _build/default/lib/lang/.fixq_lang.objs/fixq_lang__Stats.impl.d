lib/lang/stats.pp.ml: Format List
