lib/lang/fixpoint.pp.mli: Fixq_xdm Stats
