lib/lang/lexer.pp.mli:
