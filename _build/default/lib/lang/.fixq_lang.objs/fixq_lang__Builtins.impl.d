lib/lang/builtins.pp.ml: Array Buffer Fixq_xdm Float Format Hashtbl List String
