lib/lang/rewrite.pp.ml: Ast Hashtbl List Printf
