lib/lang/builtins.pp.mli: Fixq_xdm
