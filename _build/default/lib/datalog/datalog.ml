type term = Var of string | Sym of string | Num of int

type literal = { polarity : bool; pred : string; args : term list }

type rule = { head : literal; body : literal list }

type program = { rules : rule list; query : literal option }

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Sym s -> Format.pp_print_string ppf s
  | Num n -> Format.pp_print_int ppf n

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type token = Tname of string | Tvar of string | Tnum of int
           | Tlp | Trp | Tcomma | Tdot | Tarrow | Tnot | Tquery

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let lower c = c >= 'a' && c <= 'z' in
  let upper c = (c >= 'A' && c <= 'Z') || c = '_' in
  let wordc c =
    lower c || upper c || (c >= '0' && c <= '9') || c = '_' || c = '-'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '(' then (toks := Tlp :: !toks; incr i)
    else if c = ')' then (toks := Trp :: !toks; incr i)
    else if c = ',' then (toks := Tcomma :: !toks; incr i)
    else if c = '.' then (toks := Tdot :: !toks; incr i)
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then begin
      toks := Tarrow :: !toks;
      i := !i + 2
    end
    else if c = '?' && !i + 1 < n && src.[!i + 1] = '-' then begin
      toks := Tquery :: !toks;
      i := !i + 2
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      toks := Tnum (int_of_string (String.sub src start (!i - start))) :: !toks
    end
    else if lower c || upper c then begin
      let start = !i in
      while !i < n && wordc src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if word = "not" then toks := Tnot :: !toks
      else if upper c then toks := Tvar word :: !toks
      else toks := Tname word :: !toks
    end
    else err "unexpected character %C at offset %d" c !i
  done;
  List.rev !toks

let parse src =
  let toks = ref (tokenize src) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let expect t what =
    match peek () with
    | Some u when u = t -> advance ()
    | _ -> err "expected %s" what
  in
  let parse_term () =
    match peek () with
    | Some (Tvar v) ->
      advance ();
      Var v
    | Some (Tname s) ->
      advance ();
      Sym s
    | Some (Tnum k) ->
      advance ();
      Num k
    | _ -> err "expected a term"
  in
  let parse_literal () =
    let polarity =
      match peek () with
      | Some Tnot ->
        advance ();
        false
      | _ -> true
    in
    match peek () with
    | Some (Tname pred) ->
      advance ();
      expect Tlp "'('";
      let rec args acc =
        let t = parse_term () in
        match peek () with
        | Some Tcomma ->
          advance ();
          args (t :: acc)
        | _ ->
          expect Trp "')'";
          List.rev (t :: acc)
      in
      { polarity; pred; args = args [] }
    | _ -> err "expected a predicate"
  in
  let rules = ref [] in
  let query = ref None in
  let rec clauses () =
    match peek () with
    | None -> ()
    | Some Tquery ->
      advance ();
      let l = parse_literal () in
      if not l.polarity then err "queries must be positive";
      if !query <> None then err "at most one query";
      query := Some l;
      expect Tdot "'.'";
      clauses ()
    | Some _ ->
      let head = parse_literal () in
      if not head.polarity then err "rule heads must be positive";
      let body =
        match peek () with
        | Some Tarrow ->
          advance ();
          let rec lits acc =
            let l = parse_literal () in
            match peek () with
            | Some Tcomma ->
              advance ();
              lits (l :: acc)
            | _ -> List.rev (l :: acc)
          in
          lits []
        | _ -> []
      in
      expect Tdot "'.'";
      rules := { head; body } :: !rules;
      clauses ()
  in
  clauses ();
  { rules = List.rev !rules; query = !query }

(* ------------------------------------------------------------------ *)
(* Static checks                                                       *)
(* ------------------------------------------------------------------ *)

let vars_of args =
  List.filter_map (function Var v -> Some v | _ -> None) args

let check_safety (p : program) =
  List.iter
    (fun r ->
      let positive_vars =
        List.concat_map
          (fun l -> if l.polarity then vars_of l.args else [])
          r.body
      in
      List.iter
        (fun v ->
          if not (List.mem v positive_vars) then
            err
              "unsafe rule for %s: variable %s does not occur in a \
               positive body literal"
              r.head.pred v)
        (vars_of r.head.args);
      List.iter
        (fun l ->
          if not l.polarity then
            List.iter
              (fun v ->
                if not (List.mem v positive_vars) then
                  err
                    "unsafe negation in rule for %s: variable %s is not \
                     bound positively"
                    r.head.pred v)
              (vars_of l.args))
        r.body)
    p.rules

(* Stratification by iterated relaxation: stratum(head) ≥ stratum(pos
   dep), > stratum(neg dep); a stratum exceeding the predicate count
   witnesses recursion through negation. *)
let stratum_numbers (p : program) =
  let preds =
    List.sort_uniq compare
      (List.concat_map
         (fun r -> r.head.pred :: List.map (fun l -> l.pred) r.body)
         p.rules
      @ (match p.query with Some q -> [ q.pred ] | None -> []))
  in
  let n = List.length preds in
  let s : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun pr -> Hashtbl.replace s pr 1) preds;
  let get pr = Option.value ~default:1 (Hashtbl.find_opt s pr) in
  let changed = ref true in
  let guard = ref 0 in
  while !changed do
    changed := false;
    incr guard;
    if !guard > (n * n) + n + 2 then
      err "the program is not stratifiable (recursion through negation)";
    List.iter
      (fun r ->
        List.iter
          (fun l ->
            let need = if l.polarity then get l.pred else get l.pred + 1 in
            if get r.head.pred < need then begin
              if need > n + 1 then
                err
                  "the program is not stratifiable (recursion through \
                   negation)";
              Hashtbl.replace s r.head.pred need;
              changed := true
            end)
          r.body)
      p.rules
  done;
  (preds, s)

let stratify p =
  let (preds, s) = stratum_numbers p in
  let max_stratum =
    List.fold_left (fun acc pr -> max acc (Hashtbl.find s pr)) 1 preds
  in
  List.init max_stratum (fun i ->
      List.filter (fun pr -> Hashtbl.find s pr = i + 1) preds)
  |> List.filter (fun group -> group <> [])

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

module Tuple_set = Set.Make (struct
  type t = term list

  let compare = compare
end)

type db = (string, Tuple_set.t) Hashtbl.t

let db_find (db : db) pred =
  Option.value ~default:Tuple_set.empty (Hashtbl.find_opt db pred)

let db_add (db : db) pred tuple =
  Hashtbl.replace db pred (Tuple_set.add tuple (db_find db pred))

(* unification of a literal's argument pattern against a ground tuple *)
let match_tuple bindings args tuple =
  let rec go bindings args tuple =
    match (args, tuple) with
    | ([], []) -> Some bindings
    | (Var v :: ra, c :: rt) -> (
      match List.assoc_opt v bindings with
      | Some bound -> if bound = c then go bindings ra rt else None
      | None -> go ((v, c) :: bindings) ra rt)
    | (a :: ra, c :: rt) -> if a = c then go bindings ra rt else None
    | _ -> None
  in
  if List.length args <> List.length tuple then None
  else go bindings args tuple

let instantiate bindings args =
  List.map
    (fun t ->
      match t with
      | Var v -> (
        match List.assoc_opt v bindings with
        | Some c -> c
        | None -> err "internal: unbound variable %s" v)
      | c -> c)
    args

type algorithm = Naive | Seminaive

type result = {
  facts : (string * term list) list;
  answers : term list list;
  iterations : int;
  rows_fed : int;
}

let run ?(algorithm = Seminaive) (p : program) : result =
  check_safety p;
  List.iter
    (fun r ->
      if r.body = [] && vars_of r.head.args <> [] then
        err "facts must be ground: %s" r.head.pred)
    p.rules;
  let strata = stratify p in
  let db : db = Hashtbl.create 32 in
  let iterations = ref 0 in
  let rows_fed = ref 0 in
  (* facts enter the db up-front *)
  List.iter
    (fun r -> if r.body = [] then db_add db r.head.pred r.head.args)
    p.rules;
  (* Evaluate one rule; [delta] optionally designates one body literal
     (by physical identity) to draw from the given delta set instead of
     the full relation — semi-naïve differentiation, one occurrence at
     a time. [rows_fed] counts tuples enumerated for literals of the
     current stratum, once per rule evaluation (not per join branch),
     mirroring Table 2's nodes-fed-back metric. *)
  let eval_rule ?delta ~stratum r =
    let out = ref [] in
    let source_of l =
      match delta with
      | Some (dlit, dset) when l == dlit -> dset
      | _ -> db_find db l.pred
    in
    List.iter
      (fun l ->
        if l.polarity && List.mem l.pred stratum then
          rows_fed := !rows_fed + Tuple_set.cardinal (source_of l))
      r.body;
    let rec go bindings = function
      | [] -> out := instantiate bindings r.head.args :: !out
      | l :: rest when l.polarity ->
        Tuple_set.iter
          (fun tuple ->
            match match_tuple bindings l.args tuple with
            | Some b -> go b rest
            | None -> ())
          (source_of l)
      | l :: rest ->
        (* negated: safety guarantees groundness here *)
        let probe = instantiate bindings l.args in
        if not (Tuple_set.mem probe (db_find db l.pred)) then go bindings rest
    in
    (match delta with
    | Some (_, dset) when Tuple_set.is_empty dset -> ()
    | _ -> go [] r.body);
    !out
  in
  List.iter
    (fun stratum ->
      let rules =
        List.filter
          (fun r -> r.body <> [] && List.mem r.head.pred stratum)
          p.rules
      in
      (* the fed-tuples metric tracks derived (IDB) predicates of this
         stratum only — the analogue of "nodes fed back" in Table 2 *)
      let idb = List.map (fun r -> r.head.pred) rules in
      let stratum = List.filter (fun pr -> List.mem pr idb) stratum in
      if rules <> [] then begin
        match algorithm with
        | Naive ->
          let rec loop () =
            incr iterations;
            let added = ref false in
            List.iter
              (fun r ->
                List.iter
                  (fun tuple ->
                    if not (Tuple_set.mem tuple (db_find db r.head.pred))
                    then begin
                      db_add db r.head.pred tuple;
                      added := true
                    end)
                  (eval_rule ~stratum r))
              rules;
            if !added then loop ()
          in
          loop ()
        | Seminaive ->
          (* round 0: full evaluation seeds the deltas *)
          incr iterations;
          let deltas : db = Hashtbl.create 8 in
          List.iter
            (fun r ->
              List.iter
                (fun tuple ->
                  if not (Tuple_set.mem tuple (db_find db r.head.pred))
                  then begin
                    db_add db r.head.pred tuple;
                    db_add deltas r.head.pred tuple
                  end)
                (eval_rule ~stratum r))
            rules;
          let rec loop deltas =
            incr iterations;
            let next : db = Hashtbl.create 8 in
            let fresh = ref false in
            List.iter
              (fun r ->
                (* differentiate on each recursive-literal occurrence *)
                List.iter
                  (fun l ->
                    if l.polarity && List.mem l.pred stratum then begin
                      let dset = db_find deltas l.pred in
                      List.iter
                        (fun tuple ->
                          if
                            not
                              (Tuple_set.mem tuple (db_find db r.head.pred))
                          then begin
                            db_add db r.head.pred tuple;
                            db_add next r.head.pred tuple;
                            fresh := true
                          end)
                        (eval_rule ~delta:(l, dset) ~stratum r)
                    end)
                  r.body)
              rules;
            if !fresh then loop next
          in
          loop deltas
      end)
    strata;
  let facts =
    Hashtbl.fold
      (fun pred set acc ->
        Tuple_set.fold (fun tuple acc -> (pred, tuple) :: acc) set acc)
      db []
    |> List.sort compare
  in
  let answers =
    match p.query with
    | None -> []
    | Some q ->
      Tuple_set.fold
        (fun tuple acc ->
          match match_tuple [] q.args tuple with
          | Some _ -> tuple :: acc
          | None -> acc)
        (db_find db q.pred) []
      |> List.sort compare
  in
  { facts; answers; iterations = !iterations; rows_fed = !rows_fed }
