(** A Datalog engine with stratified negation — the Section 6 link.

    The paper notes that for stratified Datalog "Delta is applicable in
    all cases: positive Datalog maps onto the distributive operators of
    relational algebra (π, σ, ⋈, ∪, ∩) while stratification yields
    partial applications of the difference operator x\R in which R is
    fixed". This module makes that concrete: bottom-up evaluation,
    stratum by stratum, with both Naïve and semi-naïve (Delta)
    iteration — and, per the quoted claim, the two always agree.

    Syntax (one clause per [.]):

    {v
    edge(a, b).                      facts
    path(X, Y) :- edge(X, Y).        rules; variables are capitalized
    path(X, Z) :- edge(X, Y), path(Y, Z).
    unreachable(X, Y) :- node(X), node(Y), not path(X, Y).
    ?- path(a, X).                   query (optional; at most one)
    v}

    Static checks: {e safety} (every variable of a head or of a negated
    literal occurs in a positive body literal) and {e stratification}
    (no recursion through negation). *)

type term = Var of string | Sym of string | Num of int

type literal = { polarity : bool; pred : string; args : term list }

type rule = { head : literal; body : literal list }
(** facts are rules with an empty body *)

type program = { rules : rule list; query : literal option }

exception Error of string

val parse : string -> program

type algorithm = Naive | Seminaive

type result = {
  facts : (string * term list) list;
      (** all derived (and given) facts, predicate + constant tuple *)
  answers : term list list;
      (** instantiations of the query's variables (whole tuples of the
          queried predicate), when a query was given *)
  iterations : int;  (** fixpoint rounds, summed over strata *)
  rows_fed : int;  (** total tuples fed into rule bodies (Delta's metric) *)
}

(** Evaluate bottom-up. Raises {!Error} on safety or stratification
    violations. *)
val run : ?algorithm:algorithm -> program -> result

(** The strata as predicate groups, lowest first (exposed for tests). *)
val stratify : program -> string list list

(** Pretty-print a term. *)
val pp_term : Format.formatter -> term -> unit
