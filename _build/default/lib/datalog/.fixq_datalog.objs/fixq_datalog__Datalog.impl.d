lib/datalog/datalog.ml: Format Hashtbl List Option Set String
