lib/datalog/datalog.mli: Format
