type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_u64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let v = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_u64 t) 1L = 1L

let geometric t ~p ~max =
  let rec go n = if n >= max || float t < p then n else go (n + 1) in
  go 0

let choose t arr = arr.(int t (Array.length arr))
