(** Shakespeare-markup play generator (Jon Bosak's XML corpus shape) —
    substrate of the Romeo-and-Juliet dialog experiment.

    Scenes contain runs of [SPEECH] elements. Within a run two speakers
    alternate strictly (an "uninterrupted dialog"); runs are separated
    by a repeated-speaker break. One run of exactly [max_dialog]
    speeches is planted so the maximum dialog length — and hence the
    recursion depth of the dialog query — is known. *)

type params = {
  seed : int;
  acts : int;
  scenes_per_act : int;
  speeches_per_scene : int;
  max_dialog : int;  (** planted longest alternating run (paper: 33) *)
}

val default : params

val generate : params -> Fixq_xdm.Node.t

val load :
  ?registry:Fixq_xdm.Doc_registry.t -> ?uri:string -> params -> Fixq_xdm.Node.t

(** Total number of SPEECH elements the parameters produce. *)
val speech_count : params -> int

(** The true maximum alternating-run length of the generated play
    (computed from the tree; equals [max_dialog] by construction unless
    a random run happens to be longer). *)
val longest_dialog : Fixq_xdm.Node.t -> int
