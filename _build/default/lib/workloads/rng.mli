(** Deterministic splitmix64 PRNG — every workload instance is
    reproducible from its seed, independent of OCaml's stdlib Random
    state. *)

type t

val create : int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Geometric-ish: number of failures before a success with probability
    [p]; capped at [max]. *)
val geometric : t -> p:float -> max:int -> int

(** Pick a uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a
