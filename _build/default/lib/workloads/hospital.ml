module Node = Fixq_xdm.Node
module Doc_registry = Fixq_xdm.Doc_registry

type params = {
  total : int;
  seed : int;
  max_depth : int;
  sick_fraction : float;
}

let default = { total = 50_000; seed = 23; max_depth = 5; sick_fraction = 0.1 }

let diseases = [| "hd1"; "hd2"; "flu"; "none" |]

let generate p =
  let rng = Rng.create p.seed in
  let counter = ref 0 in
  (* Build patients until the budget is exhausted; each top-level
     patient gets a random genealogy of depth ≤ max_depth. *)
  let rec patient depth =
    if !counter >= p.total then None
    else begin
      incr counter;
      let pid = !counter in
      let sick = Rng.float rng < p.sick_fraction in
      let diagnosis =
        if sick then "hereditary" else Rng.choose rng diseases
      in
      let n_parents =
        if depth >= p.max_depth then 0 else Rng.int rng 3 (* 0, 1 or 2 *)
      in
      let parents =
        List.filter_map (fun _ -> patient (depth + 1)) (List.init n_parents (fun _ -> ()))
      in
      Some
        (Node.E
           ( "patient",
             [ ("pid", string_of_int pid) ],
             [ Node.E ("diagnosis", [], [ Node.T diagnosis ]);
               Node.E ("parents", [], parents) ] ))
    end
  in
  let tops = ref [] in
  while !counter < p.total do
    match patient 1 with
    | Some t -> tops := t :: !tops
    | None -> ()
  done;
  Node.of_spec (Node.E ("hospital", [], List.rev !tops))

let load ?(registry = Doc_registry.default) ?(uri = "hospital.xml") p =
  let doc = generate p in
  Doc_registry.register ~registry uri doc;
  doc

let patient_count doc =
  let k = ref 0 in
  Node.iter_subtree
    (fun n -> if Node.name n = "patient" then incr k)
    (Node.root doc);
  !k
