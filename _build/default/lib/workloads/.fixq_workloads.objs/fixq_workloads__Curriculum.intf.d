lib/workloads/curriculum.mli: Fixq_xdm
