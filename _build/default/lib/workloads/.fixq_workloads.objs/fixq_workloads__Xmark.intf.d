lib/workloads/xmark.mli: Fixq_xdm
