lib/workloads/curriculum.ml: Fixq_xdm Hashtbl List Printf Rng String
