lib/workloads/xmark.ml: Fixq_xdm List Printf Rng
