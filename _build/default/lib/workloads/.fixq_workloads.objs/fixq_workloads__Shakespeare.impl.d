lib/workloads/shakespeare.ml: Fixq_xdm List Printf Rng String
