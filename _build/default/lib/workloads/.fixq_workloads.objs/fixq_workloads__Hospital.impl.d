lib/workloads/hospital.ml: Fixq_xdm List Rng
