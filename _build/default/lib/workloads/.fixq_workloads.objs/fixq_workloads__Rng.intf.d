lib/workloads/rng.mli:
