lib/workloads/queries.ml: Printf
