lib/workloads/shakespeare.mli: Fixq_xdm
