lib/workloads/queries.mli:
