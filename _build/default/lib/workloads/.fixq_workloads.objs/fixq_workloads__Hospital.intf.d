lib/workloads/hospital.mli: Fixq_xdm
