module Node = Fixq_xdm.Node
module Doc_registry = Fixq_xdm.Doc_registry

type params = {
  courses : int;
  seed : int;
  max_prereqs : int;
  back_edge_fraction : float;
}

let default =
  { courses = 800; seed = 11; max_prereqs = 3; back_edge_fraction = 0.02 }

let generate p =
  let rng = Rng.create p.seed in
  let code i = Printf.sprintf "c%d" (i + 1) in
  let course i =
    (* Forward edges point to earlier (higher-index) courses with a
       locality bias, producing chains; a few back edges close cycles. *)
    let n_pre =
      if i = p.courses - 1 then 0 else Rng.geometric rng ~p:0.45 ~max:p.max_prereqs
    in
    let prereq _ =
      let remaining = p.courses - i - 1 in
      if remaining <= 0 then None
      else
        let hop = 1 + Rng.geometric rng ~p:0.5 ~max:(min 8 remaining - 1) in
        Some (Node.E ("pre_code", [], [ Node.T (code (i + hop)) ]))
    in
    let forward = List.filter_map prereq (List.init n_pre (fun _ -> ())) in
    let backward =
      if i > 0 && Rng.float rng < p.back_edge_fraction then
        [ Node.E ("pre_code", [], [ Node.T (code (Rng.int rng i)) ]) ]
      else []
    in
    Node.E
      ( "course",
        [ ("code", code i) ],
        [ Node.E ("prerequisites", [], forward @ backward) ] )
  in
  let doc =
    Node.of_spec ~id_attrs:[ "code" ]
      (Node.E ("curriculum", [], List.init p.courses course))
  in
  doc

let load ?(registry = Doc_registry.default) ?(uri = "curriculum.xml") p =
  let doc = generate p in
  Doc_registry.register ~registry uri doc;
  doc

let self_prerequisite_codes doc =
  let root = Node.root doc in
  (* Collect the edge list code → prereq codes. *)
  let edges = Hashtbl.create 256 in
  let codes = ref [] in
  Node.iter_subtree
    (fun n ->
      if Node.name n = "course" then begin
        let c =
          match
            List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
          with
          | Some a -> Node.string_value a
          | None -> ""
        in
        codes := c :: !codes;
        let pres = ref [] in
        Node.iter_subtree
          (fun m ->
            if Node.name m = "pre_code" then
              pres := Node.string_value m :: !pres)
          n;
        Hashtbl.replace edges c !pres
      end)
    root;
  let reaches_self start =
    let visited = Hashtbl.create 16 in
    let rec go c =
      match Hashtbl.find_opt edges c with
      | None -> false
      | Some nexts ->
        List.exists
          (fun n ->
            String.equal n start
            ||
            if Hashtbl.mem visited n then false
            else begin
              Hashtbl.replace visited n ();
              go n
            end)
          nexts
    in
    go start
  in
  List.filter reaches_self (List.rev !codes)
