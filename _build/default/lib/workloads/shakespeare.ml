module Node = Fixq_xdm.Node
module Axis = Fixq_xdm.Axis
module Doc_registry = Fixq_xdm.Doc_registry

type params = {
  seed : int;
  acts : int;
  scenes_per_act : int;
  speeches_per_scene : int;
  max_dialog : int;
}

let default =
  { seed = 7; acts = 5; scenes_per_act = 5; speeches_per_scene = 34;
    max_dialog = 33 }

let speakers =
  [| "ROMEO"; "JULIET"; "MERCUTIO"; "BENVOLIO"; "TYBALT"; "NURSE";
     "FRIAR LAURENCE"; "CAPULET"; "LADY CAPULET"; "PARIS" |]

let lines =
  [| "But, soft! what light through yonder window breaks?";
     "O Romeo, Romeo! wherefore art thou Romeo?";
     "A plague o' both your houses!";
     "These violent delights have violent ends.";
     "Wisely and slow; they stumble that run fast.";
     "My only love sprung from my only hate." |]

let speech rng speaker =
  Node.E
    ( "SPEECH", [],
      [ Node.E ("SPEAKER", [], [ Node.T speaker ]);
        Node.E ("LINE", [], [ Node.T (Rng.choose rng lines) ]) ] )

(* A scene is a list of alternating runs; consecutive runs share their
   boundary speaker (a repeated speaker breaks the dialog). *)
let scene rng p ~planted =
  let speeches = ref [] in
  let total = ref 0 in
  let budget = if planted then max p.speeches_per_scene p.max_dialog else p.speeches_per_scene in
  let run len =
    let a = Rng.choose rng speakers in
    let b =
      let rec pick () =
        let x = Rng.choose rng speakers in
        if String.equal x a then pick () else x
      in
      pick ()
    in
    for i = 0 to len - 1 do
      let sp = if i mod 2 = 0 then a else b in
      speeches := speech rng sp :: !speeches;
      incr total
    done;
    (* Break: repeat the last speaker once so the next run cannot extend
       this dialog. *)
    if !total < budget then begin
      let last = if (len - 1) mod 2 = 0 then a else b in
      speeches := speech rng last :: !speeches;
      incr total
    end
  in
  if planted then run p.max_dialog;
  while !total < budget do
    let len = 2 + Rng.geometric rng ~p:0.35 ~max:(p.max_dialog - 2) in
    run (min len (budget - !total))
  done;
  Node.E ("SCENE", [],
          Node.E ("TITLE", [], [ Node.T "A public place." ]) :: List.rev !speeches)

let generate p =
  let rng = Rng.create p.seed in
  let planted_act = 0 and planted_scene = 0 in
  let act ai =
    Node.E
      ( "ACT", [],
        Node.E ("TITLE", [], [ Node.T (Printf.sprintf "ACT %d" (ai + 1)) ])
        :: List.init p.scenes_per_act (fun si ->
               scene rng p ~planted:(ai = planted_act && si = planted_scene))
      )
  in
  Node.of_spec
    (Node.E
       ( "PLAY", [],
         Node.E ("TITLE", [], [ Node.T "The Tragedy of Romeo and Juliet" ])
         :: List.init p.acts act ))

let load ?(registry = Doc_registry.default) ?(uri = "romeo.xml") p =
  let doc = generate p in
  Doc_registry.register ~registry uri doc;
  doc

let speech_count p =
  (* budget per scene, +1 planted scene surplus when max_dialog exceeds
     the budget; exact value comes from the tree, this is the nominal
     count used for sizing *)
  p.acts * p.scenes_per_act * p.speeches_per_scene

let longest_dialog doc =
  let best = ref 0 in
  let rec walk (n : Node.t) =
    if Node.name n = "SCENE" then begin
      let speeches =
        List.filter (fun c -> Node.name c = "SPEECH") (Node.children n)
      in
      let speaker s =
        match
          List.find_opt (fun c -> Node.name c = "SPEAKER") (Node.children s)
        with
        | Some sp -> Node.string_value sp
        | None -> ""
      in
      let rec runs current = function
        | [] -> best := max !best current
        | [ _ ] -> best := max !best (current + 1)
        | a :: (b :: _ as rest) ->
          if String.equal (speaker a) (speaker b) then begin
            best := max !best (current + 1);
            runs 0 rest
          end
          else runs (current + 1) rest
      in
      runs 0 speeches
    end
    else List.iter walk (Node.children n)
  in
  walk (Node.root doc);
  !best
