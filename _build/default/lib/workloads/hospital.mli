(** Hospital patient records (Fan et al., SMOQE, VLDB 2006 stand-in):
    hereditary-disease exploration over hierarchically nested patient
    genealogies.

    The document holds [total] patient records overall; each top-level
    patient nests its parents (and theirs) up to [max_depth] levels
    (paper: subtrees of depth ≤ 5). A fraction of patients carries the
    hereditary diagnosis. *)

type params = {
  total : int;  (** total patient elements (paper: 50 000) *)
  seed : int;
  max_depth : int;  (** genealogy nesting (paper: 5) *)
  sick_fraction : float;
}

val default : params

val generate : params -> Fixq_xdm.Node.t

val load :
  ?registry:Fixq_xdm.Doc_registry.t -> ?uri:string -> params -> Fixq_xdm.Node.t

(** Number of patient elements in the document (= [params.total]). *)
val patient_count : Fixq_xdm.Node.t -> int
