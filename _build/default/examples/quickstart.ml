(* Quickstart: parse an XML document, run the paper's Query Q1 — the
   transitive prerequisites of course "c1" — and look at what the two
   engines and the two fixpoint algorithms do.

   Run with: dune exec examples/quickstart.exe *)

module Xdm = Fixq_xdm

let curriculum =
  {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites/></course>
</curriculum>|}

(* Query Q1 from the paper (Example 2.2): seed the recursion with
   course c1, follow prerequisite ID references until nothing new
   appears. *)
let q1 =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code)|}

let () =
  (* 1. Load the document. The DTD declares @code of type ID, so fn:id
     resolves prerequisite codes. *)
  let doc = Xdm.Xml_parser.parse_string ~strip_whitespace:true curriculum in
  Xdm.Doc_registry.register "curriculum.xml" doc;

  (* 2. Run on the interpreter with automatic strategy selection: the
     body is distributive (Figure 5's rules accept it), so the engine
     evaluates with the Delta algorithm. *)
  let report = Fixq.run ~engine:(Fixq.Interpreter Fixq.Auto) q1 in
  print_endline "Q1 — transitive prerequisites of c1:";
  List.iter
    (fun item -> Printf.printf "  %s\n" (Xdm.Serializer.seq_to_string [ item ]))
    report.Fixq.result;
  Printf.printf "\nDelta used: %b (auto-selected by the distributivity check)\n"
    (report.Fixq.used_delta = Some true);
  Printf.printf "Nodes fed into the recursion body: %d, depth: %d\n"
    report.Fixq.nodes_fed report.Fixq.depth;

  (* 3. Compare with forced Naïve evaluation: same answer, more work. *)
  let naive = Fixq.run ~engine:(Fixq.Interpreter Fixq.Naive) q1 in
  Printf.printf "Naïve would have fed %d nodes (×%.1f)\n" naive.Fixq.nodes_fed
    (float_of_int naive.Fixq.nodes_fed /. float_of_int report.Fixq.nodes_fed);

  (* 4. The relational engine: the body compiles to an algebra plan,
     the ∪ push-up proves distributivity, µ∆ evaluates it. *)
  let alg = Fixq.run ~engine:(Fixq.Algebra Fixq.Auto) q1 in
  Printf.printf "Algebra engine agrees: %b (µ∆ used: %b)\n"
    (Xdm.Item.set_equal alg.Fixq.result report.Fixq.result)
    (alg.Fixq.used_delta = Some true)
