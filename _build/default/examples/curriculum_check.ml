(* Curriculum consistency checking (the xlinkit case study the paper
   benchmarks): find courses that are among their own transitive
   prerequisites — each course seeds its own inflationary fixed point.

   Run with: dune exec examples/curriculum_check.exe [-- <courses>] *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module W = Fixq_workloads

let () =
  let courses =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300
  in
  let registry = Doc_registry.create () in
  let doc =
    W.Curriculum.load ~registry
      { W.Curriculum.default with W.Curriculum.courses }
  in
  Printf.printf "Generated a curriculum of %d courses.\n\n" courses;

  (* The query: one IFP per course, inside a where clause. *)
  print_endline "Query (xlinkit Rule 5):";
  print_endline W.Queries.curriculum_check;
  print_newline ();

  let naive =
    Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Naive)
      W.Queries.curriculum_check
  in
  let delta =
    Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto)
      W.Queries.curriculum_check
  in
  let codes r =
    List.filter_map
      (function
        | Item.N n ->
          List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
          |> Option.map Node.string_value
        | Item.A _ -> None)
      r.Fixq.result
  in
  Printf.printf "Violations (courses among their own prerequisites): %s\n"
    (String.concat ", " (codes delta));

  (* a pure graph-closure oracle must agree *)
  let oracle = W.Curriculum.self_prerequisite_codes doc in
  Printf.printf "Graph oracle agrees: %b\n\n"
    (List.sort compare (codes delta) = List.sort compare oracle);

  Printf.printf "Naïve: %6.1f ms, %7d nodes fed\n" naive.Fixq.wall_ms
    naive.Fixq.nodes_fed;
  Printf.printf "Delta: %6.1f ms, %7d nodes fed  (×%.1f fewer)\n"
    delta.Fixq.wall_ms delta.Fixq.nodes_fed
    (float_of_int naive.Fixq.nodes_fed /. float_of_int (max 1 delta.Fixq.nodes_fed));
  Printf.printf "Max recursion depth: %d\n" delta.Fixq.depth
