(* Section 2 of the paper, SQL side: the same transitive-closure
   computation as Query Q1, expressed with SQL:1999's WITH RECURSIVE
   over the relational curriculum encoding C(course, prerequisite) —
   run with both Naïve and Delta (semi-naïve) iteration, plus the
   standard's linearity restriction (Section 6).

   Run with: dune exec examples/sql_recursive.exe *)

module Sqldb = Fixq_sqlrec.Sqldb
module Sqlrec = Fixq_sqlrec.Sqlrec

let query =
  {|WITH RECURSIVE P(course_code) AS
      ((SELECT prerequisite
        FROM C
        WHERE course = 'c1')
       UNION ALL
       (SELECT C.prerequisite
        FROM P, C
        WHERE P.course_code = C.course))
    SELECT DISTINCT * FROM P;|}

let () =
  let db = Sqldb.create () in
  Sqldb.add_table db "C"
    { Sqldb.columns = [ "course"; "prerequisite" ];
      rows =
        [ [ Sqldb.S "c1"; Sqldb.S "c2" ]; [ Sqldb.S "c1"; Sqldb.S "c3" ];
          [ Sqldb.S "c2"; Sqldb.S "c4" ]; [ Sqldb.S "c3"; Sqldb.S "c5" ];
          [ Sqldb.S "c4"; Sqldb.S "c6" ]; [ Sqldb.S "c6"; Sqldb.S "c2" ] ] };

  print_endline "The paper's Section 2 query:";
  print_endline query;
  print_newline ();

  let q = Sqlrec.parse query in
  Printf.printf "SQL:1999 linearity check: %s\n\n"
    (if Sqlrec.is_linear q then "linear (accepted)" else "NONLINEAR");

  let show name algorithm =
    let r = Sqlrec.run ~algorithm db q in
    Printf.printf "%s: %d iterations, %d rows fed\n" name r.Sqlrec.iterations
      r.Sqlrec.rows_fed;
    Format.printf "%a@." Sqldb.pp_table r.Sqlrec.result
  in
  show "Naïve" Sqlrec.Naive;
  show "Delta (semi-naïve)" Sqlrec.Delta;

  (* the standard rejects a second reference to P in the body *)
  let nonlinear =
    {|WITH RECURSIVE P(c) AS
        ((SELECT prerequisite FROM C WHERE course = 'c1')
         UNION ALL
         (SELECT a.c FROM P a, P b WHERE a.c = b.c))
      SELECT * FROM P|}
  in
  (try ignore (Sqlrec.run ~algorithm:Sqlrec.Naive db (Sqlrec.parse nonlinear))
   with Sqlrec.Error msg ->
     Printf.printf "Nonlinear query rejected as the standard demands:\n  %s\n"
       msg)
