(* The XMark bidder network (Figure 10 of the paper): for every person,
   recursively connect sellers to the people who bid on their auctions.
   One inflationary fixed point per person; the network grows
   super-linearly with the document.

   Run with: dune exec examples/bidder_network.exe [-- <scale>] *)

module Doc_registry = Fixq_xdm.Doc_registry
module W = Fixq_workloads

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.002
  in
  let registry = Doc_registry.create () in
  ignore (W.Xmark.load ~registry { W.Xmark.default with W.Xmark.scale });
  Printf.printf "XMark scale %.3f: %d persons, %d auctions.\n\n" scale
    (W.Xmark.persons_of_scale scale)
    (W.Xmark.auctions_of_scale scale);

  print_endline "Query (Figure 10):";
  print_endline W.Queries.bidder_network;
  print_newline ();

  let run name engine =
    let r = Fixq.run ~registry ~engine W.Queries.bidder_network in
    Printf.printf "%-22s %8.1f ms  %8d nodes fed  depth %d\n%!" name
      r.Fixq.wall_ms r.Fixq.nodes_fed r.Fixq.depth;
    r
  in
  let a = run "interpreter, Naïve" (Fixq.Interpreter Fixq.Naive) in
  let b = run "interpreter, Delta" (Fixq.Interpreter Fixq.Auto) in
  let c = run "algebra, µ" (Fixq.Algebra Fixq.Naive) in
  let d = run "algebra, µ∆" (Fixq.Algebra Fixq.Auto) in
  Printf.printf
    "\nDelta feeds ×%.1f fewer nodes; all engines agree: %b\n"
    (float_of_int a.Fixq.nodes_fed /. float_of_int (max 1 b.Fixq.nodes_fed))
    (List.length a.Fixq.result = List.length b.Fixq.result
    && List.length c.Fixq.result = List.length d.Fixq.result
    && List.length a.Fixq.result = List.length c.Fixq.result)
