(* Regular XPath (ten Cate, PODS 2006): XPath with transitive closure,
   implemented by translation to the IFP form — Section 2 of the paper
   shows s+ ≡ with $x seeded by . recurse $x/s, and Section 3.1 proves
   every Regular XPath step qualifies for Delta evaluation.

   Run with: dune exec examples/regxpath_demo.exe *)

module Node = Fixq_xdm.Node
module R = Fixq_regxpath.Regxpath
module D = Fixq_lang.Distributivity
module Ast = Fixq_lang.Ast

let tree =
  {|<org>
      <unit name="engineering">
        <unit name="backend"><unit name="storage"/><unit name="query"/></unit>
        <unit name="frontend"/>
      </unit>
      <unit name="sales"/>
    </org>|}

let () =
  let doc = Fixq_xdm.Xml_parser.parse_string ~strip_whitespace:true tree in
  let root = List.hd (Node.children doc) in

  let show src =
    let p = R.parse src in
    let result = R.eval [ root ] p in
    Printf.printf "%-22s -> %s\n" src
      (String.concat ", "
         (List.map
            (fun n ->
              match
                List.find_opt (fun a -> Node.name a = "name") (Node.attributes n)
              with
              | Some a -> Node.string_value a
              | None -> Node.name n)
            result))
  in
  print_endline "Regular XPath over an org chart (from <org>):";
  show "unit";
  show "unit+";
  show "unit/unit";
  show "(unit/unit)+";
  show "unit[unit]";
  show "unit+[unit]";

  (* the closure bodies are distributivity-safe by construction *)
  (match R.to_ifp (R.parse "unit+") with
  | Ast.Ifp { var; body; _ } ->
    Printf.printf
      "\n'unit+' translates to: with $%s seeded by . recurse $%s/unit\n" var
      var;
    Printf.printf "Figure 5 accepts the body (Delta applies): %b\n"
      (D.check var body)
  | _ -> assert false);

  (* the IFP evaluation agrees with a direct BFS closure *)
  let p = R.parse "(unit|unit/unit)+" in
  let via_ifp = R.eval [ root ] p in
  let via_bfs = R.eval_reference [ root ] p in
  Printf.printf "IFP evaluation matches the closure oracle: %b\n"
    (List.length via_ifp = List.length via_bfs)
