examples/regxpath_demo.mli:
