examples/bidder_network.mli:
