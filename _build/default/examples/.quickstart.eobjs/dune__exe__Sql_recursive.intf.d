examples/sql_recursive.mli:
