examples/curriculum_check.ml: Array Fixq Fixq_workloads Fixq_xdm List Option Printf String Sys
