examples/sql_recursive.ml: Fixq_sqlrec Format Printf
