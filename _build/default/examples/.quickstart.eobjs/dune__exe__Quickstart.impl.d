examples/quickstart.ml: Fixq Fixq_xdm List Printf
