examples/datalog_closure.ml: Fixq Fixq_datalog Fixq_sqlrec Fixq_xdm Format List Option Printf String
