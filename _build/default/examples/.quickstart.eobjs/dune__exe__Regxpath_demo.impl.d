examples/regxpath_demo.ml: Fixq_lang Fixq_regxpath Fixq_xdm List Printf String
