examples/curriculum_check.mli:
