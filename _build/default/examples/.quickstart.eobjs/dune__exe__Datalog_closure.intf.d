examples/datalog_closure.mli:
