examples/dialogs.mli:
