examples/bidder_network.ml: Array Fixq Fixq_workloads Fixq_xdm List Printf Sys
