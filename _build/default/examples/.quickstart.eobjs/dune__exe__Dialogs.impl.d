examples/dialogs.ml: Fixq Fixq_workloads Fixq_xdm List Printf
