examples/quickstart.mli:
