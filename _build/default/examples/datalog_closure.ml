(* Section 6 of the paper connects the IFP to Datalog: "for stratified
   Datalog programs, Delta is applicable in all cases: positive Datalog
   maps onto the distributive operators of relational algebra while
   stratification yields partial applications of the difference
   operator x\R in which R is fixed."

   This example runs the same curriculum transitive closure three ways:
   XQuery IFP, SQL:1999 WITH RECURSIVE, and Datalog — naive and
   delta/semi-naive each time — and shows all six agree.

   Run with: dune exec examples/datalog_closure.exe *)

module D = Fixq_datalog.Datalog
module Sqldb = Fixq_sqlrec.Sqldb
module Sqlrec = Fixq_sqlrec.Sqlrec
module Node = Fixq_xdm.Node
module Doc_registry = Fixq_xdm.Doc_registry

let edges =
  [ ("c1", "c2"); ("c1", "c3"); ("c2", "c4"); ("c3", "c5"); ("c4", "c2");
    (* a deeper chain so naive's re-feeding shows *)
    ("c5", "c6"); ("c6", "c7"); ("c7", "c8"); ("c8", "c9") ]

let () =
  (* 1. Datalog *)
  let program =
    String.concat "\n"
      (List.map (fun (a, b) -> Printf.sprintf "requires(%s, %s)." a b) edges)
    ^ {|
       prereq(X, Y) :- requires(X, Y).
       prereq(X, Z) :- requires(X, Y), prereq(Y, Z).
       ?- prereq(c1, X).|}
  in
  print_endline "Datalog program:";
  print_endline program;
  let naive = D.run ~algorithm:D.Naive (D.parse program) in
  let semi = D.run ~algorithm:D.Seminaive (D.parse program) in
  let show r =
    String.concat ", "
      (List.map
         (fun tuple ->
           String.concat "/" (List.map (Format.asprintf "%a" D.pp_term) tuple))
         r.D.answers)
  in
  Printf.printf "\nprereq(c1, X): %s\n" (show semi);
  Printf.printf "naive      : %d iterations, %d tuples fed\n"
    naive.D.iterations naive.D.rows_fed;
  Printf.printf "semi-naive : %d iterations, %d tuples fed  (Delta's win)\n\n"
    semi.D.iterations semi.D.rows_fed;

  (* 2. SQL:1999 over the same edges *)
  let db = Sqldb.create () in
  Sqldb.add_table db "C"
    { Sqldb.columns = [ "course"; "prerequisite" ];
      rows = List.map (fun (a, b) -> [ Sqldb.S a; Sqldb.S b ]) edges };
  let q =
    Sqlrec.parse
      {|WITH RECURSIVE P(c) AS
          ((SELECT prerequisite FROM C WHERE course = 'c1')
           UNION ALL
           (SELECT C.prerequisite FROM P, C WHERE P.c = C.course))
        SELECT DISTINCT * FROM P|}
  in
  let sql = Sqlrec.run ~algorithm:Sqlrec.Delta db q in
  let sql_codes =
    List.filter_map
      (function [ Sqldb.S s ] -> Some s | _ -> None)
      sql.Sqlrec.result.Sqldb.rows
    |> List.sort compare
  in
  Printf.printf "SQL WITH RECURSIVE agrees: %s\n" (String.concat ", " sql_codes);

  (* 3. XQuery IFP over the XML encoding *)
  let registry = Doc_registry.create () in
  let codes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let doc =
    Node.of_spec ~id_attrs:[ "code" ]
      (Node.E
         ( "curriculum", [],
           List.map
             (fun c ->
               Node.E
                 ( "course", [ ("code", c) ],
                   [ Node.E
                       ( "prerequisites", [],
                         List.filter_map
                           (fun (a, b) ->
                             if a = c then
                               Some (Node.E ("pre_code", [], [ Node.T b ]))
                             else None)
                           edges ) ] ))
             codes ))
  in
  Doc_registry.register ~registry "curriculum.xml" doc;
  let r =
    Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto)
      {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
        recurse $x/id(./prerequisites/pre_code)|}
  in
  let xq_codes =
    List.filter_map
      (function
        | Fixq_xdm.Item.N n ->
          List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
          |> Option.map Node.string_value
        | Fixq_xdm.Item.A _ -> None)
      r.Fixq.result
    |> List.sort compare
  in
  Printf.printf "XQuery IFP (Delta: %b) agrees: %s\n"
    (r.Fixq.used_delta = Some true)
    (String.concat ", " xq_codes);
  let datalog_codes =
    List.filter_map
      (function [ _; D.Sym b ] -> Some b | _ -> None)
      semi.D.answers
    |> List.sort compare
  in
  Printf.printf "\nall three substrates agree: %b\n"
    (datalog_codes = sql_codes && sql_codes = xq_codes)
