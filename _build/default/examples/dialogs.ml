(* Romeo-and-Juliet dialogs: horizontal structural recursion along
   following-sibling. Each round extends every live dialog by its next
   alternating-speaker speech; the recursion depth is the length of the
   longest uninterrupted dialog.

   Run with: dune exec examples/dialogs.exe *)

module Doc_registry = Fixq_xdm.Doc_registry
module W = Fixq_workloads

let () =
  let registry = Doc_registry.create () in
  let play = W.Shakespeare.load ~registry W.Shakespeare.default in
  Printf.printf "Generated a play with %d speeches; longest dialog: %d.\n\n"
    (W.Shakespeare.speech_count W.Shakespeare.default)
    (W.Shakespeare.longest_dialog play);

  print_endline "Query:";
  print_endline W.Queries.dialogs;
  print_newline ();

  let naive = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Naive) W.Queries.dialogs in
  let delta = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) W.Queries.dialogs in
  Printf.printf "Naïve: %7.1f ms, %6d speeches fed\n" naive.Fixq.wall_ms
    naive.Fixq.nodes_fed;
  Printf.printf "Delta: %7.1f ms, %6d speeches fed\n" delta.Fixq.wall_ms
    delta.Fixq.nodes_fed;
  Printf.printf
    "\nRecursion depth %d = longest dialog %d (each round advances every\n\
     dialog by one speech; delta feeds each speech exactly once).\n"
    delta.Fixq.depth
    (W.Shakespeare.longest_dialog play);
  Printf.printf "Speeches that belong to some dialog: %d\n"
    (List.length delta.Fixq.result)
