(* Workload generators: determinism, structural shape, and agreement of
   the paper's queries with independent oracles at small scales. *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module W = Fixq_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count_elems doc name =
  let k = ref 0 in
  Node.iter_subtree (fun n -> if Node.name n = name then incr k) doc;
  !k

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = W.Rng.create 42 and b = W.Rng.create 42 in
  let seq r = List.init 50 (fun _ -> W.Rng.int r 1000) in
  check "same seed, same stream" true (seq a = seq b);
  let c = W.Rng.create 43 in
  check "different seed differs" false (seq (W.Rng.create 42) = seq c)

let test_rng_ranges () =
  let r = W.Rng.create 7 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let v = W.Rng.int r 10 in
    if v < 0 || v >= 10 then ok := false;
    let f = W.Rng.float r in
    if f < 0.0 || f >= 1.0 then ok := false
  done;
  check "bounds respected" true !ok;
  check "geometric capped" true (W.Rng.geometric r ~p:0.0 ~max:5 <= 5)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_xmark_shape () =
  let p = { W.Xmark.default with W.Xmark.scale = 0.002 } in
  let doc = W.Xmark.generate p in
  check_int "persons" (W.Xmark.persons_of_scale 0.002) (count_elems doc "person");
  check_int "auctions" (W.Xmark.auctions_of_scale 0.002)
    (count_elems doc "open_auction");
  check "every auction has a seller" true
    (count_elems doc "seller" = count_elems doc "open_auction");
  check "bidders exist" true (count_elems doc "bidder" > 0);
  (* determinism *)
  let doc2 = W.Xmark.generate p in
  check "deterministic" true
    (Item.deep_equal
       [ Item.N (List.hd (Node.children doc)) ]
       [ Item.N (List.hd (Node.children doc2)) ])

let test_shakespeare_shape () =
  let p = { W.Shakespeare.default with W.Shakespeare.acts = 2; scenes_per_act = 2 } in
  let doc = W.Shakespeare.generate p in
  check_int "acts" 2 (count_elems doc "ACT");
  check_int "scenes" 4 (count_elems doc "SCENE");
  check "speeches have speakers" true
    (count_elems doc "SPEAKER" = count_elems doc "SPEECH");
  check_int "planted longest dialog" p.W.Shakespeare.max_dialog
    (W.Shakespeare.longest_dialog doc)

let test_curriculum_shape () =
  let p = { W.Curriculum.default with W.Curriculum.courses = 120 } in
  let doc = W.Curriculum.generate p in
  check_int "courses" 120 (count_elems doc "course");
  (* @code is a registered ID attribute *)
  check "fn:id works" true
    (match Node.lookup_id doc "c5" with
    | Some n -> Node.name n = "course"
    | None -> false);
  (* the oracle finds at least one Rule-5 violation at this scale *)
  check "cycles exist" true (W.Curriculum.self_prerequisite_codes doc <> [])

let test_hospital_shape () =
  let p = { W.Hospital.default with W.Hospital.total = 2000 } in
  let doc = W.Hospital.generate p in
  check_int "exact record count" 2000 (W.Hospital.patient_count doc);
  (* depth bound: no patient nested deeper than max_depth levels *)
  let max_depth = ref 0 in
  let rec walk depth (n : Node.t) =
    let depth = if Node.name n = "patient" then depth + 1 else depth in
    if depth > !max_depth then max_depth := depth;
    List.iter (walk depth) (Node.children n)
  in
  walk 0 (Node.root doc);
  check "depth bounded" true (!max_depth <= p.W.Hospital.max_depth)

(* ------------------------------------------------------------------ *)
(* Queries vs oracles                                                  *)
(* ------------------------------------------------------------------ *)

let test_curriculum_query_vs_oracle () =
  let registry = Doc_registry.create () in
  let p = { W.Curriculum.default with W.Curriculum.courses = 80 } in
  let doc = W.Curriculum.load ~registry p in
  let expected = List.sort_uniq compare (W.Curriculum.self_prerequisite_codes doc) in
  let r = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) W.Queries.curriculum_check in
  let got =
    List.filter_map
      (function
        | Item.N n ->
          List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
          |> Option.map Node.string_value
        | Item.A _ -> None)
      r.Fixq.result
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "Rule 5 matches graph oracle" expected got

let test_dialog_query_depth_is_longest_dialog () =
  let registry = Doc_registry.create () in
  let p = { W.Shakespeare.default with W.Shakespeare.acts = 2; scenes_per_act = 2; max_dialog = 12 } in
  let doc = W.Shakespeare.load ~registry p in
  let r = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) W.Queries.dialogs in
  check_int "recursion depth = longest dialog"
    (W.Shakespeare.longest_dialog doc)
    r.Fixq.depth

let test_hospital_query_counts () =
  let registry = Doc_registry.create () in
  let p = { W.Hospital.default with W.Hospital.total = 1500 } in
  let doc = W.Hospital.load ~registry p in
  let r = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) W.Queries.hospital in
  (* oracle: hereditary patients that are nested (non-top-level) *)
  let expected = ref 0 in
  let rec walk depth (n : Node.t) =
    let depth' = if Node.name n = "patient" then depth + 1 else depth in
    (if Node.name n = "diagnosis" && Node.string_value n = "hereditary"
        && depth >= 2 then incr expected);
    List.iter (walk depth') (Node.children n)
  in
  walk 0 (Node.root doc);
  check_int "hereditary ancestors found" !expected (List.length r.Fixq.result)

let test_bidder_query_connectivity () =
  let registry = Doc_registry.create () in
  let p = { W.Xmark.default with W.Xmark.scale = 0.002 } in
  let doc = W.Xmark.load ~registry p in
  (* oracle: BFS over the seller→bidder edges for one person *)
  let edges = Hashtbl.create 64 in
  Node.iter_subtree
    (fun n ->
      if Node.name n = "open_auction" then begin
        let seller = ref None and bidders = ref [] in
        Node.iter_subtree
          (fun m ->
            if Node.name m = "seller" then
              seller :=
                List.find_opt (fun a -> Node.name a = "person") (Node.attributes m)
                |> Option.map Node.string_value
            else if Node.name m = "personref" then
              match
                List.find_opt (fun a -> Node.name a = "person") (Node.attributes m)
              with
              | Some a -> bidders := Node.string_value a :: !bidders
              | None -> ())
          n;
        match !seller with
        | Some s ->
          Hashtbl.replace edges s
            (!bidders @ Option.value ~default:[] (Hashtbl.find_opt edges s))
        | None -> ()
      end)
    doc;
  let bfs start =
    let seen = Hashtbl.create 64 in
    let rec go frontier =
      let next =
        List.concat_map
          (fun p -> Option.value ~default:[] (Hashtbl.find_opt edges p))
          frontier
        |> List.filter (fun p ->
               if Hashtbl.mem seen p then false
               else begin
                 Hashtbl.replace seen p ();
                 true
               end)
      in
      if next <> [] then go next
    in
    go [ start ];
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
  in
  let expected = List.sort compare (bfs "person1") in
  let r =
    Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto)
      (W.Queries.bidder_network_single "person1")
  in
  let got =
    List.filter_map
      (function
        | Item.N n ->
          List.find_opt (fun a -> Node.name a = "id") (Node.attributes n)
          |> Option.map Node.string_value
        | Item.A _ -> None)
      r.Fixq.result
    |> List.sort compare
  in
  Alcotest.(check (list string)) "bidder network = BFS oracle" expected got

(* all four workload queries agree across engines at tiny scales *)
let test_cross_engine_agreement () =
  let registry = Doc_registry.create () in
  ignore (W.Curriculum.load ~registry { W.Curriculum.default with W.Curriculum.courses = 40 });
  ignore
    (W.Shakespeare.load ~registry
       { W.Shakespeare.default with W.Shakespeare.acts = 1; scenes_per_act = 2; max_dialog = 8 });
  ignore (W.Hospital.load ~registry { W.Hospital.default with W.Hospital.total = 300 });
  ignore (W.Xmark.load ~registry { W.Xmark.default with W.Xmark.scale = 0.001 });
  List.iter
    (fun (name, q) ->
      let run engine = (Fixq.run ~registry ~engine q).Fixq.result in
      let reference = run (Fixq.Interpreter Fixq.Naive) in
      List.iter
        (fun engine ->
          if not (Item.set_equal reference (run engine)) then
            Alcotest.failf "engines disagree on %s" name)
        [ Fixq.Interpreter Fixq.Auto; Fixq.Algebra Fixq.Naive;
          Fixq.Algebra Fixq.Auto ])
    [ ("curriculum", W.Queries.curriculum_check);
      ("dialogs", W.Queries.dialogs);
      ("hospital", W.Queries.hospital);
      ("bidder-single", W.Queries.bidder_network_single "person1") ]

let test_query_texts_parse_and_roundtrip () =
  List.iter
    (fun (name, src) ->
      match Fixq_lang.Parser.parse_program src with
      | p ->
        let printed = Fixq_lang.Pretty.program_to_string p in
        (match Fixq_lang.Parser.parse_program printed with
        | p2 ->
          if not (Fixq_lang.Ast.equal_program p p2) then
            Alcotest.failf "%s: pretty roundtrip changed the tree" name
        | exception _ ->
          Alcotest.failf "%s: pretty output does not parse" name)
      | exception _ -> Alcotest.failf "%s does not parse" name)
    [ ("q1", W.Queries.q1); ("q1_variant", W.Queries.q1_variant);
      ("q1_unfolded", W.Queries.q1_unfolded); ("q2", W.Queries.q2);
      ("bidder", W.Queries.bidder_network);
      ("bidder_single", W.Queries.bidder_network_single "p0");
      ("dialogs", W.Queries.dialogs);
      ("curriculum", W.Queries.curriculum_check);
      ("hospital", W.Queries.hospital) ]

(* the Saxon-style experiment end-to-end: run the dialog query via the
   Figure 2/4 recursive-function templates and compare with the IFP *)
let test_desugared_workload_queries () =
  let registry = Doc_registry.create () in
  ignore
    (W.Shakespeare.load ~registry
       { W.Shakespeare.default with W.Shakespeare.acts = 1; scenes_per_act = 2; max_dialog = 9 });
  let p = Fixq_lang.Parser.parse_program W.Queries.dialogs in
  let run_program prog =
    let ev = Fixq_lang.Eval.create ~registry () in
    Fixq_lang.Eval.run_program ev prog
  in
  let reference = run_program p in
  let via_fix = run_program (Fixq_lang.Rewrite.desugar_naive p) in
  let via_delta = run_program (Fixq_lang.Rewrite.desugar_delta p) in
  check "fix template = IFP" true (Item.set_equal reference via_fix);
  check "delta template = IFP (body is distributive)" true
    (Item.set_equal reference via_delta)

let () =
  Alcotest.run "workloads"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges ] );
      ( "generators",
        [ Alcotest.test_case "xmark" `Quick test_xmark_shape;
          Alcotest.test_case "shakespeare" `Quick test_shakespeare_shape;
          Alcotest.test_case "curriculum" `Quick test_curriculum_shape;
          Alcotest.test_case "hospital" `Quick test_hospital_shape ] );
      ( "oracles",
        [ Alcotest.test_case "curriculum rule 5" `Quick
            test_curriculum_query_vs_oracle;
          Alcotest.test_case "dialog depth" `Quick
            test_dialog_query_depth_is_longest_dialog;
          Alcotest.test_case "hospital counts" `Quick
            test_hospital_query_counts;
          Alcotest.test_case "bidder network BFS" `Quick
            test_bidder_query_connectivity ] );
      ( "engines",
        [ Alcotest.test_case "cross-engine agreement" `Quick
            test_cross_engine_agreement ] );
      ( "queries",
        [ Alcotest.test_case "parse + pretty roundtrip" `Quick
            test_query_texts_parse_and_roundtrip;
          Alcotest.test_case "desugared templates" `Quick
            test_desugared_workload_queries ] ) ]
