(* The IFP semantics (Definition 2.1) and the Naïve/Delta algorithms
   (Figure 3): unit tests on the paper's examples, the Example 2.4
   iteration table, instrumentation, divergence, and the soundness
   property Naïve s= Delta for distributive bodies. *)

module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Eval = Fixq_lang.Eval
module Fixpoint = Fixq_lang.Fixpoint
module Stats = Fixq_lang.Stats
module Parser = Fixq_lang.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let registry = Doc_registry.create ()

let curriculum =
  {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
</curriculum>|}

let () =
  Doc_registry.register ~registry "curriculum.xml"
    (Xml_parser.parse_string ~strip_whitespace:true curriculum)

let run ?(strategy = Eval.Auto) src =
  let ev = Eval.create ~registry ~strategy () in
  let r = Eval.run_string ev src in
  (r, ev)

let codes items =
  List.filter_map
    (function
      | Item.N n ->
        List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
        |> Option.map Node.string_value
      | Item.A _ -> None)
    items
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Q1 and the with…recurse form                                        *)
(* ------------------------------------------------------------------ *)

let q1 =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
    recurse $x/id(./prerequisites/pre_code)|}

let test_q1_result () =
  let (r, _) = run q1 in
  Alcotest.(check (list string))
    "transitive prerequisites (via the c4→c2 cycle)"
    [ "c2"; "c3"; "c4" ] (codes r)

let test_q1_strategies_agree () =
  let (rn, _) = run ~strategy:Eval.Naive q1 in
  let (rd, _) = run ~strategy:Eval.Delta q1 in
  let (ra, _) = run ~strategy:Eval.Auto q1 in
  check "naive = delta" true (Item.set_equal rn rd);
  check "auto = naive" true (Item.set_equal rn ra)

let test_q1_auto_uses_delta () =
  let (_, ev) = run ~strategy:Eval.Auto q1 in
  check "auto selected Delta" true
    (Eval.last_ifp_used_delta ev = Some true)

let test_q1_delta_feeds_fewer () =
  let (_, evn) = run ~strategy:Eval.Naive q1 in
  let (_, evd) = run ~strategy:Eval.Delta q1 in
  check "delta feeds fewer nodes" true
    (Stats.nodes_fed (Eval.stats evd) < Stats.nodes_fed (Eval.stats evn));
  check_int "same depth" (Stats.depth (Eval.stats evn))
    (Stats.depth (Eval.stats evd))

let test_seed_not_included () =
  (* Definition 2.1: res₀ = e_rec(e_seed) — c1 itself is not in the
     result (it is not its own prerequisite). *)
  let (r, _) = run q1 in
  check "seed excluded" true (not (List.mem "c1" (codes r)))

let test_cycle_membership () =
  (* c2 sits on a cycle, so it IS among its own prerequisites *)
  let (r, _) =
    run
      {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c2"]
        recurse $x/id(./prerequisites/pre_code)|}
  in
  check "cycle member reaches itself" true (List.mem "c2" (codes r))

(* ------------------------------------------------------------------ *)
(* Example 2.4: Naïve and Delta disagree on Q2                         *)
(* ------------------------------------------------------------------ *)

let q2 =
  {|let $seed := (<a/>,<b><c><d/></c></b>)
    return with $x seeded by $seed
           recurse if (count($x/self::a)) then $x/* else ()|}

let test_q2_disagreement_def21 () =
  (* under the strict Definition 2.1 convention both compute from
     res₀ = e_rec(seed) = (c); the disagreement of Example 2.4 needs
     the seed-in-result convention (next test) *)
  let (rn, _) = run ~strategy:Eval.Naive q2 in
  let (rd, _) = run ~strategy:Eval.Delta q2 in
  check_int "def-2.1 naive" 1 (List.length rn);
  check_int "def-2.1 delta" 1 (List.length rd)

(* Reproduce the paper's iteration table by driving the algorithms
   directly with include_seed (res₀ = eseed). *)
let example_24 algo =
  let ev = Eval.create ~registry () in
  let seed_prog =
    Parser.parse_expr {|(<a/>,<b><c><d/></c></b>)|}
  in
  let seed = Eval.eval_expr ev seed_prog in
  let body_expr =
    Parser.parse_expr {|if (count($x/self::a)) then $x/* else ()|}
  in
  let body input = Eval.eval_expr ev ~vars:[ ("x", input) ] body_expr in
  let stats = Stats.create () in
  let result = algo ?include_seed:(Some true) ~stats ~body ~seed () in
  (result, stats)

let names_of items =
  List.filter_map
    (function Item.N n -> Some (Node.name n) | Item.A _ -> None)
    items
  |> List.sort compare

let test_example24_naive () =
  let (r, _) = example_24 (Fixpoint.naive ?max_iterations:None) in
  Alcotest.(check (list string))
    "Naïve computes (a,b,c,d)" [ "a"; "b"; "c"; "d" ] (names_of r)

let test_example24_delta () =
  let (r, _) = example_24 (Fixpoint.delta ?max_iterations:None) in
  Alcotest.(check (list string))
    "Delta computes (a,b,c) — d is missed" [ "a"; "b"; "c" ] (names_of r)

let test_example24_trace () =
  (* the paper's table: Delta's ∆ column is (a,b), (c), () *)
  let (_, stats) = example_24 (Fixpoint.delta ?max_iterations:None) in
  let fed = List.map (fun it -> it.Stats.fed) (Stats.last_run stats) in
  Alcotest.(check (list int)) "delta feeds ∆=(a,b) then ∆=(c)" [ 2; 1 ] fed

(* ------------------------------------------------------------------ *)
(* Direct algorithm-level tests                                        *)
(* ------------------------------------------------------------------ *)

let tree () =
  Xml_parser.parse_string ~strip_whitespace:true
    "<r><a><b><c/></b></a><a><b/></a></r>"

let children_body input =
  List.concat_map
    (function
      | Item.N n -> List.map Item.node (Node.children n)
      | Item.A _ -> [])
    input

let test_descendants_closure () =
  let doc = tree () in
  let stats = Stats.create () in
  let seed = [ Item.N (List.hd (Node.children doc)) ] in
  let r_naive = Fixpoint.naive ~stats ~body:children_body ~seed () in
  let r_delta = Fixpoint.delta ~stats ~body:children_body ~seed () in
  check "closure = descendants" true (Item.set_equal r_naive r_delta);
  check_int "all descendants of r" 5 (List.length r_naive)

let test_empty_seed () =
  let stats = Stats.create () in
  let r = Fixpoint.naive ~stats ~body:children_body ~seed:[] () in
  check_int "empty seed fixpoint" 0 (List.length r)

let test_divergence_guard () =
  (* a body that keeps constructing fresh nodes never converges *)
  let stats = Stats.create () in
  let body input =
    Item.N (Node.element "x" ~attrs:[] []) :: input
  in
  let doc = tree () in
  let seed = [ Item.N doc ] in
  check "diverges" true
    (try
       ignore (Fixpoint.naive ~max_iterations:50 ~stats ~body ~seed ());
       false
     with Fixpoint.Diverged _ -> true)

let test_stats_accounting () =
  let doc = tree () in
  let stats = Stats.create () in
  let seed = [ Item.N (List.hd (Node.children doc)) ] in
  ignore (Fixpoint.naive ~stats ~body:children_body ~seed ());
  (* naive: seed(1) + 2 + 6 + 6 = the trace; check internal consistency *)
  let trace = Stats.last_run stats in
  check_int "payload calls = trace length" (Stats.payload_calls stats)
    (List.length trace);
  check_int "nodes fed = sum of trace"
    (List.fold_left (fun acc it -> acc + it.Stats.fed) 0 trace)
    (Stats.nodes_fed stats);
  check "result grows monotonically" true
    (let sizes = List.map (fun it -> it.Stats.result_size) trace in
     List.sort compare sizes = sizes)

(* ------------------------------------------------------------------ *)
(* Parallel Delta (Section 7's divide-and-conquer)                     *)
(* ------------------------------------------------------------------ *)

let big_tree () =
  (* a wide, shallow tree so rounds exceed the parallel threshold *)
  let leaf i = Node.E ("leaf", [ ("k", string_of_int i) ], []) in
  let mid i =
    Node.E ("mid", [], List.init 40 (fun j -> leaf ((i * 40) + j)))
  in
  Xml_parser.parse_string ~strip_whitespace:true
    (Fixq_xdm.Serializer.to_string
       (Node.of_spec (Node.E ("root", [], List.init 30 mid))))

let test_parallel_delta_equivalence () =
  let doc = big_tree () in
  let seed = [ Item.N (List.hd (Node.children doc)) ] in
  let body input =
    List.concat_map
      (function
        | Item.N n -> List.map Item.node (Node.children n)
        | Item.A _ -> [])
      input
  in
  let stats_seq = Stats.create () in
  let sequential = Fixpoint.delta ~stats:stats_seq ~body ~seed () in
  let stats_par = Stats.create () in
  let parallel =
    Fixpoint.delta_parallel ~domains:4 ~chunk_threshold:8 ~stats:stats_par
      ~body ~seed ()
  in
  check "parallel s= sequential" true (Item.set_equal sequential parallel);
  check_int "same nodes fed" (Stats.nodes_fed stats_seq)
    (Stats.nodes_fed stats_par);
  check_int "same depth" (Stats.depth stats_seq) (Stats.depth stats_par)

let test_parallel_delta_single_domain () =
  (* domains=1 degrades to plain delta *)
  let doc = tree () in
  let seed = [ Item.N (List.hd (Node.children doc)) ] in
  let stats = Stats.create () in
  let r =
    Fixpoint.delta_parallel ~domains:1 ~stats ~body:children_body ~seed ()
  in
  let stats2 = Stats.create () in
  let r2 = Fixpoint.delta ~stats:stats2 ~body:children_body ~seed () in
  check "single-domain parallel = delta" true (Item.set_equal r r2)

let test_parallel_delta_through_eval () =
  (* drive a real XQuery body (axis steps only — thread-safe) *)
  let registry = Doc_registry.create () in
  Doc_registry.register ~registry "t.xml" (big_tree ());
  let ev = Eval.create ~registry () in
  let body_expr = Parser.parse_expr "$x/*" in
  let body input = Eval.eval_expr ev ~vars:[ ("x", input) ] body_expr in
  let seed =
    Eval.eval_expr ev (Parser.parse_expr {|doc("t.xml")/root|})
  in
  let stats = Stats.create () in
  let par =
    Fixpoint.delta_parallel ~domains:3 ~chunk_threshold:16 ~stats ~body ~seed
      ()
  in
  let seq = Fixpoint.delta ~stats ~body ~seed () in
  check "xquery body parallel s= sequential" true (Item.set_equal par seq);
  check_int "descendants found" (30 + (30 * 40)) (List.length par)

(* ------------------------------------------------------------------ *)
(* Property: Naïve s= Delta for distributive (step) bodies             *)
(* ------------------------------------------------------------------ *)

let spec_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "c" ] in
  sized
  @@ fix (fun self n ->
         if n <= 1 then return (Node.E ("leaf", [], []))
         else
           map2
             (fun name kids -> Node.E (name, [], kids))
             names
             (list_size (int_bound 3) (self (n / 2))))

(* random distributive bodies: unions of axis steps *)
let body_gen =
  let open QCheck2.Gen in
  let module Axis = Fixq_xdm.Axis in
  let step =
    oneofl
      [ (Axis.Child, Axis.Kind_node); (Axis.Child, Axis.Name "a");
        (Axis.Descendant, Axis.Name "b"); (Axis.Parent, Axis.Kind_node);
        (Axis.Following_sibling, Axis.Kind_node) ]
  in
  list_size (int_range 1 3) step

let prop_naive_eq_delta =
  QCheck2.Test.make ~count:120 ~name:"Naïve s= Delta on distributive bodies"
    QCheck2.Gen.(pair (map Node.of_spec spec_gen) body_gen)
    (fun (doc, steps) ->
      let module Axis = Fixq_xdm.Axis in
      let body input =
        let nodes = List.filter_map (function Item.N n -> Some n | _ -> None) input in
        List.concat_map
          (fun (axis, test) ->
            List.concat_map
              (fun n -> List.map Item.node (Axis.step axis test n))
              nodes)
          steps
      in
      let stats = Stats.create () in
      let seed = [ Item.N (List.hd (Node.children doc)) ] in
      let rn = Fixpoint.naive ~stats ~body ~seed () in
      let rd = Fixpoint.delta ~stats ~body ~seed () in
      Item.set_equal rn rd)

let () =
  Alcotest.run "fixpoint"
    [ ( "q1",
        [ Alcotest.test_case "result" `Quick test_q1_result;
          Alcotest.test_case "strategies agree" `Quick
            test_q1_strategies_agree;
          Alcotest.test_case "auto picks delta" `Quick
            test_q1_auto_uses_delta;
          Alcotest.test_case "delta feeds fewer" `Quick
            test_q1_delta_feeds_fewer;
          Alcotest.test_case "seed excluded" `Quick test_seed_not_included;
          Alcotest.test_case "cycles reach themselves" `Quick
            test_cycle_membership ] );
      ( "example-2.4",
        [ Alcotest.test_case "def-2.1 convention" `Quick
            test_q2_disagreement_def21;
          Alcotest.test_case "naive table" `Quick test_example24_naive;
          Alcotest.test_case "delta table" `Quick test_example24_delta;
          Alcotest.test_case "delta trace" `Quick test_example24_trace ] );
      ( "algorithms",
        [ Alcotest.test_case "descendant closure" `Quick
            test_descendants_closure;
          Alcotest.test_case "empty seed" `Quick test_empty_seed;
          Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting
        ] );
      ( "parallel",
        [ Alcotest.test_case "equivalence" `Quick
            test_parallel_delta_equivalence;
          Alcotest.test_case "single domain" `Quick
            test_parallel_delta_single_domain;
          Alcotest.test_case "xquery body" `Quick
            test_parallel_delta_through_eval ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_naive_eq_delta ] ) ]
