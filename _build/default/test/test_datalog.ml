(* The Datalog substrate (Section 6): parsing, safety, stratification,
   and Naïve/semi-naïve agreement — "for stratified Datalog programs,
   Delta is applicable in all cases". *)

module D = Fixq_datalog.Datalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let closure_program =
  {|% a little edge relation with a cycle
    edge(a, b).  edge(b, c).  edge(c, d).  edge(d, b).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    ?- path(a, X).|}

let facts_of pred r =
  List.filter_map
    (fun (p, tuple) -> if p = pred then Some tuple else None)
    r.D.facts

(* ------------------------------------------------------------------ *)
(* Parsing and static checks                                           *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  let p = D.parse closure_program in
  check_int "six clauses" 6 (List.length p.D.rules);
  check "query present" true (p.D.query <> None);
  check_int "facts are empty-bodied" 4
    (List.length (List.filter (fun r -> r.D.body = []) p.D.rules))

let test_parse_errors () =
  let fails s =
    try
      ignore (D.parse s);
      false
    with D.Error _ -> true
  in
  check "negative head" true (fails "not p(a).");
  check "missing dot" true (fails "p(a)");
  check "two queries" true (fails "p(a). ?- p(X). ?- p(Y).");
  check "bad token" true (fails "p(a) & q(b).")

let test_safety () =
  let fails s =
    try
      ignore (D.run (D.parse s));
      false
    with D.Error _ -> true
  in
  check "unbound head variable" true (fails "p(X) :- q(a).  q(a).");
  check "unbound negated variable" true
    (fails "p(a) :- q(a), not r(X).  q(a).");
  check "non-ground fact" true (fails "p(X).");
  check "safe program accepted" true
    (not (fails "p(X) :- q(X), not r(X).  q(a).  r(b)."))

let test_stratification () =
  let strata =
    D.stratify
      (D.parse
         {|reach(X) :- src(X).
           reach(Y) :- reach(X), edge(X, Y).
           unreached(X) :- node(X), not reach(X).
           src(a). node(a). edge(a, a).|})
  in
  let stratum_of p =
    let rec go i = function
      | [] -> -1
      | group :: rest -> if List.mem p group then i else go (i + 1) rest
    in
    go 0 strata
  in
  check "reach below unreached" true
    (stratum_of "reach" < stratum_of "unreached");
  check "recursion through negation rejected" true
    (try
       ignore (D.run (D.parse "p(a) :- not q(a). q(a) :- not p(a)."));
       false
     with D.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let test_closure () =
  let r = D.run (D.parse closure_program) in
  (* from a: b, c, d (all via the cycle) *)
  check_int "answers" 3 (List.length r.D.answers);
  check "b reachable" true
    (List.mem [ D.Sym "a"; D.Sym "b" ] r.D.answers);
  check_int "path facts" (3 + 3 * 3) (List.length (facts_of "path" r))
(* 3 sources on the cycle × 3 targets + the 3 facts from a *)

let test_naive_equals_seminaive () =
  List.iter
    (fun src ->
      let rn = D.run ~algorithm:D.Naive (D.parse src) in
      let rs = D.run ~algorithm:D.Seminaive (D.parse src) in
      if rn.D.facts <> rs.D.facts then
        Alcotest.failf "algorithms disagree on %s" src)
    [ closure_program;
      (* same generation *)
      {|par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).
        sg(X, Y) :- par(X, P), par(Y, P).
        sg(X, Y) :- par(X, P1), sg(P1, P2), par(Y, P2).|};
      (* stratified negation *)
      {|edge(a, b). edge(b, c). node(a). node(b). node(c). node(d).
        reach(b).
        reach(Y) :- reach(X), edge(X, Y).
        dead(X) :- node(X), not reach(X).|};
      (* mutual recursion inside a stratum *)
      {|e(1).
        even(X) :- e(X).
        odd(Y) :- even(X), succ(X, Y).
        even(Y) :- odd(X), succ(X, Y).
        succ(1, 2). succ(2, 3). succ(3, 4).|} ]

let test_seminaive_feeds_fewer () =
  (* long chain: naive re-feeds the whole path relation each round *)
  let chain n =
    let buf = Buffer.create 256 in
    for i = 0 to n - 2 do
      Buffer.add_string buf (Printf.sprintf "edge(n%d, n%d). " i (i + 1))
    done;
    Buffer.add_string buf
      "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).";
    Buffer.contents buf
  in
  let p = D.parse (chain 24) in
  let rn = D.run ~algorithm:D.Naive p in
  let rs = D.run ~algorithm:D.Seminaive p in
  check "same facts" true (rn.D.facts = rs.D.facts);
  check "semi-naive feeds fewer tuples" true (rs.D.rows_fed < rn.D.rows_fed)

let test_negation_result () =
  let r =
    D.run
      (D.parse
         {|node(a). node(b). node(c).
           edge(a, b).
           reach(a).
           reach(Y) :- reach(X), edge(X, Y).
           dead(X) :- node(X), not reach(X).
           ?- dead(X).|})
  in
  check "only c is dead" true (r.D.answers = [ [ D.Sym "c" ] ]);
  check_int "one dead node" 1 (List.length (facts_of "dead" r))

let test_numeric_terms () =
  let r =
    D.run
      (D.parse
         {|age(alice, 30). age(bob, 30). age(carol, 41).
           peers(X, Y) :- age(X, N), age(Y, N).
           ?- peers(X, bob).|})
  in
  check_int "numeric join" 2 (List.length r.D.answers);
  check "numbers kept as numbers" true
    (List.exists (fun (p, t) -> p = "age" && List.mem (D.Num 41) t) r.D.facts)

let test_numbers_and_query_constants () =
  let r =
    D.run
      (D.parse
         {|score(alice, 10). score(bob, 20). score(carol, 10).
           same(X, Y) :- score(X, S), score(Y, S).
           ?- same(alice, X).|})
  in
  (* alice pairs with alice and carol *)
  check_int "query filters constants" 2 (List.length r.D.answers)

(* Property: semi-naive closure = BFS oracle on random graphs *)
let graph_gen =
  let open QCheck2.Gen in
  let node = map (Printf.sprintf "n%d") (int_bound 7) in
  list_size (int_range 1 16) (pair node node)

let prop_closure_oracle =
  QCheck2.Test.make ~count:200 ~name:"Datalog closure = BFS oracle"
    graph_gen
    (fun edges ->
      let src =
        String.concat " "
          (List.map (fun (a, b) -> Printf.sprintf "edge(%s, %s)." a b) edges)
        ^ " path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
      in
      let r = D.run (D.parse src) in
      let datalog_pairs =
        facts_of "path" r
        |> List.filter_map (function
             | [ D.Sym a; D.Sym b ] -> Some (a, b)
             | _ -> None)
        |> List.sort_uniq compare
      in
      (* oracle: BFS from every node *)
      let nodes =
        List.sort_uniq compare
          (List.concat_map (fun (a, b) -> [ a; b ]) edges)
      in
      let successors a =
        List.filter_map (fun (x, y) -> if x = a then Some y else None) edges
      in
      let reach a =
        let seen = Hashtbl.create 8 in
        let rec go frontier =
          let next =
            List.concat_map successors frontier
            |> List.filter (fun n ->
                   if Hashtbl.mem seen n then false
                   else begin
                     Hashtbl.replace seen n ();
                     true
                   end)
          in
          if next <> [] then go next
        in
        go [ a ];
        Hashtbl.fold (fun k () acc -> k :: acc) seen []
      in
      let oracle_pairs =
        List.concat_map (fun a -> List.map (fun b -> (a, b)) (reach a)) nodes
        |> List.sort_uniq compare
      in
      datalog_pairs = oracle_pairs)

let () =
  Alcotest.run "datalog"
    [ ( "static",
        [ Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "safety" `Quick test_safety;
          Alcotest.test_case "stratification" `Quick test_stratification ] );
      ( "evaluation",
        [ Alcotest.test_case "closure" `Quick test_closure;
          Alcotest.test_case "naive = semi-naive" `Quick
            test_naive_equals_seminaive;
          Alcotest.test_case "semi-naive feeds fewer" `Quick
            test_seminaive_feeds_fewer;
          Alcotest.test_case "stratified negation" `Quick
            test_negation_result;
          Alcotest.test_case "constants in queries" `Quick
            test_numbers_and_query_constants;
          Alcotest.test_case "numeric terms" `Quick test_numeric_terms ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_closure_oracle ]) ]
