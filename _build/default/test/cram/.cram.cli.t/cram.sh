  $ cat > curriculum.xml <<'XML'
  > <!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
  > <curriculum>
  >   <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  >   <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  >   <course code="c3"><prerequisites/></course>
  >   <course code="c4"><prerequisites/></course>
  > </curriculum>
  > XML
  $ cat > q1.xq <<'XQ'
  > with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
  > recurse $x/id(./prerequisites/pre_code)
  > XQ
  $ fixq run --doc curriculum.xml=curriculum.xml -e 'count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse $x/id(./prerequisites/pre_code))' --stats 2>stats.txt
  $ grep "delta used" stats.txt
  $ grep "nodes fed" stats.txt
  $ fixq check --doc curriculum.xml=curriculum.xml q1.xq
  $ fixq check -e 'let $seed := (<a/>,<b><c><d/></c></b>) return with $x seeded by $seed recurse if (count($x/self::a)) then $x/* else ()'
  $ fixq plan --doc curriculum.xml=curriculum.xml q1.xq | tail -1
  $ fixq run --doc curriculum.xml=curriculum.xml --mode naive q1.xq --stats 2>stats.txt >/dev/null
  $ grep "nodes fed" stats.txt
  $ fixq check -e '1 + 1'
  $ fixq run -e 'string-join(("a", "b"), "-")'
  $ fixq run --doc curriculum.xml=curriculum.xml --engine algebra q1.xq > alg.out
  $ fixq run --doc curriculum.xml=curriculum.xml --engine interp q1.xq > int.out
  $ cmp alg.out int.out
  $ fixq check -e 'with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse ($x/id(./prerequisites/pre_code) except doc("curriculum.xml")/curriculum/course[@code="c3"])' --doc curriculum.xml=curriculum.xml
  $ fixq run --stratified --doc curriculum.xml=curriculum.xml -e 'count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse ($x/id(./prerequisites/pre_code) except doc("curriculum.xml")/curriculum/course[@code="c3"]))' --stats 2>stats.txt
  $ grep "delta used" stats.txt
  $ fixq generate curriculum --size 6 --seed 5 > c1.xml
  $ fixq generate curriculum --size 6 --seed 5 > c2.xml
  $ cmp c1.xml c2.xml
  $ fixq run -e '1 +'
  $ fixq run -e 'doc("missing.xml")'
  $ printf '1 + 1\ncount((1, 2, 3))\n\n' | fixq repl
  $ fixq generate xmark --size 0.001 | head -1
  $ fixq generate play | head -1
  $ fixq generate hospital --size 50 | head -1
  $ fixq check -e 'count($nope)'
  $ fixq explain -e 'with $x seeded by . recurse $x/a' | head -2
  $ fixq explain --template hint -e 'with $x seeded by . recurse count($x)' 
