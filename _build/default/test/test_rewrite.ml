(* Source-level rewrites: the fix/delta UDF templates (Figures 2/4),
   the distributivity hint (Section 3.2), and function inlining. *)

module Atom = Fixq_xdm.Atom
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Parser = Fixq_lang.Parser
module Rewrite = Fixq_lang.Rewrite
module Eval = Fixq_lang.Eval
module D = Fixq_lang.Distributivity
open Fixq_lang.Ast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let registry = Doc_registry.create ()

let () =
  Doc_registry.register ~registry "curriculum.xml"
    (Xml_parser.parse_string ~strip_whitespace:true
       {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites/></course>
</curriculum>|})

let q1 =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
    recurse $x/id(./prerequisites/pre_code)|}

let run_program p =
  let ev = Eval.create ~registry () in
  Eval.run_program ev p

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let has_ifp p =
  (* cheap structural scan via the derived printer *)
  contains_sub (show_expr p.main) "Ifp"
  || List.exists (fun fd -> contains_sub (show_expr fd.body) "Ifp") p.functions

(* ------------------------------------------------------------------ *)
(* Figure 2 / Figure 4 desugaring                                      *)
(* ------------------------------------------------------------------ *)

let test_desugar_naive_equiv () =
  let p = Parser.parse_program q1 in
  let reference = run_program p in
  let desugared = Rewrite.desugar_naive p in
  check "no Ifp left" false (has_ifp desugared);
  check_int "fix and rec declared" 2 (List.length desugared.functions);
  check "same result" true (Item.set_equal reference (run_program desugared))

let test_desugar_delta_equiv () =
  let p = Parser.parse_program q1 in
  let reference = run_program p in
  let desugared = Rewrite.desugar_delta p in
  check "no Ifp left" false (has_ifp desugared);
  check "same result (body is distributive)" true
    (Item.set_equal reference (run_program desugared))

let test_desugar_delta_unsound_on_q2 () =
  (* Example 2.4 at the source level: the delta template misses d *)
  let q2 =
    {|let $seed := (<a/>,<b><c><d/></c></b>)
      return with $x seeded by $seed
             recurse if (count($x/self::a)) then $x/* else ()|}
  in
  let p = Parser.parse_program q2 in
  let rn = run_program (Rewrite.desugar_naive p) in
  let rd = run_program (Rewrite.desugar_delta p) in
  (* both follow Definition 2.1 (seed not in result): res₀=(c) *)
  check_int "naive via template" 1 (List.length rn);
  check_int "delta via template" 1 (List.length rd)

let test_desugar_outer_variables () =
  (* a recursion body that references an enclosing FLWOR variable must
     survive template extraction (the templates gain extra params) *)
  let src =
    {|for $limit in (1, 2)
      return count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
                   recurse if ($limit = 2) then $x/id(./prerequisites/pre_code) else ())|}
  in
  let p = Parser.parse_program src in
  let reference = run_program p in
  let via_naive = run_program (Rewrite.desugar_naive p) in
  check "outer variables threaded through templates" true
    (Item.deep_equal reference via_naive)

let test_desugar_multiple_ifps () =
  let src =
    {|count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
           recurse $x/id(./prerequisites/pre_code)),
      count(with $y seeded by doc("curriculum.xml")/curriculum/course[@code="c2"]
           recurse $y/id(./prerequisites/pre_code))|}
  in
  let p = Parser.parse_program src in
  let desugared = Rewrite.desugar_naive p in
  check_int "two template pairs" 4 (List.length desugared.functions);
  check "results equal" true
    (Item.deep_equal (run_program p) (run_program desugared))

(* ------------------------------------------------------------------ *)
(* Distributivity hint                                                 *)
(* ------------------------------------------------------------------ *)

let test_hint_makes_ds_succeed () =
  (* count($x) >= 1 is the paper's example of a ds-rejected expression;
     its hinted form always passes the rules *)
  let e = Parser.parse_expr "id($x/prerequisites/pre_code)" in
  let unfolded =
    Parser.parse_expr
      {|for $c in doc("curriculum.xml")/curriculum/course
        where $c/@code = $x/prerequisites/pre_code
        return $c|}
  in
  ignore e;
  check "unfolded body rejected" false (D.check "x" unfolded);
  let hinted = Rewrite.distributivity_hint ~var:"x" unfolded in
  check "hinted body accepted" true (D.check "x" hinted)

let test_hint_preserves_semantics_when_distributive () =
  let p = Parser.parse_program q1 in
  let reference = run_program p in
  let hinted = Rewrite.hint_program p in
  check "hinted program result" true
    (Item.set_equal reference (run_program hinted))

let test_hint_shape () =
  let e = Parser.parse_expr "count($x)" in
  match Rewrite.distributivity_hint ~var:"x" e with
  | For { source = Var "x"; body = Call ("count", [ Var v ]); var = v'; _ }
    when v = v' ->
    check "hint shape" true true
  | other -> Alcotest.failf "unexpected hint shape: %s" (show_expr other)

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let test_inline_simple () =
  let p =
    Parser.parse_program
      {|declare function double($n) { $n * 2 };
        double(3) + double(4)|}
  in
  let inlined = Rewrite.inline_functions p in
  check "calls replaced" true
    (not (contains_sub (show_expr inlined.main) {|Call ("double"|}));
  check "same value" true
    (Item.deep_equal (run_program p) (run_program inlined))

let test_inline_avoids_capture () =
  let p =
    Parser.parse_program
      {|declare function pick($n) { $n };
        let $n := 10 return pick($n + 1) + $n|}
  in
  let inlined = Rewrite.inline_functions p in
  check "capture avoided" true
    (Item.deep_equal (run_program p) (run_program inlined))

let test_inline_keeps_recursive () =
  let p =
    Parser.parse_program
      {|declare function fact($n) { if ($n <= 1) then 1 else $n * fact($n - 1) };
        fact(5)|}
  in
  let inlined = Rewrite.inline_functions p in
  check "recursive function kept" true
    (List.exists (fun fd -> fd.fname = "fact") inlined.functions);
  check "value unchanged" true
    (Item.deep_equal (run_program p) (run_program inlined))

let test_inline_mutual_recursion_kept () =
  let p =
    Parser.parse_program
      {|declare function ev($n) { if ($n = 0) then true() else od($n - 1) };
        declare function od($n) { if ($n = 0) then false() else ev($n - 1) };
        ev(4)|}
  in
  let inlined = Rewrite.inline_functions p in
  check "mutually recursive pair kept" true
    (Item.deep_equal (run_program p) (run_program inlined))

let () =
  Alcotest.run "rewrite"
    [ ( "desugar",
        [ Alcotest.test_case "naive template" `Quick
            test_desugar_naive_equiv;
          Alcotest.test_case "delta template" `Quick
            test_desugar_delta_equiv;
          Alcotest.test_case "delta on Q2" `Quick
            test_desugar_delta_unsound_on_q2;
          Alcotest.test_case "outer variables" `Quick
            test_desugar_outer_variables;
          Alcotest.test_case "multiple IFPs" `Quick
            test_desugar_multiple_ifps ] );
      ( "hint",
        [ Alcotest.test_case "enables ds" `Quick test_hint_makes_ds_succeed;
          Alcotest.test_case "preserves semantics" `Quick
            test_hint_preserves_semantics_when_distributive;
          Alcotest.test_case "shape" `Quick test_hint_shape ] );
      ( "inline",
        [ Alcotest.test_case "simple" `Quick test_inline_simple;
          Alcotest.test_case "capture avoidance" `Quick
            test_inline_avoids_capture;
          Alcotest.test_case "recursive kept" `Quick
            test_inline_keeps_recursive;
          Alcotest.test_case "mutual recursion" `Quick
            test_inline_mutual_recursion_kept ] ) ]
