(* Interpreter tests: expression semantics, paths and predicates,
   FLWOR, built-ins, constructors, user-defined functions, errors. *)

module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Serializer = Fixq_xdm.Serializer
module Eval = Fixq_lang.Eval
module Parser = Fixq_lang.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let registry = Doc_registry.create ()

let () =
  let doc =
    Xml_parser.parse_string ~strip_whitespace:true
      {|<lib>
          <book year="2003" id="b1"><title>Staircase Join</title><author>Grust</author></book>
          <book year="2004" id="b2"><title>XQuery on SQL Hosts</title><author>Grust</author><author>Teubner</author></book>
          <book year="2006" id="b3"><title>MonetDB/XQuery</title><author>Boncz</author></book>
        </lib>|}
  in
  Node.register_id_attribute doc "id";
  Doc_registry.register ~registry "lib.xml" doc

let run src =
  let ev = Eval.create ~registry () in
  Eval.run_string ev src

(* string view of a result: atoms via their lexical form, nodes
   serialized *)
let runs src = Serializer.seq_to_string (run src)

let atom_result src =
  match run src with
  | [ Item.A a ] -> a
  | r -> Alcotest.failf "expected one atom, got %d items" (List.length r)

let check_run msg expected src = check_str msg expected (runs src)

let check_error msg src =
  check msg true
    (try
       ignore (run src);
       false
     with Eval.Error _ | Fixq_lang.Builtins.Error _ | Atom.Type_error _ ->
       true)

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let test_arithmetic () =
  check_run "int add" "5" "2 + 3";
  check_run "precedence" "7" "1 + 2 * 3";
  check_run "div is double" "2.5" "5 div 2";
  check_run "idiv" "2" "5 idiv 2";
  check_run "mod" "1" "5 mod 2";
  check_run "neg" "-3" "-(1 + 2)";
  check_run "empty propagates" "" "1 + ()";
  check_error "div by zero" "1 div 0";
  check_error "seq arith" "(1,2) + 1"

let test_comparisons () =
  check_run "general eq" "true" "1 = 1";
  check_run "existential" "true" "(1, 2, 3) = 3";
  check_run "existential false" "false" "(1, 2) = (4, 5)";
  check_run "ne is existential too" "true" "(1, 2) != 1";
  check_run "string vs number promotes" "true" {|"3" = 3|};
  check_run "value cmp" "false" {|"a" ne "a"|};
  check_run "value cmp empty" "" "() eq 1";
  check_run "range" "1 2 3" "1 to 3";
  check_run "empty range" "" "3 to 1"

let test_logic () =
  check_run "and" "false" "true() and false()";
  check_run "or" "true" "true() or false()";
  check_run "ebv of node seq" "true" {|boolean(doc("lib.xml")//book)|};
  check_run "not of empty" "true" "not(())"

let test_sequences () =
  check_run "flatten" "1 2 3" "(1, (2, 3))";
  check_run "count" "3" "count((1, 2, 3))";
  check_run "empty" "true" "empty(())";
  check_run "exists" "true" "exists((1))"

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let test_paths () =
  check_int "books" 3 (List.length (run {|doc("lib.xml")/lib/book|}));
  check_int "authors" 4 (List.length (run {|doc("lib.xml")//author|}));
  check_run "attribute value" "2003" {|data(doc("lib.xml")/lib/book[1]/@year)|};
  check_int "wildcard" 3 (List.length (run {|doc("lib.xml")/lib/*|}));
  check_run "text nodes" "Grust" {|doc("lib.xml")//book[1]/author/text()|};
  (* duplicate elimination: 4 authors but 3 parent books, one book
     reached twice *)
  check_int "ddo dedups via parent" 3
    (List.length (run {|doc("lib.xml")//author/..|}));
  check "path over atoms errors" true
    (try
       ignore (run "(1, 2)/a");
       false
     with _ -> true)

let test_predicates () =
  check_int "value predicate" 1
    (List.length (run {|doc("lib.xml")//book[@year = "2004"]|}));
  check_run "positional" "Staircase Join"
    {|string(doc("lib.xml")//book[1]/title)|};
  check_run "last()" "MonetDB/XQuery"
    {|string(doc("lib.xml")//book[last()]/title)|};
  check_run "position() in filter" "XQuery on SQL Hosts"
    {|string(doc("lib.xml")//book[position() = 2]/title)|};
  check_int "nested predicates" 1
    (List.length (run {|doc("lib.xml")//book[author = "Teubner"][@id = "b2"]|}));
  check_run "predicate on reverse axis picks nearest" "b1"
    {|data(doc("lib.xml")//book[@id="b2"]/preceding-sibling::book[1]/@id)|}

let test_fn_id () =
  check_run "id via context" "Staircase Join"
    {|string(doc("lib.xml")/id("b1")/title)|};
  check_run "id multiple tokens" "2" {|count(doc("lib.xml")/id("b1 b3"))|};
  check_run "id 2-arg" "XQuery on SQL Hosts"
    {|string(id("b2", doc("lib.xml"))/title)|}

let test_fn_idref () =
  let reg = Doc_registry.create () in
  let doc =
    Xml_parser.parse_string ~strip_whitespace:true
      {|<!DOCTYPE lib [
          <!ATTLIST book id ID #REQUIRED>
          <!ATTLIST cite ref IDREFS #REQUIRED>
        ]>
        <lib>
          <book id="b1"/>
          <book id="b2"/>
          <cite ref="b1"/>
          <cite ref="b1 b2"/>
        </lib>|}
  in
  Doc_registry.register ~registry:reg "refs.xml" doc;
  let run src =
    let ev = Eval.create ~registry:reg () in
    Eval.run_string ev src
  in
  check_int "idref finds referring attributes" 2
    (List.length (run {|doc("refs.xml")/idref("b1")|}));
  check_int "idref tokenizes IDREFS" 1
    (List.length (run {|doc("refs.xml")/idref("b2")|}));
  check_int "idref misses unknown" 0
    (List.length (run {|doc("refs.xml")/idref("zz")|}));
  check "idref yields attribute nodes" true
    (match run {|doc("refs.xml")/idref("b2")|} with
    | [ Item.N n ] -> n.Node.kind = Node.Attribute && Node.name n = "ref"
    | _ -> false);
  check_int "idref 2-arg" 2
    (List.length (run {|idref("b1", doc("refs.xml"))|}))

(* ------------------------------------------------------------------ *)
(* FLWOR, quantifiers, typeswitch                                      *)
(* ------------------------------------------------------------------ *)

let test_flwor () =
  check_run "for" "2 4 6" "for $x in (1, 2, 3) return 2 * $x";
  check_run "positional var" "1 2 3"
    {|for $x at $i in ("a", "b", "c") return $i|};
  check_run "where" "2" "for $x in (1, 2) where $x = 2 return $x";
  check_run "let" "9" "let $x := 3 return $x * $x";
  check_run "nested" "11 12 21 22"
    "for $a in (10, 20), $b in (1, 2) return $b + $a";
  check_run "for over books" "b1 b2 b3"
    {|string-join(for $b in doc("lib.xml")//book return data($b/@id), " ")|}

let test_order_by () =
  check_run "ascending" "1 2 3" "for $x in (3, 1, 2) order by $x return $x";
  check_run "descending" "3 2 1"
    "for $x in (3, 1, 2) order by $x descending return $x";
  check_run "key expression" "b ab zzz"
    {|for $s in ("zzz", "b", "ab") order by string-length($s) return $s|};
  check_run "stable for equal keys" "a b"
    {|for $s in ("a", "b") order by 1 return $s|};
  (* empty keys sort first ("empty least") *)
  check_run "empty keys first" "9 1 5"
    {|string-join(for $x in (1, 9, 5)
                  order by (if ($x = 9) then () else $x)
                  return $x cast as xs:string, " ")|};
  check_run "where before order" "2 4"
    "for $x in (4, 1, 2) where $x mod 2 = 0 order by $x return $x";
  check_run "sort books by year desc" "b3 b2 b1"
    {|string-join(for $b in doc("lib.xml")//book
                  order by $b/@year descending
                  return data($b/@id), " ")|};
  check "multi-binding order by rejected" true
    (try
       ignore (Parser.parse_expr "for $a in (1), $b in (2) order by $a return $a");
       false
     with Parser.Error _ -> true)

let test_quantifiers () =
  check_run "some true" "true" "some $x in (1, 2, 3) satisfies $x = 2";
  check_run "some false" "false" "some $x in (1, 2) satisfies $x = 9";
  check_run "every true" "true" "every $x in (2, 4) satisfies $x mod 2 = 0";
  check_run "every vacuous" "true" "every $x in () satisfies $x = 1"

let test_instance_of () =
  check_run "node star" "true" {|doc("lib.xml")//book instance of node()*|};
  check_run "element name" "true"
    {|(doc("lib.xml")//book)[1] instance of element(book)|};
  check_run "wrong name" "false"
    {|(doc("lib.xml")//book)[1] instance of element(title)|};
  check_run "integer" "true" "3 instance of xs:integer";
  check_run "occurrence one fails on seq" "false"
    "(1, 2) instance of xs:integer";
  check_run "plus needs nonempty" "false" "() instance of xs:integer+";
  check_run "empty-sequence" "true" "() instance of empty-sequence()";
  check_run "under comparison" "true" "(1 instance of xs:integer) = true()"

let test_cast () =
  check_run "string to int" "5" {|"5" cast as xs:integer|};
  check_run "int to string" "5" {|5 cast as xs:string|};
  check_run "to double" "2.5" {|"2.5" cast as xs:double|};
  check_run "bool from word" "true" {|"true" cast as xs:boolean|};
  check_run "optional empty" "" "() cast as xs:integer?";
  check_error "empty without ?" "() cast as xs:integer";
  check_error "bad lexical form" {|"zap" cast as xs:integer|};
  check_run "castable yes" "true" {|"5" castable as xs:integer|};
  check_run "castable no" "false" {|"zap" castable as xs:integer|};
  check_run "castable empty with ?" "true" "() castable as xs:integer?";
  check_run "castable empty without ?" "false" "() castable as xs:integer";
  check_run "node atomizes before cast" "2003"
    {|doc("lib.xml")//book[1]/@year cast as xs:integer|}

let test_tokenize () =
  check_run "whitespace" "a b c" {|string-join(tokenize(" a  b c "), " ")|};
  check_run "separator" "a|b|c" {|string-join(tokenize("a-b-c", "-"), "|")|};
  check_run "multichar separator" "2" {|count(tokenize("x::y", "::"))|};
  check_run "trailing empty token" "3" {|count(tokenize("a,b,", ","))|};
  check_error "empty separator" {|tokenize("abc", "")|}

let test_typeswitch () =
  check_run "element case" "elem"
    {|typeswitch (doc("lib.xml")//book[1])
      case element() return "elem" default return "other"|};
  check_run "integer case" "int"
    {|typeswitch (4)
      case xs:string return "str"
      case xs:integer return "int"
      default return "other"|};
  check_run "case var binds" "4"
    {|typeswitch (4) case $i as xs:integer return $i default return 0|};
  check_run "occurrence star" "seq"
    {|typeswitch ((1, 2)) case xs:integer* return "seq" default return "no"|};
  check_run "default var" "2"
    {|typeswitch ((1, 2)) case xs:string return 0 default $d return count($d)|}

(* ------------------------------------------------------------------ *)
(* Built-ins                                                           *)
(* ------------------------------------------------------------------ *)

let test_string_functions () =
  check_run "concat" "abc" {|concat("a", "b", "c")|};
  check_run "string-join" "a-b" {|string-join(("a", "b"), "-")|};
  check_run "contains" "true" {|contains("staircase", "air")|};
  check_run "starts-with" "true" {|starts-with("abc", "ab")|};
  check_run "ends-with" "true" {|ends-with("abc", "bc")|};
  check_run "substring" "bc" {|substring("abcd", 2, 2)|};
  check_run "substring-before" "ab" {|substring-before("ab-cd", "-")|};
  check_run "substring-after" "cd" {|substring-after("ab-cd", "-")|};
  check_run "upper" "ABC" {|upper-case("abc")|};
  check_run "translate drops unmapped" "AB" {|translate("abc", "abc", "AB")|};
  check_run "normalize-space" "a b" {|normalize-space("  a   b ")|};
  check_run "string-length" "3" {|string-length("abc")|}

let test_numeric_functions () =
  check_run "sum" "6" "sum((1, 2, 3))";
  check_run "sum empty" "0" "sum(())";
  check_run "avg" "2" "avg((1, 2, 3))";
  check_run "max" "3" "max((1, 3, 2))";
  check_run "min" "1" "min((3, 1, 2))";
  check_run "abs" "3" "abs(-3)";
  check_run "floor" "1" "floor(1.7)";
  check_run "ceiling" "2" "ceiling(1.2)";
  check_run "round" "2" "round(1.5)";
  check_run "number of string" "42" {|number("42")|}

let test_more_builtins () =
  check_run "string() on context via path" "Grust"
    {|(doc("lib.xml")//author)[1]/string()|} |> ignore;
  check_run "string 1-arg empty" "" {|string(())|};
  check_run "number NaN on junk" "true"
    {|string(number("zap")) = "nan"|} |> ignore;
  check_run "sum with zero default" "0" "sum((), 0)";
  check_run "sum 2-arg unused when nonempty" "3" {|sum((1, 2), 99)|};
  check_run "avg empty is empty" "0" "count(avg(()))";
  check_run "max of strings" "c" {|max(("a", "c", "b"))|};
  check_run "min mixed numerics" "1" "min((2, 1.5, 1))";
  check_run "subsequence to end" "3 4" "subsequence((1, 2, 3, 4), 3)";
  check_run "subsequence clamp" "1" "subsequence((1, 2), 0, 1.5)" |> ignore;
  check_run "index-of empty" "" "index-of((), 1)";
  check_run "insert-before at end" "1 2 9" "insert-before((1, 2), 9, 9)";
  check_run "remove out of range" "1 2" "remove((1, 2), 5)";
  check_run "zero-or-one empty ok" "" "zero-or-one(())";
  check_run "one-or-more passes" "1 2" "one-or-more((1, 2))";
  check_error "one-or-more empty" "one-or-more(())";
  check_run "boolean of node" "true" {|boolean(doc("lib.xml")/lib)|};
  check_run "name on attribute" "year"
    {|name((doc("lib.xml")//@year)[1])|};
  check_run "local-name" "book" {|local-name((doc("lib.xml")//book)[1])|};
  check_run "deep-equal distinct trees" "true"
    "deep-equal(<a><b/></a>, <a><b/></a>)";
  check_run "deep-equal differs" "false" "deep-equal(<a/>, <b/>)";
  check_run "unordered is identity" "2 1" "unordered((2, 1))";
  check_error "concat arity" {|concat("a")|}

let test_sequence_functions () =
  check_run "distinct-values" "1 2 3" "distinct-values((1, 2, 2, 3, 1))";
  check_run "reverse" "3 2 1" "reverse((1, 2, 3))";
  check_run "subsequence" "2 3" "subsequence((1, 2, 3, 4), 2, 2)";
  check_run "index-of" "2 4" "index-of((1, 5, 2, 5), 5)";
  check_run "insert-before" "1 9 2" "insert-before((1, 2), 2, 9)";
  check_run "remove" "1 3" "remove((1, 2, 3), 2)";
  check_run "deep-equal" "true" "deep-equal((1, 2), (1, 2))";
  check_run "exactly-one" "5" "exactly-one((5))";
  check_error "exactly-one fails" "exactly-one((1, 2))"

let test_node_functions () =
  check_run "name" "book" {|name(doc("lib.xml")//book[1])|};
  check_run "root returns doc" "true"
    {|root((doc("lib.xml")//title)[1]) is doc("lib.xml")|};
  check_run "data atomizes" "Grust" {|data(doc("lib.xml")//book[1]/author)|};
  check_run "node order" "true"
    {|doc("lib.xml")//book[1] << doc("lib.xml")//book[2]|}

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let test_constructors () =
  check_run "direct" {|<a k="v"><b/>text</a>|} {|<a k="v"><b/>text</a>|};
  check_run "attr expr" {|<a k="1 2"/>|} {|<a k="{(1, 2)}"/>|};
  check_run "enclosed atoms joined" "<a>1 2</a>" "<a>{1, 2}</a>";
  check_run "computed element" "<x>hi</x>" {|element x { "hi" }|};
  check_run "computed text joins" "1 2" "string(text { (1, 2) })";
  check_run "text of empty is empty" "0" "count(text { () })";
  check_run "comment" "<!--note-->" {|comment { "note" }|};
  (* construction copies: fresh identities *)
  check_run "copies have new identity" "false"
    {|let $b := doc("lib.xml")//book[1]
      let $w := <wrap>{$b}</wrap>
      return $w/book is $b|};
  check_run "attribute node in content becomes attribute" {|<a k="v"/>|}
    {|element a { attribute k { "v" } }|};
  check_run "document constructor" "1" {|count(document { <r/> }/r)|};
  (* each evaluation yields a distinct node (paper, Section 3.2) *)
  check_run "constructor identity per evaluation" "2"
    {|count((text { "c" } , text { "c" }))|}

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let test_user_functions () =
  check_run "simple function" "25"
    {|declare function square($x) { $x * $x }; square(5)|};
  check_run "recursion" "120"
    {|declare function fact($n) { if ($n <= 1) then 1 else $n * fact($n - 1) };
      fact(5)|};
  check_run "mutual recursion" "true"
    {|declare function is-even($n) { if ($n = 0) then true() else is-odd($n - 1) };
      declare function is-odd($n) { if ($n = 0) then false() else is-even($n - 1) };
      is-even(10)|};
  check_run "globals visible in functions" "7"
    {|declare variable $k := 7;
      declare function get() { $k };
      get()|};
  check_error "unknown function" "no-such-fn(1)";
  check_error "wrong arity" {|declare function one($x) { $x }; one(1, 2)|}

let test_function_isolation () =
  (* functions do not see the caller's local variables or context *)
  check_error "no caller locals"
    {|declare function f() { $x }; let $x := 1 return f()|};
  check_error "no caller context"
    {|declare function f() { name(.) }; doc("lib.xml")/lib/f()|}

let test_eval_expr_api () =
  let ev = Eval.create ~registry () in
  let e = Parser.parse_expr "$n + 1" in
  let r = Eval.eval_expr ev ~vars:[ ("n", [ Item.A (Atom.Int 41) ]) ] e in
  check "vars api" true
    (match r with [ Item.A (Atom.Int 42) ] -> true | _ -> false);
  let doc = Option.get (Doc_registry.find ~registry "lib.xml") in
  let book =
    List.hd
      (Eval.eval_expr ev ~context:(Item.N doc) (Parser.parse_expr "//book[1]"))
  in
  let r2 = Eval.eval_expr ev ~context:book (Parser.parse_expr "name(.)") in
  check "context api" true
    (match r2 with [ Item.A (Atom.Str "book") ] -> true | _ -> false)

let test_errors () =
  check_error "undefined variable" "$nope";
  check_error "context absent" ".";
  check_error "doc missing" {|doc("nope.xml")|};
  check_error "call depth guard"
    {|declare function loop($n) { loop($n + 1) }; loop(0)|}

let test_api_surface () =
  let ev = Eval.create ~registry ~strategy:Eval.Naive () in
  check "strategy getter" true (Eval.strategy ev = Eval.Naive);
  Eval.set_strategy ev Eval.Auto;
  check "strategy setter" true (Eval.strategy ev = Eval.Auto);
  check "registry getter" true (Eval.registry ev == registry);
  (* load_prolog installs functions and globals without running main *)
  Eval.load_prolog ev
    (Parser.parse_program
       {|declare variable $k := 3;
         declare function triple($n) { $n * $k };
         0|});
  check "prolog functions visible" true
    (Hashtbl.mem (Eval.functions ev) "triple");
  check "globals evaluated" true
    (Eval.eval_expr ev (Parser.parse_expr "triple(2)")
    = [ Item.A (Atom.Int 6) ]);
  (* stats lifecycle *)
  let stats = Eval.stats ev in
  Fixq_lang.Stats.reset stats;
  check "reset clears totals" true
    (Fixq_lang.Stats.nodes_fed stats = 0
    && Fixq_lang.Stats.payload_calls stats = 0);
  ignore
    (Eval.eval_expr ev
       (Parser.parse_expr "with $x seeded by (1 to 0) recurse $x"))
  |> ignore;
  check "stats pretty-prints" true
    (String.length (Format.asprintf "%a" Fixq_lang.Stats.pp stats) > 0);
  (* printers *)
  check "item pp" true
    (String.length
       (Format.asprintf "%a" Item.pp_seq
          [ Item.A (Atom.Int 1); Item.A (Atom.Str "s") ])
    > 0)

let test_atom_result_kinds () =
  check "int" true (atom_result "1 + 1" = Atom.Int 2);
  check "bool" true (atom_result "1 = 1" = Atom.Bool true);
  check "str" true (atom_result {|"a"|} = Atom.Str "a")

let () =
  Alcotest.run "eval"
    [ ( "basics",
        [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "logic" `Quick test_logic;
          Alcotest.test_case "sequences" `Quick test_sequences;
          Alcotest.test_case "atom kinds" `Quick test_atom_result_kinds;
          Alcotest.test_case "api surface" `Quick test_api_surface ] );
      ( "paths",
        [ Alcotest.test_case "navigation" `Quick test_paths;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "fn:id" `Quick test_fn_id;
          Alcotest.test_case "fn:idref" `Quick test_fn_idref ] );
      ( "control",
        [ Alcotest.test_case "flwor" `Quick test_flwor;
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "instance of" `Quick test_instance_of;
          Alcotest.test_case "cast/castable" `Quick test_cast;
          Alcotest.test_case "tokenize" `Quick test_tokenize;
          Alcotest.test_case "typeswitch" `Quick test_typeswitch ] );
      ( "builtins",
        [ Alcotest.test_case "strings" `Quick test_string_functions;
          Alcotest.test_case "numerics" `Quick test_numeric_functions;
          Alcotest.test_case "sequences" `Quick test_sequence_functions;
          Alcotest.test_case "more builtins" `Quick test_more_builtins;
          Alcotest.test_case "nodes" `Quick test_node_functions ] );
      ( "construction",
        [ Alcotest.test_case "constructors" `Quick test_constructors ] );
      ( "functions",
        [ Alcotest.test_case "user functions" `Quick test_user_functions;
          Alcotest.test_case "isolation" `Quick test_function_isolation;
          Alcotest.test_case "eval_expr api" `Quick test_eval_expr_api;
          Alcotest.test_case "errors" `Quick test_errors ] ) ]
