(* The public facade: engine selection, distributivity verdicts, plan
   capture, instrumentation reporting, and the paper's headline
   behaviours end-to-end. *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Parser = Fixq_lang.Parser
module Push = Fixq_algebra.Push

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let registry = Doc_registry.create ()

let () =
  Doc_registry.register ~registry "curriculum.xml"
    (Xml_parser.parse_string ~strip_whitespace:true
       {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites/></course>
</curriculum>|})

let q1 =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
    recurse $x/id(./prerequisites/pre_code)|}

let q1_unfolded =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
    recurse
      for $c in doc("curriculum.xml")/curriculum/course
      where $c/@code = $x/prerequisites/pre_code
      return $c|}

let q2 =
  {|let $seed := (<a/>,<b><c><d/></c></b>)
    return with $x seeded by $seed
           recurse if (count($x/self::a)) then $x/* else ()|}

let engines =
  [ ("interp/naive", Fixq.Interpreter Fixq.Naive);
    ("interp/auto", Fixq.Interpreter Fixq.Auto);
    ("algebra/naive", Fixq.Algebra Fixq.Naive);
    ("algebra/auto", Fixq.Algebra Fixq.Auto) ]

let run engine src = Fixq.run ~registry ~engine src

(* ------------------------------------------------------------------ *)

let test_engines_agree_on_q1 () =
  let reference = (run (Fixq.Interpreter Fixq.Naive) q1).Fixq.result in
  check_int "three prerequisites" 3 (List.length reference);
  List.iter
    (fun (name, engine) ->
      if not (Item.set_equal reference (run engine q1).Fixq.result) then
        Alcotest.failf "%s disagrees on Q1" name)
    engines

let test_auto_uses_delta_on_q1 () =
  check "interp auto" true
    ((run (Fixq.Interpreter Fixq.Auto) q1).Fixq.used_delta = Some true);
  check "algebra auto" true
    ((run (Fixq.Algebra Fixq.Auto) q1).Fixq.used_delta = Some true);
  check "forced naive reports it" true
    ((run (Fixq.Interpreter Fixq.Naive) q1).Fixq.used_delta = Some false)

let test_delta_reduces_nodes_fed () =
  let naive = run (Fixq.Interpreter Fixq.Naive) q1 in
  let delta = run (Fixq.Interpreter Fixq.Auto) q1 in
  check "fewer nodes fed" true (delta.Fixq.nodes_fed < naive.Fixq.nodes_fed);
  check_int "same depth" naive.Fixq.depth delta.Fixq.depth;
  let alg_naive = run (Fixq.Algebra Fixq.Naive) q1 in
  let alg_delta = run (Fixq.Algebra Fixq.Auto) q1 in
  check "algebra too" true (alg_delta.Fixq.nodes_fed < alg_naive.Fixq.nodes_fed)

let test_q2_stays_naive_everywhere () =
  (* the guard of Theorem 3.2: no engine may trade Naïve for Delta *)
  List.iter
    (fun (name, engine) ->
      let r = run engine q2 in
      match engine with
      | Fixq.Interpreter Fixq.Auto | Fixq.Algebra Fixq.Auto ->
        if r.Fixq.used_delta <> Some false then
          Alcotest.failf "%s applied Delta to Q2" name
      | _ -> ())
    engines;
  (* and all engines agree on the (Definition 2.1) result *)
  let reference = (run (Fixq.Interpreter Fixq.Naive) q2).Fixq.result in
  List.iter
    (fun (name, engine) ->
      if
        List.length (run engine q2).Fixq.result <> List.length reference
      then Alcotest.failf "%s disagrees on Q2" name)
    engines

let test_forced_delta_unsound_flagged () =
  (* forcing Delta is allowed (research knob) and reports used_delta *)
  let r = run (Fixq.Interpreter Fixq.Delta) q1 in
  check "forced delta reported" true (r.Fixq.used_delta = Some true)

let test_verdicts_q1 () =
  match Fixq.distributivity_verdicts ~registry (Parser.parse_program q1) with
  | Some (syn, alg) ->
    check "syntactic accepts Q1" true syn;
    check "algebraic accepts Q1" true (alg = Some true)
  | None -> Alcotest.fail "no IFP found"

let test_verdicts_section41 () =
  (* the paper's punchline: syntactic no, algebraic yes *)
  match
    Fixq.distributivity_verdicts ~registry (Parser.parse_program q1_unfolded)
  with
  | Some (syn, alg) ->
    check "syntactic rejects the unfolding" false syn;
    check "algebraic accepts it" true (alg = Some true)
  | None -> Alcotest.fail "no IFP found"

let test_verdicts_q2 () =
  match Fixq.distributivity_verdicts ~registry (Parser.parse_program q2) with
  | Some (syn, alg) ->
    check "syntactic rejects Q2" false syn;
    check "algebraic rejects Q2" true (alg = Some false)
  | None -> Alcotest.fail "no IFP found"

let test_section41_behaviour () =
  (* interpreter falls back to Naive, algebra engine runs µ∆; results
     agree *)
  let ri = run (Fixq.Interpreter Fixq.Auto) q1_unfolded in
  let ra = run (Fixq.Algebra Fixq.Auto) q1_unfolded in
  check "interpreter naive" true (ri.Fixq.used_delta = Some false);
  check "algebra delta" true (ra.Fixq.used_delta = Some true);
  check "same result" true (Item.set_equal ri.Fixq.result ra.Fixq.result);
  check "algebra feeds fewer" true (ra.Fixq.nodes_fed < ri.Fixq.nodes_fed)

let test_plan_capture () =
  match Fixq.plan_of_first_ifp ~registry (Parser.parse_program q1) with
  | Some (fix_id, plan) ->
    let o = Push.check ~fix_id plan in
    check "captured plan distributive" true o.Push.distributive;
    check "plan renders" true
      (String.length (Fixq_algebra.Render.to_ascii plan) > 0)
  | None -> Alcotest.fail "no plan captured"

let test_fallback_reporting () =
  (* a body with a node constructor cannot be compiled: the algebra
     engine reports the fallback and still answers correctly *)
  let q =
    {|count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
      recurse ($x/id(./prerequisites/pre_code), <note/>))|}
  in
  (* constructors make the IFP diverge under Naive; bound the run *)
  let r =
    try
      Some
        (Fixq.run ~registry ~max_iterations:20
           ~engine:(Fixq.Algebra Fixq.Auto) q)
    with Fixq.Error _ -> None
  in
  (match r with
  | Some r -> check "fallback recorded" true (r.Fixq.fallbacks <> [])
  | None -> check "diverged (acceptable for a constructor body)" true true)

let test_stratified_end_to_end () =
  (* "prerequisites not already taken": x \ R with fixed R — naive by
     default, delta under the stratified flag, same answer *)
  let q =
    {|let $taken := doc("curriculum.xml")/curriculum/course[@code="c3"]
      return with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
             recurse ($x/id(./prerequisites/pre_code) except $taken)|}
  in
  let plain = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) q in
  let strat =
    Fixq.run ~registry ~stratified:true ~engine:(Fixq.Interpreter Fixq.Auto) q
  in
  check "default: naive" true (plain.Fixq.used_delta = Some false);
  check "stratified: delta" true (strat.Fixq.used_delta = Some true);
  check "same result" true (Item.set_equal plain.Fixq.result strat.Fixq.result);
  let alg_strat =
    Fixq.run ~registry ~stratified:true ~engine:(Fixq.Algebra Fixq.Auto) q
  in
  check "algebra stratified: µ∆" true (alg_strat.Fixq.used_delta = Some true);
  check "algebra agrees" true
    (Item.set_equal plain.Fixq.result alg_strat.Fixq.result)

let test_no_ifp_query () =
  let r = run (Fixq.Interpreter Fixq.Auto) {|1 + 1|} in
  check "no delta flag" true (r.Fixq.used_delta = None);
  check_int "no recursion depth" 0 r.Fixq.depth;
  check "verdicts absent" true
    (Fixq.distributivity_verdicts ~registry (Parser.parse_program "1 + 1")
    = None)

let test_error_wrapping () =
  check "parse errors wrapped" true
    (try
       ignore (run (Fixq.Interpreter Fixq.Auto) "1 +");
       false
     with Fixq.Error _ -> true);
  check "eval errors wrapped" true
    (try
       ignore (run (Fixq.Interpreter Fixq.Auto) "$undefined");
       false
     with Fixq.Error _ -> true)

let test_wall_time_reported () =
  let r = run (Fixq.Interpreter Fixq.Auto) q1 in
  check "wall time non-negative" true (r.Fixq.wall_ms >= 0.0)

let test_ifp_inside_function () =
  (* the IFP site sits in a UDF body; its bindings come from the
     function scope — both engines must handle the compilation unit *)
  let q =
    {|declare function closure($seed) {
        with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)
      };
      count(closure(doc("curriculum.xml")/curriculum/course[@code="c1"]))|}
  in
  let ri = run (Fixq.Interpreter Fixq.Auto) q in
  let ra = run (Fixq.Algebra Fixq.Auto) q in
  check "results agree" true (Item.set_equal ri.Fixq.result ra.Fixq.result);
  check "both used delta" true
    (ri.Fixq.used_delta = Some true && ra.Fixq.used_delta = Some true)

let test_ifp_seeded_by_ifp () =
  (* an IFP whose seed is itself an IFP (nested at seed position is
     fine; only nested bodies are out of scope) *)
  let q =
    {|count(with $y seeded by
             (with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
              recurse $x/id(./prerequisites/pre_code))
           recurse $y/id(./prerequisites/pre_code))|}
  in
  List.iter
    (fun (name, engine) ->
      let r = run engine q in
      match r.Fixq.result with
      | [ Item.A (Fixq_xdm.Atom.Int n) ] ->
        (* inner closure of c1 = {c2,c3,c4}; their joint prerequisite
           closure is just {c4} *)
        if n <> 1 then Alcotest.failf "%s: expected 1, got %d" name n
      | _ -> Alcotest.failf "%s: unexpected result" name)
    engines

let test_repeated_site_uses_cache () =
  (* one IFP site evaluated many times (per course): the algebra engine
     compiles once and reuses the plan; results must match the
     interpreter *)
  let q =
    {|count(for $c in doc("curriculum.xml")/curriculum/course
           return count(with $x seeded by $c
                        recurse $x/id(./prerequisites/pre_code)))|}
  in
  let ri = run (Fixq.Interpreter Fixq.Auto) q in
  let ra = run (Fixq.Algebra Fixq.Auto) q in
  check "per-course fixpoints agree" true
    (Item.deep_equal ri.Fixq.result ra.Fixq.result)

(* ------------------------------------------------------------------ *)
(* Property: engines agree on random IFP queries                       *)
(* ------------------------------------------------------------------ *)

let tree_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "c" ] in
  let spec =
    sized_size (int_bound 24)
    @@ QCheck2.Gen.fix (fun self n ->
           if n <= 1 then
             map
               (fun k -> Node.E ("leaf", [ ("k", string_of_int k) ], []))
               (int_bound 2)
           else
             map2
               (fun name kids -> Node.E (name, [ ("k", "0") ], kids))
               names
               (list_size (int_bound 3) (self (n / 2))))
  in
  map (fun s -> Node.of_spec s) spec

(* random recursion bodies over $x: mixes distributive and
   non-distributive shapes; engines must agree regardless (Auto only
   applies Delta when its check passes) *)
let body_gen =
  QCheck2.Gen.oneofl
    [ "$x/*"; "$x/a"; "$x/a union $x/b"; "$x/.."; "$x/descendant::b";
      "($x/a, $x/c)"; {|$x/*[@k = "0"]|}; "$x/self::a/*";
      "for $v in $x return $v/*"; "if (count($x) > 2) then $x/* else $x/a";
      "$x/* except $x/leaf" ]

let seed_gen = QCheck2.Gen.oneofl [ "/*"; "//a"; "/*/*"; "//leaf" ]

let prop_engines_agree =
  QCheck2.Test.make ~count:120 ~name:"engines agree on random IFP queries"
    QCheck2.Gen.(triple tree_gen body_gen seed_gen)
    (fun (doc, body, seed) ->
      let reg = Doc_registry.create () in
      Doc_registry.register ~registry:reg "t.xml" doc;
      let q =
        Printf.sprintf
          {|with $x seeded by doc("t.xml")%s recurse %s|} seed body
      in
      let result engine = (Fixq.run ~registry:reg ~engine q).Fixq.result in
      let reference = result (Fixq.Interpreter Fixq.Naive) in
      Item.set_equal reference (result (Fixq.Interpreter Fixq.Auto))
      && Item.set_equal reference (result (Fixq.Algebra Fixq.Naive))
      && Item.set_equal reference (result (Fixq.Algebra Fixq.Auto)))

let () =
  Alcotest.run "engines"
    [ ( "agreement",
        [ Alcotest.test_case "all engines on Q1" `Quick
            test_engines_agree_on_q1;
          Alcotest.test_case "auto picks delta" `Quick
            test_auto_uses_delta_on_q1;
          Alcotest.test_case "delta reduces feeding" `Quick
            test_delta_reduces_nodes_fed;
          Alcotest.test_case "Q2 stays naive" `Quick
            test_q2_stays_naive_everywhere;
          Alcotest.test_case "forced delta" `Quick
            test_forced_delta_unsound_flagged ] );
      ( "verdicts",
        [ Alcotest.test_case "Q1" `Quick test_verdicts_q1;
          Alcotest.test_case "section 4.1" `Quick test_verdicts_section41;
          Alcotest.test_case "Q2" `Quick test_verdicts_q2;
          Alcotest.test_case "section 4.1 behaviour" `Quick
            test_section41_behaviour;
          Alcotest.test_case "plan capture" `Quick test_plan_capture ] );
      ( "sites",
        [ Alcotest.test_case "IFP in a function body" `Quick
            test_ifp_inside_function;
          Alcotest.test_case "IFP seeding an IFP" `Quick
            test_ifp_seeded_by_ifp;
          Alcotest.test_case "repeated sites" `Quick
            test_repeated_site_uses_cache ] );
      ( "reporting",
        [ Alcotest.test_case "stratified end-to-end" `Quick
            test_stratified_end_to_end;
          Alcotest.test_case "fallbacks" `Quick test_fallback_reporting;
          Alcotest.test_case "no-IFP queries" `Quick test_no_ifp_query;
          Alcotest.test_case "errors" `Quick test_error_wrapping;
          Alcotest.test_case "wall time" `Quick test_wall_time_reported ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_engines_agree ]) ]
