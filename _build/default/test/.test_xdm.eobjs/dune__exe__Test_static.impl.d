test/test_static.ml: Alcotest Fixq_lang List String
