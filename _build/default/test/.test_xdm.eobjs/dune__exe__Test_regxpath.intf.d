test/test_regxpath.mli:
