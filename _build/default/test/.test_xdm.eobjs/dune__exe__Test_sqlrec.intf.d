test/test_sqlrec.mli:
