test/test_datalog.ml: Alcotest Buffer Fixq_datalog Hashtbl List Printf QCheck2 QCheck_alcotest String
