test/test_fixpoint.ml: Alcotest Fixq_lang Fixq_xdm List Option QCheck2 QCheck_alcotest
