test/test_distributivity.ml: Alcotest Fixq_lang Fixq_xdm Hashtbl List Printf QCheck2 QCheck_alcotest String
