test/test_eval.ml: Alcotest Fixq_lang Fixq_xdm Format Hashtbl List Option String
