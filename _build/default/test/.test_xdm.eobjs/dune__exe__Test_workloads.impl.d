test/test_workloads.ml: Alcotest Fixq Fixq_lang Fixq_workloads Fixq_xdm Hashtbl List Option
