test/test_xdm.ml: Alcotest Filename Fixq_xdm Float Format List Option QCheck2 QCheck_alcotest String Sys
