test/test_xdm.mli:
