test/test_regxpath.ml: Alcotest Fixq_lang Fixq_regxpath Fixq_xdm Format List QCheck2 QCheck_alcotest
