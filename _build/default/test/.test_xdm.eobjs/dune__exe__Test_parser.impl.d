test/test_parser.ml: Alcotest Fixq_lang Fixq_xdm List
