test/test_store.ml: Alcotest Fixq_store Fixq_xdm List QCheck2 QCheck_alcotest
