test/test_algebra.ml: Alcotest Fixq_algebra Fixq_lang Fixq_xdm Format Hashtbl List Option QCheck2 QCheck_alcotest String
