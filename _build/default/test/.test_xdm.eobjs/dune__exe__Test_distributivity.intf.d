test/test_distributivity.mli:
