test/test_engines.ml: Alcotest Fixq Fixq_algebra Fixq_lang Fixq_xdm List Printf QCheck2 QCheck_alcotest String
