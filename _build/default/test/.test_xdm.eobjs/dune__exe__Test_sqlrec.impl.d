test/test_sqlrec.ml: Alcotest Fixq_sqlrec List Printf QCheck2 QCheck_alcotest
