test/test_pretty.ml: Alcotest Fixq_lang Fixq_xdm List QCheck2 QCheck_alcotest
