test/test_rewrite.ml: Alcotest Fixq_lang Fixq_xdm List String
