(* The pre/size/level encoding and the staircase join, differentially
   tested against the navigational axes of the data model. *)

module Node = Fixq_xdm.Node
module Axis = Fixq_xdm.Axis
module Node_set = Fixq_xdm.Node_set
module Encoding = Fixq_store.Encoding
module Staircase = Fixq_store.Staircase

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample () =
  Node.of_spec
    (Node.E
       ( "r", [],
         [ Node.E ("a", [], [ Node.E ("b", [], [ Node.T "t" ]) ]);
           Node.E ("a", [], []);
           Node.E ("c", [], [ Node.E ("a", [], [ Node.E ("b", [], []) ]) ])
         ] ))

let all_nodes doc =
  let out = ref [] in
  Node.iter_subtree (fun n -> out := n :: !out) doc;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Encoding invariants                                                 *)
(* ------------------------------------------------------------------ *)

let test_encoding_shape () =
  let doc = sample () in
  let enc = Encoding.of_tree doc in
  check_int "one row per node" (Node.subtree_size doc) (Encoding.size enc);
  (* pre ranks are 0..n-1 and row_of_node inverts them *)
  let ok = ref true in
  for pre = 0 to Encoding.size enc - 1 do
    let r = Encoding.row enc pre in
    if r.Encoding.pre <> pre then ok := false;
    if (Encoding.row_of_node enc r.Encoding.node).Encoding.pre <> pre then
      ok := false
  done;
  check "pre ranks consistent" true !ok

let test_encoding_size_level () =
  let doc = sample () in
  let enc = Encoding.of_tree doc in
  let ok = ref true in
  for pre = 0 to Encoding.size enc - 1 do
    let r = Encoding.row enc pre in
    (* size = number of nodes in the subtree below *)
    let expected = Node.subtree_size r.Encoding.node - 1 in
    if r.Encoding.size <> expected then ok := false;
    (* level = parent chain length *)
    let rec depth (n : Node.t) =
      match Node.parent n with None -> 0 | Some p -> 1 + depth p
    in
    if r.Encoding.level <> depth r.Encoding.node then ok := false
  done;
  check "size and level columns" true !ok

let test_encoding_region_property () =
  (* descendants of v are exactly the pre range (pre, pre+size] *)
  let doc = sample () in
  let enc = Encoding.of_tree doc in
  let ok = ref true in
  List.iter
    (fun v ->
      let rv = Encoding.row_of_node enc v in
      let desc = Axis.step Axis.Descendant Axis.Kind_node v in
      let desc_pres =
        List.map (fun d -> (Encoding.row_of_node enc d).Encoding.pre) desc
      in
      let expected =
        List.init rv.Encoding.size (fun i -> rv.Encoding.pre + 1 + i)
      in
      if List.sort compare desc_pres <> expected then ok := false)
    (all_nodes doc);
  check "descendant region" true !ok

let test_encoding_cache () =
  let doc = sample () in
  let e1 = Encoding.of_tree_cached doc in
  let e2 = Encoding.of_tree_cached (List.hd (Node.children doc)) in
  check "cache returns same encoding for same tree" true (e1 == e2)

(* ------------------------------------------------------------------ *)
(* Staircase join vs navigational axes                                 *)
(* ------------------------------------------------------------------ *)

let axes_to_test =
  [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Parent;
    Axis.Ancestor; Axis.Ancestor_or_self; Axis.Self; Axis.Following_sibling;
    Axis.Preceding_sibling; Axis.Following; Axis.Preceding ]

let tests_to_test =
  [ Axis.Kind_node; Axis.Name "a"; Axis.Name "b"; Axis.Name "*";
    Axis.Kind_text; Axis.Kind_element None ]

let same_node_set a b =
  Node_set.equal (Node_set.of_nodes a) (Node_set.of_nodes b)

let staircase_matches_axes doc =
  let enc = Encoding.of_tree doc in
  let ns = all_nodes doc in
  List.for_all
    (fun axis ->
      List.for_all
        (fun test ->
          (* single-node contexts *)
          List.for_all
            (fun n ->
              same_node_set
                (Staircase.step_nodes enc axis test [ n ])
                (Axis.step axis test n))
            ns
          (* and a multi-node context (dedup semantics) *)
          && same_node_set
               (Staircase.step_nodes enc axis test ns)
               (List.concat_map (Axis.step axis test) ns))
        tests_to_test)
    axes_to_test

let test_staircase_sample () =
  check "staircase = axes on sample" true (staircase_matches_axes (sample ()))

let test_staircase_result_sorted () =
  let doc = sample () in
  let enc = Encoding.of_tree doc in
  let ns = all_nodes doc in
  let pres =
    List.sort_uniq compare
      (List.map (fun n -> (Encoding.row_of_node enc n).Encoding.pre) ns)
  in
  List.iter
    (fun axis ->
      let out = Staircase.step enc axis Axis.Kind_node pres in
      if List.sort compare out <> out then
        Alcotest.failf "unsorted result on %s" (Axis.axis_to_string axis))
    axes_to_test;
  check "sorted" true true

let test_staircase_attributes () =
  let doc =
    Node.of_spec
      (Node.E
         ( "r", [ ("x", "1") ],
           [ Node.E ("a", [ ("y", "2"); ("z", "3") ], []) ] ))
  in
  let enc = Encoding.of_tree doc in
  let a =
    (Encoding.row enc 2).Encoding.node (* doc=0, r=1, a=2 *)
  in
  Alcotest.(check int)
    "two attributes" 2
    (List.length (Staircase.step_nodes enc Axis.Attribute (Axis.Name "*") [ a ]))

(* Property: staircase equals axes on random trees. *)
let spec_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "c" ] in
  sized
  @@ fix (fun self n ->
         if n <= 1 then map (fun s -> Node.T s) (oneofl [ "x"; "y" ])
         else
           frequency
             [ (1, map (fun s -> Node.T s) (oneofl [ "x"; "y" ]));
               ( 4,
                 map2
                   (fun name kids -> Node.E (name, [], kids))
                   names
                   (list_size (int_bound 4) (self (n / 2))) ) ])

let tree_gen = QCheck2.Gen.map (fun s -> Node.of_spec s) spec_gen

let prop_staircase =
  QCheck2.Test.make ~count:60 ~name:"staircase = navigational axes"
    tree_gen staircase_matches_axes

let () =
  Alcotest.run "store"
    [ ( "encoding",
        [ Alcotest.test_case "shape" `Quick test_encoding_shape;
          Alcotest.test_case "size/level" `Quick test_encoding_size_level;
          Alcotest.test_case "descendant region" `Quick
            test_encoding_region_property;
          Alcotest.test_case "cache" `Quick test_encoding_cache ] );
      ( "staircase",
        [ Alcotest.test_case "sample differential" `Quick
            test_staircase_sample;
          Alcotest.test_case "sorted results" `Quick
            test_staircase_result_sorted;
          Alcotest.test_case "attributes" `Quick test_staircase_attributes ]
      );
      ("properties", [ QCheck_alcotest.to_alcotest prop_staircase ]) ]
