(* Static checks: name resolution, arity, duplicates, IFP warnings. *)

module Parser = Fixq_lang.Parser
module Static = Fixq_lang.Static

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let diags src = Static.check_program (Parser.parse_program src)
let errs src = Static.errors (diags src)

let ok msg src = check_int (msg ^ ": expected clean") 0 (List.length (errs src))

let bad msg needle src =
  match errs src with
  | [] -> Alcotest.failf "%s: expected an error" msg
  | ds ->
    let found =
      List.exists
        (fun d ->
          let m = d.Static.message in
          let n = String.length needle and h = String.length m in
          let rec go i = i + n <= h && (String.sub m i n = needle || go (i + 1)) in
          n = 0 || go 0)
        ds
    in
    if not found then
      Alcotest.failf "%s: no error mentioning %S (got %s)" msg needle
        (String.concat "; " (List.map (fun d -> d.Static.message) ds))

let test_clean_programs () =
  ok "literal" "1 + 1";
  ok "flwor binders" "for $x at $i in (1, 2) return $x + $i";
  ok "let binder" "let $v := 1 return $v";
  ok "quantifier binder" "some $v in (1, 2) satisfies $v = 1";
  ok "typeswitch binders"
    {|typeswitch (1) case $i as xs:integer return $i default $d return $d|};
  ok "ifp binder" "with $x seeded by (1, 2) recurse $x";
  ok "globals"
    {|declare variable $g := 1; $g + 1|};
  ok "function params"
    {|declare function f($a, $b) { $a + $b }; f(1, 2)|};
  ok "functions see globals"
    {|declare variable $g := 1; declare function f() { $g }; f()|};
  ok "builtins" "count((1, 2)) + string-length(\"x\")"

let test_undefined_variables () =
  bad "bare" "$nope" "$nope";
  bad "out of scope after let" "$v" "(let $v := 1 return $v) + $v";
  bad "for var leaks" "$x" "(for $x in (1) return $x), $x";
  bad "function param not visible outside" "$a"
    {|declare function f($a) { $a }; $a|};
  bad "caller locals invisible in function" "$x"
    {|declare function f() { $x }; let $x := 1 return f()|};
  bad "global used before declaration" "$b"
    {|declare variable $a := $b; declare variable $b := 1; $a|}

let test_functions () =
  bad "unknown function" "no-such" "no-such(1)";
  bad "wrong arity" "expects 1"
    {|declare function f($a) { $a }; f(1, 2)|};
  bad "duplicate declaration" "more than once"
    {|declare function f() { 1 }; declare function f() { 2 }; f()|};
  bad "duplicate parameter" "duplicate parameter"
    {|declare function f($a, $a) { $a }; f(1, 2)|}

let test_ifp_warning () =
  let ds =
    diags "with $x seeded by (1, 2) recurse (3, 4)"
  in
  check "warning emitted" true
    (List.exists (fun d -> d.Static.severity = Static.Warning) ds);
  check_int "but no errors" 0 (List.length (Static.errors ds))

let test_contexts_reported () =
  let ds =
    errs {|declare function f() { $oops }; 1|}
  in
  check "context names the function" true
    (List.exists (fun d -> d.Static.context = "f") ds)

let () =
  Alcotest.run "static"
    [ ( "checks",
        [ Alcotest.test_case "clean programs" `Quick test_clean_programs;
          Alcotest.test_case "undefined variables" `Quick
            test_undefined_variables;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "ifp warning" `Quick test_ifp_warning;
          Alcotest.test_case "contexts" `Quick test_contexts_reported ] ) ]
