(* The syntactic distributivity checker ds_$x(·) — one test per
   inference rule of Figure 5, the paper's worked examples, the
   built-in annotations, and a soundness property: whatever ds accepts,
   Naïve and Delta agree on. *)

module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Parser = Fixq_lang.Parser
module D = Fixq_lang.Distributivity
module Eval = Fixq_lang.Eval
module Stats = Fixq_lang.Stats
module Fixpoint = Fixq_lang.Fixpoint

let check = Alcotest.(check bool)

let funs_of src =
  let p = Parser.parse_program src in
  let tbl = Hashtbl.create 8 in
  List.iter (fun fd -> Hashtbl.replace tbl fd.Fixq_lang.Ast.fname fd)
    p.Fixq_lang.Ast.functions;
  tbl

let ds ?functions src = D.check ?functions "x" (Parser.parse_expr src)

let safe msg src = check (msg ^ ": expected SAFE") true (ds src)
let unsafe msg src = check (msg ^ ": expected UNSAFE") false (ds src)

(* ------------------------------------------------------------------ *)
(* Rules of Figure 5                                                   *)
(* ------------------------------------------------------------------ *)

let test_const_var () =
  safe "CONST literal" "42";
  safe "CONST empty" "()";
  safe "VAR x itself" "$x";
  safe "VAR other" "$y"

let test_if_rule () =
  safe "IF with x in branches" {|if ($y) then $x/a else $x/b|};
  unsafe "IF with x in condition" {|if ($x) then $y else $z|};
  unsafe "IF with count(x) condition" {|if (count($x)) then $x/a else ()|}

let test_concat_rule () =
  safe "CONCAT sequence" "$x/a, $x/b";
  safe "CONCAT union" "$x/a union $x/b";
  safe "CONCAT pipe" "$x/a | $x/b"

let test_for_rules () =
  safe "FOR1: x in body" "for $v in $y return $x";
  safe "FOR1: positional allowed" "for $v at $p in $y return $x/a";
  safe "FOR2: x in range" "for $v in $x return $v/a";
  unsafe "FOR2: positional variable breaks it"
    "for $v at $p in $x return $v";
  unsafe "linearity: x in range and body" "for $v in $x return $x"

let test_let_rules () =
  safe "LET1: x in body" "let $v := $y return $x/a";
  safe "LET2: x in value, v distributive in body"
    "let $v := $x/a return $v/b";
  unsafe "LET2 violated: body inspects v"
    "let $v := $x/a return count($v)";
  unsafe "linearity: x in value and body" "let $v := $x return ($x, $v)"

let test_typeswitch_rule () =
  safe "TYPESW branches"
    {|typeswitch ($y) case element() return $x/a default return $x/b|};
  unsafe "TYPESW scrutinee"
    {|typeswitch ($x) case element() return $y default return $z|}

let test_step_rules () =
  safe "STEP1: x on the right" "$y/id($x)";
  safe "STEP2: x on the left" "$x/child::a";
  safe "STEP2 chained" "$x/a/b/c";
  unsafe "x on both sides of /" "$x/id($x/@ref)"

let test_funcall_rule () =
  let functions =
    funs_of
      {|declare function pre($cs) { $cs/id(./prerequisites/pre_code) };
        declare function whole($cs) { $cs[1] };
        declare function selfrec($cs) { selfrec($cs/a) };
        0|}
  in
  check "FUNCALL recurses into distributive body" true
    (D.check ~functions "x" (Parser.parse_expr "pre($x)"));
  check "FUNCALL rejects positional body" false
    (D.check ~functions "x" (Parser.parse_expr "whole($x)"));
  check "recursive functions rejected conservatively" false
    (D.check ~functions "x" (Parser.parse_expr "selfrec($x)"))

(* ------------------------------------------------------------------ *)
(* The paper's examples                                                *)
(* ------------------------------------------------------------------ *)

let test_paper_examples () =
  (* Section 3.1: location steps are distributive *)
  safe "Q1 body" "$x/id(./prerequisites/pre_code)";
  (* Section 3.1: $x[1] is not *)
  unsafe "positional filter on x" "$x[1]";
  (* Section 3.2: problematic subexpressions *)
  unsafe "count" "count($x)";
  unsafe "general comparison over x" "$x = 10";
  (* Q2 of Example 2.4 *)
  unsafe "Q2 body" {|if (count($x/self::a)) then $x/* else ()|};
  (* Section 3.2: the checker misses count($x) >= 1 even though it is
     distributive in the s= sense? (it is NOT distributive — a boolean
     per split — so it must stay unsafe) *)
  unsafe "count(x) >= 1" "count($x) >= 1";
  (* node constructors void distributivity even without $x *)
  unsafe "constructor, x elsewhere" {|($x/a, text { "c" })|};
  unsafe "constructor around x" "<wrap>{$x}</wrap>"

let test_section41_variant () =
  (* id($x/…) is accepted thanks to the built-in annotation … *)
  safe "id with x inside" "id($x/prerequisites/pre_code)";
  (* … but the unfolded definition is rejected (general comparison) *)
  unsafe "unfolded id"
    {|for $c in doc("curriculum.xml")/curriculum/course
      where $c/@code = $x/prerequisites/pre_code
      return $c|}

(* ------------------------------------------------------------------ *)
(* Extensions: filters, built-ins, helpers                             *)
(* ------------------------------------------------------------------ *)

let test_filter_extension () =
  safe "itemwise predicate" {|$x[@code = "c1"]|};
  safe "boolean predicate" "$x[empty(a)]";
  unsafe "numeric predicate" "$x[1]";
  unsafe "position()" "$x[position() = 2]";
  unsafe "last()" "$x[last()]";
  unsafe "x in predicate" "$y[. is $x]";
  (* predicates inside step chains are per-node and fine *)
  safe "positional predicate under a step" "$x/a[1]"

let test_builtin_annotations () =
  safe "data" "data($x)";
  safe "distinct-values" "distinct-values($x)";
  safe "reverse (set-equality ignores order)" "reverse($x)";
  safe "root" "root($x)";
  unsafe "empty" "empty($x)";
  unsafe "exists" "exists($x)";
  unsafe "sum" "sum($x)";
  unsafe "string of x (whole-seq)" "string($x)";
  check "annotation lookup" true (D.builtin_annotation "id" <> None);
  check "count has none" true (D.builtin_annotation "count" = None)

let test_except_intersect () =
  unsafe "except with x" "$x except $y";
  unsafe "intersect with x" "$y intersect $x";
  safe "except without x" "($y except $z, $x/a)"

(* Section 6: x \ R with fixed R is distributive under the stratified
   refinement (off by default, matching Figure 5). *)
let test_stratified_difference () =
  let ds_strat src = D.check ~stratified:true "x" (Parser.parse_expr src) in
  check "off by default" false (ds "$x except $y");
  check "stratified accepts fixed RHS" true (ds_strat "$x except $y");
  check "stratified accepts step then except" true
    (ds_strat "$x/a except $y");
  check "still rejects x on the right" false (ds_strat "$y except $x");
  check "still rejects x on both sides" false (ds_strat "$x except $x/a");
  check "constructor in fixed side rejected" false
    (ds_strat {|$x except <a/>|});
  (* soundness spot-check: naive s= delta on a stratified body *)
  let doc =
    Fixq_xdm.Xml_parser.parse_string ~strip_whitespace:true
      "<r><a><a><a/></a></a><a/></r>"
  in
  let root = List.hd (Fixq_xdm.Node.children doc) in
  let excluded =
    [ Item.N (List.hd (Fixq_xdm.Node.children root)) ]
  in
  let body_expr = Parser.parse_expr "$x/a except $y" in
  let ev = Eval.create () in
  let body input =
    Eval.eval_expr ev ~vars:[ ("x", input); ("y", excluded) ] body_expr
  in
  let stats = Stats.create () in
  let seed = [ Item.N root ] in
  let rn = Fixpoint.naive ~stats ~body ~seed () in
  let rd = Fixpoint.delta ~stats ~body ~seed () in
  check "naive s= delta on stratified body" true (Item.set_equal rn rd)

let test_quantifier_arith () =
  unsafe "quantifier over x" "some $v in $x satisfies $v = 1";
  unsafe "arithmetic" "$x + 1";
  unsafe "range" "1 to count($x)";
  unsafe "node comparison" "$x is $y";
  unsafe "instance of over x" "$x instance of node()*";
  safe "instance of without x" "($y instance of node()*, $x/a)"

let test_explain () =
  (match D.explain "x" (Parser.parse_expr "count($x)") with
  | D.Unsafe reason -> check "reason mentions count" true
      (String.length reason > 0)
  | D.Safe -> Alcotest.fail "expected unsafe");
  check "explain safe" true
    (D.explain "x" (Parser.parse_expr "$x/a") = D.Safe)

let test_helpers () =
  check "mentions_position" true
    (D.mentions_position (Parser.parse_expr "$y[position() = 1]"));
  check "no position" false (D.mentions_position (Parser.parse_expr "$y/a"));
  check "surely_non_numeric comparison" true
    (D.surely_non_numeric (Parser.parse_expr "@a = 1"));
  check "numeric literal is positional" false
    (D.surely_non_numeric (Parser.parse_expr "3"))

(* ------------------------------------------------------------------ *)
(* Soundness property: ds-accepted bodies ⇒ Naïve s= Delta             *)
(* ------------------------------------------------------------------ *)

(* Generate random bodies from a grammar mixing safe and unsafe
   constructs; whenever ds accepts, the two algorithms must agree. *)
let body_src_gen =
  let open QCheck2.Gen in
  let atom =
    oneofl
      [ "$x/a"; "$x/*"; "$x/.."; "$x/descendant::b"; "$y/a"; "$x"; "()";
        "$x/self::a"; "count($x)"; "$x[1]"; "$x/a[1]"; "id($x)";
        "$x[@k = \"v\"]" ]
  in
  let rec build n =
    if n <= 1 then atom
    else
      oneof
        [ atom;
          map2 (Printf.sprintf "(%s union %s)") (build (n / 2)) (build (n / 2));
          map2 (Printf.sprintf "(%s, %s)") (build (n / 2)) (build (n / 2));
          map2
            (Printf.sprintf "(if ($y) then %s else %s)")
            (build (n / 2)) (build (n / 2));
          map (Printf.sprintf "(for $v in $y return %s)") (build (n / 2));
          map (Printf.sprintf "(let $v := $y return %s)") (build (n / 2)) ]
  in
  (* keep nesting shallow: each for-level multiplies the work by |$y| *)
  sized_size (int_bound 8) build

let spec_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "k" ] in
  sized_size (int_bound 16)
  @@ fix (fun self n ->
         if n <= 1 then return (Node.E ("a", [ ("k", "v") ], []))
         else
           map2
             (fun name kids -> Node.E (name, [ ("k", "v") ], kids))
             names
             (list_size (int_bound 3) (self (n / 2))))

let prop_ds_sound =
  QCheck2.Test.make ~count:200
    ~name:"ds-accepted bodies: Naïve s= Delta"
    QCheck2.Gen.(pair (map Node.of_spec spec_gen) body_src_gen)
    (fun (doc, src) ->
      let body_expr = Parser.parse_expr src in
      if not (D.check "x" body_expr) then true (* vacuous *)
      else begin
        Node.register_id_attribute doc "k";
        let ev = Eval.create () in
        let root = List.hd (Node.children doc) in
        let y = List.map Item.node (Node.children root) in
        let body input =
          Eval.eval_expr ev ~vars:[ ("x", input); ("y", y) ] body_expr
        in
        let stats = Stats.create () in
        let seed = [ Item.N root ] in
        let rn = Fixpoint.naive ~stats ~body ~seed () in
        let rd = Fixpoint.delta ~stats ~body ~seed () in
        Item.set_equal rn rd
      end)

let () =
  Alcotest.run "distributivity"
    [ ( "figure-5",
        [ Alcotest.test_case "CONST/VAR" `Quick test_const_var;
          Alcotest.test_case "IF" `Quick test_if_rule;
          Alcotest.test_case "CONCAT" `Quick test_concat_rule;
          Alcotest.test_case "FOR1/FOR2" `Quick test_for_rules;
          Alcotest.test_case "LET1/LET2" `Quick test_let_rules;
          Alcotest.test_case "TYPESW" `Quick test_typeswitch_rule;
          Alcotest.test_case "STEP1/STEP2" `Quick test_step_rules;
          Alcotest.test_case "FUNCALL" `Quick test_funcall_rule ] );
      ( "paper",
        [ Alcotest.test_case "worked examples" `Quick test_paper_examples;
          Alcotest.test_case "section 4.1 variant" `Quick
            test_section41_variant ] );
      ( "extensions",
        [ Alcotest.test_case "filters" `Quick test_filter_extension;
          Alcotest.test_case "builtin annotations" `Quick
            test_builtin_annotations;
          Alcotest.test_case "except/intersect" `Quick test_except_intersect;
          Alcotest.test_case "stratified difference" `Quick
            test_stratified_difference;
          Alcotest.test_case "quantifiers/arith" `Quick
            test_quantifier_arith;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "helpers" `Quick test_helpers ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ds_sound ]) ]
