(* Unit and property tests for the XQuery Data Model substrate:
   QNames, atoms, nodes (identity, document order), axes, sequences,
   XML parsing and serialization. *)

module Qname = Fixq_xdm.Qname
module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Axis = Fixq_xdm.Axis
module Item = Fixq_xdm.Item
module Node_set = Fixq_xdm.Node_set
module Xml_parser = Fixq_xdm.Xml_parser
module Serializer = Fixq_xdm.Serializer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let sample_doc () =
  Node.of_spec
    (Node.E
       ( "r", [ ("version", "1") ],
         [ Node.E ("a", [ ("id", "a1") ], [ Node.T "alpha" ]);
           Node.E
             ( "b", [],
               [ Node.E ("c", [], [ Node.T "gamma" ]);
                 Node.C "note";
                 Node.E ("c", [], [ Node.T "delta" ]) ] );
           Node.T "tail" ] ))

let find_elem doc name =
  let found = ref None in
  Node.iter_subtree
    (fun n -> if !found = None && Node.name n = name then found := Some n)
    doc;
  match !found with Some n -> n | None -> Alcotest.fail ("no element " ^ name)

let elems doc name =
  let out = ref [] in
  Node.iter_subtree
    (fun n -> if Node.name n = name then out := n :: !out)
    doc;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Qname / Atom                                                        *)
(* ------------------------------------------------------------------ *)

let test_qname () =
  let q = Qname.of_string "xs:integer" in
  check_str "local" "integer" (Qname.local q);
  check_str "roundtrip" "xs:integer" (Qname.to_string q);
  check "no prefix" true (Qname.equal (Qname.of_string "a") (Qname.make "a"));
  check "prefix differs" false
    (Qname.equal (Qname.of_string "x:a") (Qname.of_string "y:a"))

let test_atom_numeric () =
  check "int=dbl" true (Atom.equal_value (Atom.Int 3) (Atom.Dbl 3.0));
  check "str promotes" true (Atom.equal_value (Atom.Str "3") (Atom.Int 3));
  check_int "to_int" 42 (Atom.to_int (Atom.Str " 42 "));
  check_str "dbl prints like xpath" "2" (Atom.to_string (Atom.Dbl 2.0));
  check_str "frac" "2.5" (Atom.to_string (Atom.Dbl 2.5));
  check "bad number raises" true
    (try
       ignore (Atom.to_number (Atom.Str "zap"));
       false
     with Atom.Type_error _ -> true)

let test_atom_bool () =
  check "empty string false" false (Atom.to_bool (Atom.Str ""));
  check "zero false" false (Atom.to_bool (Atom.Int 0));
  check "nan false" false (Atom.to_bool (Atom.Dbl Float.nan));
  check "nonempty true" true (Atom.to_bool (Atom.Str "x"));
  check "bool vs int incomparable" true
    (try
       ignore (Atom.compare_value (Atom.Bool true) (Atom.Int 1));
       false
     with Atom.Type_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Node identity / order                                               *)
(* ------------------------------------------------------------------ *)

let test_ids_preorder () =
  let doc = sample_doc () in
  (* ids strictly increase along a preorder walk *)
  let last = ref (-1) in
  let ok = ref true in
  Node.iter_subtree
    (fun n ->
      if n.Node.id <= !last then ok := false;
      last := n.Node.id)
    doc;
  check "preorder ids" true !ok

let test_attribute_order () =
  let doc = sample_doc () in
  let a = find_elem doc "a" in
  let attr = List.hd (Node.attributes a) in
  check "attr after owner" true (Node.compare_doc_order a attr < 0);
  let b = find_elem doc "b" in
  check "attr before next elem" true (Node.compare_doc_order attr b < 0)

let test_deep_copy_fresh_ids () =
  let doc = sample_doc () in
  let b = find_elem doc "b" in
  let b' = Node.deep_copy b in
  check "copy not equal" false (Node.equal b b');
  check "copy after original" true (Node.compare_doc_order b b' < 0);
  check "structure preserved" true
    (Item.deep_equal [ Item.N b ] [ Item.N b' ]);
  check "copy has no parent" true (Node.parent b' = None)

let test_element_constructor_copies () =
  let doc = sample_doc () in
  let a = find_elem doc "a" in
  let wrapper = Node.element "w" ~attrs:[ ("k", "v") ] [ a ] in
  let child = List.hd (Node.children wrapper) in
  check "child copied (new identity)" false (Node.equal a child);
  check_str "content survives" "alpha" (Node.string_value child);
  (* original tree untouched *)
  check "original parent intact" true
    (match Node.parent a with Some p -> Node.name p = "r" | None -> false)

let test_string_value () =
  let doc = sample_doc () in
  check_str "doc string value" "alphagammadeltatail" (Node.string_value doc);
  let b = find_elem doc "b" in
  check_str "elem string value skips comments" "gammadelta"
    (Node.string_value b)

let test_id_index () =
  let doc =
    Node.of_spec ~id_attrs:[ "id" ]
      (Node.E
         ( "r", [],
           [ Node.E ("x", [ ("id", "one") ], []);
             Node.E ("y", [ ("id", "two") ], []) ] ))
  in
  check "lookup one" true
    (match Node.lookup_id doc "one" with
    | Some n -> Node.name n = "x"
    | None -> false);
  check "lookup missing" true (Node.lookup_id doc "three" = None);
  (* registering a new ID attribute rebuilds the index *)
  let doc2 =
    Node.of_spec
      (Node.E ("r", [], [ Node.E ("x", [ ("code", "c9") ], []) ]))
  in
  check "not indexed yet" true (Node.lookup_id doc2 "c9" = None);
  Node.register_id_attribute doc2 "code";
  check "indexed after registration" true
    (match Node.lookup_id doc2 "c9" with
    | Some n -> Node.name n = "x"
    | None -> false)

let test_subtree_size () =
  let doc = sample_doc () in
  (* r, a, text, b, c, text, comment, c, text, tail-text, doc *)
  check_int "subtree size" 11 (Node.subtree_size doc)

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let test_axis_child_descendant () =
  let doc = sample_doc () in
  let r = find_elem doc "r" in
  check_int "children of r" 3 (List.length (Axis.step Axis.Child Axis.Kind_node r));
  check_int "child elements" 2
    (List.length (Axis.step Axis.Child (Axis.Kind_element None) r));
  check_int "descendant c" 2
    (List.length (Axis.step Axis.Descendant (Axis.Name "c") r));
  check_int "descendant-or-self nodes" 10
    (List.length (Axis.step Axis.Descendant_or_self Axis.Kind_node r))

let test_axis_reverse_order () =
  let doc = sample_doc () in
  let c2 = List.nth (elems doc "c") 1 in
  (* ancestor: nearest first *)
  let ancs = Axis.step Axis.Ancestor Axis.Kind_node c2 in
  check_str "nearest ancestor" "b" (Node.name (List.hd ancs));
  check_int "ancestors" 3 (List.length ancs);
  (* preceding-sibling: nearest first *)
  let ps = Axis.step Axis.Preceding_sibling Axis.Kind_node c2 in
  check "nearest preceding sibling is comment" true
    ((List.hd ps).Node.kind = Node.Comment);
  check_int "two preceding siblings" 2 (List.length ps)

let test_axis_following_preceding () =
  let doc = sample_doc () in
  let a = find_elem doc "a" in
  let f = Axis.step Axis.Following Axis.Kind_node a in
  (* b, c, gamma, comment, c, delta, tail *)
  check_int "following count" 7 (List.length f);
  let c2 = List.nth (elems doc "c") 1 in
  let p = Axis.step Axis.Preceding Axis.Kind_node c2 in
  (* reverse doc order; nearest is the comment *)
  check "preceding nearest is comment" true
    ((List.hd p).Node.kind = Node.Comment);
  (* following ∪ preceding ∪ ancestors ∪ descendants ∪ self = all nodes *)
  let all_parts =
    List.concat
      [ Axis.step Axis.Following Axis.Kind_node c2;
        Axis.step Axis.Preceding Axis.Kind_node c2;
        Axis.step Axis.Ancestor Axis.Kind_node c2;
        Axis.step Axis.Descendant Axis.Kind_node c2;
        [ c2 ] ]
  in
  check_int "axes partition the tree" (Node.subtree_size doc)
    (List.length all_parts)

let test_axis_attribute () =
  let doc = sample_doc () in
  let a = find_elem doc "a" in
  check_int "one attribute" 1
    (List.length (Axis.step Axis.Attribute (Axis.Name "*") a));
  check_int "named attribute" 1
    (List.length (Axis.step Axis.Attribute (Axis.Name "id") a));
  check_int "attribute never on child axis" 0
    (List.length (Axis.step Axis.Child (Axis.Name "id") a))

(* ------------------------------------------------------------------ *)
(* Item sequences                                                      *)
(* ------------------------------------------------------------------ *)

let test_ddo_and_setops () =
  let doc = sample_doc () in
  let a = find_elem doc "a" and b = find_elem doc "b" in
  let s = [ Item.N b; Item.N a; Item.N b ] in
  let dd = Item.ddo s in
  check_int "ddo dedups" 2 (List.length dd);
  check "ddo sorts" true
    (match dd with
    | [ Item.N x; Item.N y ] -> Node.equal x a && Node.equal y b
    | _ -> false);
  check_int "union" 2 (List.length (Item.union [ Item.N a ] [ Item.N b ]));
  check_int "except" 1
    (List.length (Item.except [ Item.N a; Item.N b ] [ Item.N b ]));
  check_int "intersect" 1
    (List.length (Item.intersect [ Item.N a; Item.N b ] [ Item.N b ]));
  check "atoms rejected" true
    (try
       ignore (Item.union [ Item.A (Atom.Int 1) ] []);
       false
     with Atom.Type_error _ -> true)

let test_set_equal () =
  let doc = sample_doc () in
  let a = find_elem doc "a" and b = find_elem doc "b" in
  check "order ignored" true
    (Item.set_equal [ Item.N a; Item.N b ] [ Item.N b; Item.N a ]);
  check "dupes ignored" true
    (Item.set_equal [ Item.N a; Item.N a ] [ Item.N a ]);
  check "paper example (1,a) s= (a,1,1)" true
    (Item.set_equal
       [ Item.A (Atom.Int 1); Item.A (Atom.Str "a") ]
       [ Item.A (Atom.Str "a"); Item.A (Atom.Int 1); Item.A (Atom.Int 1) ]);
  check "different sets" false
    (Item.set_equal [ Item.N a ] [ Item.N b ])

let test_effective_boolean () =
  let doc = sample_doc () in
  let a = find_elem doc "a" in
  check "empty false" false (Item.effective_boolean []);
  check "node true" true (Item.effective_boolean [ Item.N a ]);
  check "single false atom" false
    (Item.effective_boolean [ Item.A (Atom.Bool false) ]);
  check "multi-atom errors" true
    (try
       ignore
         (Item.effective_boolean [ Item.A (Atom.Int 1); Item.A (Atom.Int 2) ]);
       false
     with Atom.Type_error _ -> true)

let test_node_set () =
  let doc = sample_doc () in
  let a = find_elem doc "a" and b = find_elem doc "b" in
  let s = Node_set.of_nodes [ a; b; a ] in
  check_int "cardinal dedups" 2 (Node_set.cardinal s);
  check "mem" true (Node_set.mem a s);
  check "diff" true
    (Node_set.equal
       (Node_set.diff s (Node_set.of_nodes [ b ]))
       (Node_set.of_nodes [ a ]));
  check "subset" true (Node_set.subset (Node_set.of_nodes [ a ]) s)

(* ------------------------------------------------------------------ *)
(* XML parser / serializer                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_basic () =
  let doc =
    Xml_parser.parse_string
      {|<?xml version="1.0"?><r a="1"><x>hi &amp; &lt;bye&gt;</x><!--c--><y/></r>|}
  in
  let r = List.hd (Node.children doc) in
  check_str "root" "r" (Node.name r);
  let x = find_elem doc "x" in
  check_str "entities decoded" "hi & <bye>" (Node.string_value x)

let test_parse_cdata_charref () =
  let doc =
    Xml_parser.parse_string {|<r><![CDATA[a<b&c]]>&#65;&#x42;</r>|}
  in
  check_str "cdata + charrefs" "a<b&cAB"
    (Node.string_value (List.hd (Node.children doc)))

let test_parse_doctype_id () =
  let doc =
    Xml_parser.parse_string
      {|<!DOCTYPE curriculum [
          <!ELEMENT curriculum (course)*>
          <!ATTLIST course code ID #REQUIRED>
        ]>
        <curriculum><course code="c1"/></curriculum>|}
  in
  check "DTD ID attribute indexed" true
    (match Node.lookup_id doc "c1" with
    | Some n -> Node.name n = "course"
    | None -> false)

let test_parse_strip_whitespace () =
  let src = "<r>\n  <a/>\n  <b/>\n</r>" in
  let keep = Xml_parser.parse_string src in
  let strip = Xml_parser.parse_string ~strip_whitespace:true src in
  check_int "kept whitespace" 5
    (List.length (Node.children (List.hd (Node.children keep))));
  check_int "stripped whitespace" 2
    (List.length (Node.children (List.hd (Node.children strip))))

let test_parse_errors () =
  let fails s =
    try
      ignore (Xml_parser.parse_string s);
      false
    with Xml_parser.Parse_error _ -> true
  in
  check "mismatched tags" true (fails "<a><b></a></b>");
  check "unterminated" true (fails "<a>");
  check "junk after root" true (fails "<a/><b/>");
  check "bad entity" true (fails "<a>&nosuch;</a>")

let test_serializer_roundtrip () =
  let src = {|<r a="x&quot;y"><k>1 &lt; 2</k><e/><!--note--></r>|} in
  let doc = Xml_parser.parse_string src in
  let out = Serializer.to_string doc in
  let doc2 = Xml_parser.parse_string out in
  check "roundtrip deep-equal" true
    (Item.deep_equal
       [ Item.N (List.hd (Node.children doc)) ]
       [ Item.N (List.hd (Node.children doc2)) ])

let test_serializer_escapes () =
  check_str "text escape" "a&lt;b&gt;c&amp;d" (Serializer.escape_text "a<b>c&d");
  check_str "attr escape" "a&quot;b" (Serializer.escape_attr "a\"b")

let test_serializer_indent () =
  let doc =
    Xml_parser.parse_string ~strip_whitespace:true
      "<r><a><b>t</b></a><c/></r>"
  in
  let out = Serializer.to_string ~indent:true (List.hd (Node.children doc)) in
  check "indented output has newlines" true (String.contains out '\n');
  (* indented output still reparses to the same structure modulo
     whitespace *)
  let doc2 = Xml_parser.parse_string ~strip_whitespace:true out in
  check "indent roundtrip" true
    (Item.deep_equal
       [ Item.N (List.hd (Node.children doc)) ]
       [ Item.N (List.hd (Node.children doc2)) ])

let test_registry_file_fallback () =
  let reg = Fixq_xdm.Doc_registry.create () in
  let path = Filename.temp_file "fixq" ".xml" in
  let oc = open_out path in
  output_string oc "<r><a/></r>";
  close_out oc;
  (match Fixq_xdm.Doc_registry.find ~registry:reg path with
  | Some d ->
    check_int "loaded from disk" 1
      (List.length (Axis.step Axis.Descendant (Axis.Name "a") d))
  | None -> Alcotest.fail "file fallback did not load");
  (* second lookup hits the registry (same node) *)
  let d1 = Option.get (Fixq_xdm.Doc_registry.find ~registry:reg path) in
  let d2 = Option.get (Fixq_xdm.Doc_registry.find ~registry:reg path) in
  check "stable across lookups" true (Node.equal d1 d2);
  Sys.remove path

let test_allocated_monotonic () =
  let before = Node.allocated () in
  let _ = Node.text "x" in
  check "allocation counter advances" true (Node.allocated () > before)

let test_printers () =
  let doc = sample_doc () in
  let a = find_elem doc "a" in
  check "node pp mentions the name" true
    (let s = Format.asprintf "%a" Node.pp a in
     String.length s > 0);
  check "seq serialization separates items" true
    (Serializer.seq_to_string
       [ Item.A (Atom.Int 1); Item.A (Atom.Str "x") ]
    = "1 x");
  check "atoms escaped in seq output" true
    (Serializer.seq_to_string [ Item.A (Atom.Str "a<b") ] = "a&lt;b")

let test_doc_registry () =
  let reg = Fixq_xdm.Doc_registry.create () in
  let doc = sample_doc () in
  Fixq_xdm.Doc_registry.register ~registry:reg "u.xml" doc;
  check "find registered" true
    (match Fixq_xdm.Doc_registry.find ~registry:reg "u.xml" with
    | Some d -> Node.equal d doc
    | None -> false);
  check "missing" true
    (Fixq_xdm.Doc_registry.find ~registry:reg "missing.xml" = None);
  check_str "uri recorded" "u.xml" (Option.get (Node.uri doc))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random tree specs for property tests. *)
let spec_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "c"; "d" ] in
  sized
  @@ fix (fun self n ->
         if n <= 1 then map (fun s -> Node.T s) (oneofl [ "x"; "y"; "" ])
         else
           frequency
             [ (1, map (fun s -> Node.T s) (oneofl [ "x"; "y" ]));
               ( 3,
                 map2
                   (fun name kids -> Node.E (name, [], kids))
                   names
                   (list_size (int_bound 3) (self (n / 2))) ) ])

(* Serialization cannot distinguish adjacent or empty text nodes (they
   merge/vanish on reparse), so normalize the spec; also force an
   element at the root so serialized fragments re-parse. *)
let rec normalize_spec = function
  | Node.E (n, attrs, kids) ->
    let kids = List.map normalize_spec kids in
    let rec merge = function
      | Node.T "" :: rest -> merge rest
      | Node.T a :: Node.T b :: rest -> merge (Node.T (a ^ b) :: rest)
      | k :: rest -> k :: merge rest
      | [] -> []
    in
    Node.E (n, attrs, merge kids)
  | other -> other

let tree_gen =
  QCheck2.Gen.map
    (fun s ->
      let wrapped =
        match s with
        | Node.E _ -> s
        | other -> Node.E ("root", [], [ other ])
      in
      Node.of_spec (normalize_spec wrapped))
    spec_gen

let all_nodes doc =
  let out = ref [] in
  Node.iter_subtree (fun n -> out := n :: !out) doc;
  List.rev !out

let prop_serializer_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"serializer/parser roundtrip" tree_gen
    (fun doc ->
      let root = List.hd (Node.children doc) in
      let out = Serializer.to_string root in
      let doc2 = Xml_parser.parse_fragment out in
      Item.deep_equal [ Item.N root ] [ Item.N doc2 ])

let prop_doc_order_total =
  QCheck2.Test.make ~count:100 ~name:"document order is preorder" tree_gen
    (fun doc ->
      let ns = all_nodes doc in
      let sorted = List.sort Node.compare_doc_order ns in
      List.for_all2 Node.equal ns sorted)

let prop_axes_partition =
  QCheck2.Test.make ~count:100
    ~name:"self/anc/desc/following/preceding partition the tree" tree_gen
    (fun doc ->
      let ns = all_nodes doc in
      List.for_all
        (fun n ->
          let parts =
            [ [ n ];
              Axis.step Axis.Ancestor Axis.Kind_node n;
              Axis.step Axis.Descendant Axis.Kind_node n;
              Axis.step Axis.Following Axis.Kind_node n;
              Axis.step Axis.Preceding Axis.Kind_node n ]
          in
          let total = List.concat parts in
          List.length total = List.length ns
          && Node_set.equal (Node_set.of_nodes total) (Node_set.of_nodes ns))
        ns)

let prop_union_setops =
  QCheck2.Test.make ~count:100 ~name:"node-set algebra laws" tree_gen
    (fun doc ->
      let ns = all_nodes doc in
      let half1 = List.filteri (fun i _ -> i mod 2 = 0) ns in
      let half2 = List.filteri (fun i _ -> i mod 3 = 0) ns in
      let s1 = List.map Item.node half1 and s2 = List.map Item.node half2 in
      Item.set_equal (Item.union s1 s2) (Item.union s2 s1)
      && Item.set_equal
           (Item.except (Item.union s1 s2) s2)
           (Item.except s1 s2)
      && Item.set_equal (Item.intersect s1 s2) (Item.intersect s2 s1)
      && Item.set_equal
           (Item.union (Item.except s1 s2) (Item.intersect s1 s2))
           s1)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "xdm"
    [ ( "qname-atom",
        [ Alcotest.test_case "qname" `Quick test_qname;
          Alcotest.test_case "atom numerics" `Quick test_atom_numeric;
          Alcotest.test_case "atom booleans" `Quick test_atom_bool ] );
      ( "node",
        [ Alcotest.test_case "preorder ids" `Quick test_ids_preorder;
          Alcotest.test_case "attribute order" `Quick test_attribute_order;
          Alcotest.test_case "deep copy" `Quick test_deep_copy_fresh_ids;
          Alcotest.test_case "element constructor copies" `Quick
            test_element_constructor_copies;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "id index" `Quick test_id_index;
          Alcotest.test_case "subtree size" `Quick test_subtree_size ] );
      ( "axes",
        [ Alcotest.test_case "child/descendant" `Quick
            test_axis_child_descendant;
          Alcotest.test_case "reverse order" `Quick test_axis_reverse_order;
          Alcotest.test_case "following/preceding" `Quick
            test_axis_following_preceding;
          Alcotest.test_case "attribute axis" `Quick test_axis_attribute ] );
      ( "items",
        [ Alcotest.test_case "ddo and set ops" `Quick test_ddo_and_setops;
          Alcotest.test_case "set equality" `Quick test_set_equal;
          Alcotest.test_case "effective boolean" `Quick
            test_effective_boolean;
          Alcotest.test_case "node sets" `Quick test_node_set ] );
      ( "xml",
        [ Alcotest.test_case "basic parse" `Quick test_parse_basic;
          Alcotest.test_case "cdata + charrefs" `Quick
            test_parse_cdata_charref;
          Alcotest.test_case "DTD ID declarations" `Quick
            test_parse_doctype_id;
          Alcotest.test_case "whitespace stripping" `Quick
            test_parse_strip_whitespace;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_serializer_roundtrip;
          Alcotest.test_case "escapes" `Quick test_serializer_escapes;
          Alcotest.test_case "printers" `Quick test_printers;
          Alcotest.test_case "registry" `Quick test_doc_registry;
          Alcotest.test_case "serializer indent" `Quick
            test_serializer_indent;
          Alcotest.test_case "registry file fallback" `Quick
            test_registry_file_fallback;
          Alcotest.test_case "allocation counter" `Quick
            test_allocated_monotonic ] );
      ( "properties",
        qc
          [ prop_serializer_roundtrip;
            prop_doc_order_total;
            prop_axes_partition;
            prop_union_setops ] ) ]
