(: Difference against a set that does not mention $x: rejected by the
   plain Figure-5 check but accepted under `--stratified` (the paper's
   Section 6 refinement), where `$x/... except FIXED` is distributive. :)
with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse ($x/id(./prerequisites/pre_code)
         except doc("curriculum.xml")/curriculum/course[@code = "c9"])
