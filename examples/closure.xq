(: Transitive closure of course prerequisites — the paper's running
   example. Node-only seed and body: classified `terminates`, Figure 5
   accepts the body, so Delta and cluster scatter are both licensed. :)
with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse $x/id(./prerequisites/pre_code)
