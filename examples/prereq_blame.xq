(: A non-distributive body: `except` must see both sides at once, so
   Figure 5 blames it (FQ030) and the algebraic ∪-push blocks at the
   difference operator (FQ031). The hint rewrite repairs it — run
   `fixq lint --fix-hints examples/prereq_blame.xq`. :)
with $x seeded by doc("curriculum.xml")/curriculum/course
recurse ($x/id(./prerequisites/pre_code) except $x/self::course[@retired = "yes"])
