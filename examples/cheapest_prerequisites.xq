(: Recursive aggregate over the prerequisite closure: the tropical
   (min-cost) semiring annotates every transitively required course
   with the cheapest cumulative @cost of reaching it — Bellman-Ford
   over the derivation graph. The min semiring is p-stable, so the
   node set converges but annotations can keep improving for up to
   |nodes| extra rounds: classified `bounded` with an FQ044 info. :)
with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse $x/id(./prerequisites/pre_code)
accumulate by min(number(./@cost))
