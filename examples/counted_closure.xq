(: The counting semiring over the prerequisite closure: every derived
   course is annotated with its number of distinct derivation paths.
   Counting is NOT a stable semiring — on a cyclic curriculum the
   counts on the cycle grow forever even though the node set is long
   converged. Lint flags the site FQ043 (may-diverge) and `fixq serve`
   refuses the query unless the request carries an iteration or time
   budget. :)
with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse $x/id(./prerequisites/pre_code)
accumulate by count
