(: A declared function used from the recursion body. The call is
   linear in $x, so distributivity inference descends into the body
   and the whole fixed point stays Delta-eligible. :)
declare function local:step($s) { $s/id(./prerequisites/pre_code) };
with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse local:step($x)
