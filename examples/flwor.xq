(: Plain FLWOR over a document — no fixed point, nothing to classify;
   the linter only checks bindings and static references here. :)
for $c in doc("curriculum.xml")/curriculum/course
where count($c/prerequisites/pre_code) > 0
return $c/@code
