(: The Figure-10 bidder network with the max semiring over @rating:
   each reachable person is annotated with the best bottleneck rating
   over all referral chains from the seed (the widest path). Max is a
   stable semiring — the annotated fixpoint converges exactly when the
   plain one does, so the structural verdict is kept unchanged. :)
declare variable $doc := doc("auction.xml");

declare function bidder ($in as node()*) as node()*
{ for $id in $in/@id
  let $b := $doc//open_auction[seller/@person = $id]
            /bidder/personref
  return $doc//people/person[@id = $b/@person]
};

with $x seeded by $doc//people/person[@id = "person0"]
recurse bidder ($x)
accumulate by max(number(./@rating))
