module X = Fixq_xdm
let () =
  let doc = X.Xml_parser.parse_string ~uri:"d" "<root><a/><a/></root>" in
  let syn = X.Synopsis.build doc in
  let op = X.Patch.Insert { path = "/root"; position = X.Patch.Last; xml = "<b><c/></b>" } in
  let delta = X.Patch.apply doc op in
  let syn' = X.Synopsis.patched syn ~old_root:doc ~op ~delta in
  let fresh = X.Synopsis.build delta.X.Patch.new_root in
  Printf.printf "maintained child_names(root) = [%s]\n"
    (String.concat ";" (X.Synopsis.child_names syn' "root"));
  Printf.printf "fresh      child_names(root) = [%s]\n"
    (String.concat ";" (X.Synopsis.child_names fresh "root"));
  Printf.printf "maintained path_count(root/b) = %d, fresh = %d\n"
    (X.Synopsis.path_count syn' "root/b") (X.Synopsis.path_count fresh "root/b");
  Printf.printf "equal_counts maintained/fresh = %b\n"
    (X.Synopsis.equal_counts syn' fresh)
