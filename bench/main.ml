(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus the analytical artifacts (Table 1,
   Figure 9, Example 2.4, Section 4.1).

   Usage:
     dune exec bench/main.exe                    # everything (quick sizes)
     dune exec bench/main.exe -- table2 --paper  # paper-like sizes (slow)
     dune exec bench/main.exe -- table1|figure9|example24|section41|micro

   Absolute milliseconds are not comparable with the paper's 2007
   testbed; the reproduced *shape* is: Delta beats Naïve on both
   engines, the nodes-fed-back reduction factors, and the recursion
   depths. See EXPERIMENTS.md. *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Parser = Fixq_lang.Parser
module Stats = Fixq_lang.Stats
module Render = Fixq_algebra.Render
module Push = Fixq_algebra.Push
module W = Fixq_workloads

module Json = Fixq_service.Json

let printf = Printf.printf

(* --json OUT: machine-readable record of every measurement made during
   the run, for tracking the perf trajectory across PRs. *)
let json_rows : Json.t list ref = ref []

let record_json fields = json_rows := Json.Obj fields :: !json_rows

let write_json path =
  let oc = open_out path in
  output_string oc (Json.to_string (Json.List (List.rev !json_rows)));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Row configuration                                                   *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  query : string;
  setup : Doc_registry.t -> unit;
  paper : string;
      (** the paper's numbers for this row, quoted in the output *)
}

let bidder name scale paper =
  { name;
    query = W.Queries.bidder_network;
    setup =
      (fun registry ->
        ignore (W.Xmark.load ~registry { W.Xmark.default with W.Xmark.scale }));
    paper }

let curriculum name courses paper =
  { name;
    query = W.Queries.curriculum_check;
    setup =
      (fun registry ->
        ignore
          (W.Curriculum.load ~registry
             { W.Curriculum.default with W.Curriculum.courses }));
    paper }

let hospital name total paper =
  { name;
    query = W.Queries.hospital;
    setup =
      (fun registry ->
        ignore
          (W.Hospital.load ~registry
             { W.Hospital.default with W.Hospital.total }));
    paper }

let romeo =
  { name = "Romeo and Juliet";
    query = W.Queries.dialogs;
    setup =
      (fun registry -> ignore (W.Shakespeare.load ~registry W.Shakespeare.default));
    paper = "6795/1260 | 1150/818 | 37841/5638 | 33" }

let quick_rows =
  [ bidder "Bidder network (small)" 0.002
      "362/165 | 2307/1872 | 40254/9319 | 10";
    bidder "Bidder network (medium)" 0.004
      "5010/1995 | 15027/7284 | 683225/122532 | 16";
    bidder "Bidder network (large)" 0.008
      "40785/13805 | 123316/52436 | 5694390/961356 | 15";
    romeo;
    curriculum "Curriculum (medium)" 400 "183/135 | 1308/1040 | 12301/3044 | 18";
    curriculum "Curriculum (large)" 1600 "1466/646 | 3485/2176 | 127992/19780 | 35";
    hospital "Hospital (medium)" 20_000 "734/497 | 1301/1290 | 99381/50000 | 5" ]

let paper_rows =
  [ bidder "Bidder network (small)" 0.01
      "362/165 | 2307/1872 | 40254/9319 | 10";
    bidder "Bidder network (medium)" 0.02
      "5010/1995 | 15027/7284 | 683225/122532 | 16";
    romeo;
    curriculum "Curriculum (medium)" 800 "183/135 | 1308/1040 | 12301/3044 | 18";
    curriculum "Curriculum (large)" 4000 "1466/646 | 3485/2176 | 127992/19780 | 35";
    hospital "Hospital (medium)" 50_000 "734/497 | 1301/1290 | 99381/50000 | 5" ]

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

type measurement = {
  alg_naive_ms : float;
  alg_delta_ms : float;
  int_naive_ms : float;
  int_delta_ms : float;
  fed_naive : int;
  fed_delta : int;
  depth : int;
  agree : bool;
}

let measure_row row =
  (* One registry per row: all four configurations query the same
     document instance, so results are comparable by node identity and
     the per-tree encoding caches are shared. *)
  let registry = Doc_registry.create () in
  row.setup registry;
  let module Counters = Fixq_xdm.Counters in
  let run engine =
    let before = Counters.snapshot () in
    let r = Fixq.run ~registry ~engine row.query in
    (r, Counters.diff (Counters.snapshot ()) before)
  in
  let (an, kan) = run (Fixq.Algebra Fixq.Naive) in
  let (ad, kad) = run (Fixq.Algebra Fixq.Auto) in
  let (inn, kin) = run (Fixq.Interpreter Fixq.Naive) in
  let (ind, kid) = run (Fixq.Interpreter Fixq.Auto) in
  List.iter
    (fun (engine, r, k) ->
      record_json
        [ ("section", Json.Str "table2"); ("query", Json.Str row.name);
          ("engine", Json.Str engine); ("ms", Json.Num r.Fixq.wall_ms);
          ("iterations", Json.of_int r.Fixq.depth);
          ("nodes_fed", Json.of_int r.Fixq.nodes_fed);
          ("kernel_merges", Json.of_int k.Counters.merges);
          ("kernel_merged_items", Json.of_int k.Counters.merged_items);
          ("kernel_fallback_sorts", Json.of_int k.Counters.fallback_sorts);
          ("kernel_bitmap_tests", Json.of_int k.Counters.bitmap_tests);
          ("kernel_bitmap_hits", Json.of_int k.Counters.bitmap_hits);
          ("kernel_index_steps", Json.of_int k.Counters.index_steps);
          ("kernel_index_nodes", Json.of_int k.Counters.index_nodes);
          ("kernel_col_batches", Json.of_int k.Counters.col_batches);
          ("kernel_col_rows", Json.of_int k.Counters.col_rows);
          ("kernel_col_boxed_rows", Json.of_int k.Counters.col_boxed_rows) ])
    [ ("algebra-naive", an, kan); ("algebra-delta", ad, kad);
      ("interp-naive", inn, kin); ("interp-delta", ind, kid) ];
  { alg_naive_ms = an.Fixq.wall_ms;
    alg_delta_ms = ad.Fixq.wall_ms;
    int_naive_ms = inn.Fixq.wall_ms;
    int_delta_ms = ind.Fixq.wall_ms;
    fed_naive = inn.Fixq.nodes_fed;
    fed_delta = ind.Fixq.nodes_fed;
    depth = ind.Fixq.depth;
    agree =
      (* constructed results carry fresh node identities per run, so
         fall back to structural comparison *)
      (let same a b =
         Item.set_equal a.Fixq.result b.Fixq.result
         || Item.deep_equal a.Fixq.result b.Fixq.result
       in
       same an ad && same inn ind && same an inn) }

let ratio a b = if b > 0.0 then a /. b else Float.nan

let table2 rows =
  printf "== Table 2: Naïve vs Delta (times, nodes fed back, depth) ==\n";
  printf "   Algebra = relational µ/µ∆ (MonetDB/XQuery stand-in)\n";
  printf "   Interp  = tree-walking processor (Saxon stand-in)\n";
  printf "   paper rows quote: MonetDB n/d ms | Saxon n/d ms | fed n/d | depth\n\n";
  printf "%-26s | %21s | %21s | %19s | %5s | %s\n" "Query"
    "Algebra naïve/delta" "Interp naïve/delta" "Nodes fed n/d" "Depth" "ok";
  printf "%s\n" (String.make 118 '-');
  List.iter
    (fun row ->
      let m = measure_row row in
      printf
        "%-26s | %8.0f / %7.0f ms | %8.0f / %7.0f ms | %9d / %7d | %5d | %s\n%!"
        row.name m.alg_naive_ms m.alg_delta_ms m.int_naive_ms m.int_delta_ms
        m.fed_naive m.fed_delta m.depth
        (if m.agree then "yes" else "DISAGREE");
      printf
        "%-26s |   speedup ×%-9.2f |   speedup ×%-9.2f | reduction ×%-6.2f |\n"
        ""
        (ratio m.alg_naive_ms m.alg_delta_ms)
        (ratio m.int_naive_ms m.int_delta_ms)
        (ratio (float_of_int m.fed_naive) (float_of_int m.fed_delta));
      printf "%-26s |   paper: %s\n" "" row.paper)
    rows;
  printf "\n"

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let module Plan = Fixq_algebra.Plan in
  let module Axis = Fixq_xdm.Axis in
  printf "== Table 1: algebra dialect and the Push? column ==\n\n";
  let dummy = Plan.Lit_table ([ "iter"; "item" ], []) in
  let fs = { Plan.fun_result = "v"; fun_args = [] } in
  let agg = { Plan.agg_result = "n"; agg_input = None; agg_partition = None } in
  let num = { Plan.num_result = "r"; num_order = []; num_partition = None } in
  let fix = { Plan.fix_id = 0; seed = dummy; body = dummy } in
  let ops =
    [ ("π (project, rename)", Plan.Project ([], dummy));
      ("σ (select)", Plan.Select ("item", dummy));
      ("⋈ (join)", Plan.Join ({ Plan.equi = []; theta = [] }, dummy, dummy));
      ("× (cartesian product)", Plan.Cross (dummy, dummy));
      ("δ (duplicate elimination)", Plan.Distinct dummy);
      ("∪ (union)", Plan.Union (dummy, dummy));
      ("\\ (difference)", Plan.Difference (dummy, dummy));
      ("count (aggregate)", Plan.Aggr (Plan.A_count, agg, dummy));
      ("⊚ (arith/comparison)", Plan.Fun (Plan.P_not, fs, dummy));
      ("# (row tagging)", Plan.Tag ("t", dummy));
      ("rho (row numbering)", Plan.Row_num (num, dummy));
      ("step join", Plan.Step (Axis.Child, Axis.Kind_node, "item", dummy));
      ("epsilon (node constructor)", Plan.Construct ("element", dummy));
      ("mu / mu-delta (fixpoints)", Plan.Mu fix) ]
  in
  printf "%-30s | Push?\n%s\n" "Operator" (String.make 40 '-');
  List.iter
    (fun (name, op) ->
      printf "%-30s | %s\n" name (if Plan.push_through op then "yes" else "no"))
    ops;
  printf "\n"

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let load_small_curriculum registry =
  ignore
    (W.Curriculum.load ~registry
       { W.Curriculum.default with W.Curriculum.courses = 12 })

let show_plan title query =
  let registry = Doc_registry.create () in
  load_small_curriculum registry;
  printf "-- %s --\n" title;
  match Fixq.plan_of_first_ifp ~registry (Parser.parse_program query) with
  | None -> printf "   (body not compilable)\n\n"
  | Some (fix_id, plan) ->
    print_string (Render.to_ascii plan);
    let o = Push.check ~fix_id plan in
    printf "%s\n\n" (Format.asprintf "   %a" Push.pp_outcome o)

let figure9 () =
  printf "== Figure 9: recursion-body plans and the ∪ push-up ==\n\n";
  show_plan "e_rec of Q1: $x/id(./prerequisites/pre_code)" W.Queries.q1;
  show_plan "e_rec of Q2: if (count($x/self::a)) then $x/* else ()"
    W.Queries.q2

(* ------------------------------------------------------------------ *)
(* Example 2.4                                                         *)
(* ------------------------------------------------------------------ *)

let example24 () =
  printf "== Example 2.4: Naïve vs Delta iteration table ==\n\n";
  let module Eval = Fixq_lang.Eval in
  let module Fixpoint = Fixq_lang.Fixpoint in
  let ev = Eval.create () in
  let seed =
    Eval.eval_expr ev (Parser.parse_expr {|(<a/>,<b><c><d/></c></b>)|})
  in
  let body_expr =
    Parser.parse_expr {|if (count($x/self::a)) then $x/* else ()|}
  in
  let body input = Eval.eval_expr ev ~vars:[ ("x", input) ] body_expr in
  let label items =
    String.concat ","
      (List.filter_map
         (function Item.N n -> Some (Node.name n) | Item.A _ -> None)
         items)
  in
  let show name algo =
    let stats = Stats.create () in
    let result = algo ~stats in
    printf "%s: result (%s)\n" name (label result);
    List.iteri
      (fun i it ->
        printf "  iteration %d: fed %d, produced %d, result size %d\n" i
          it.Stats.fed it.Stats.produced it.Stats.result_size)
      (Stats.last_run stats)
  in
  printf "(iteration 0 starts from the seed itself, as in the paper's table)\n";
  show "Naïve" (fun ~stats ->
      Fixpoint.naive ~include_seed:true ~stats ~body ~seed ());
  show "Delta" (fun ~stats ->
      Fixpoint.delta ~include_seed:true ~stats ~body ~seed ());
  printf
    "\nNaïve finds d (a stays in the fed-back input, so $x/* keeps digging);\n\
     Delta misses d: the body is not distributive (count($x/…)).\n\n"

(* ------------------------------------------------------------------ *)
(* Section 4.1                                                         *)
(* ------------------------------------------------------------------ *)

let section41 () =
  printf "== Section 4.1: syntactic vs algebraic distributivity ==\n\n";
  let registry = Doc_registry.create () in
  load_small_curriculum registry;
  let verdicts name src =
    match
      Fixq.distributivity_verdicts ~registry (Parser.parse_program src)
    with
    | Some (syn, alg) ->
      printf "%-28s syntactic: %-5s algebraic: %s\n" name
        (if syn then "yes" else "no")
        (match alg with
        | Some true -> "yes"
        | Some false -> "no"
        | None -> "n/a")
    | None -> printf "%-28s (no IFP)\n" name
  in
  verdicts "Q1" W.Queries.q1;
  verdicts "Q1 variant (id($x/...))" W.Queries.q1_variant;
  verdicts "Q1 unfolded (where ... = )" W.Queries.q1_unfolded;
  verdicts "Q2" W.Queries.q2;
  printf "\nBehaviour on the unfolded variant:\n";
  let ri =
    Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) W.Queries.q1_unfolded
  in
  let ra =
    Fixq.run ~registry ~engine:(Fixq.Algebra Fixq.Auto) W.Queries.q1_unfolded
  in
  printf "  interpreter (syntactic check): delta=%b, %d nodes fed\n"
    (ri.Fixq.used_delta = Some true)
    ri.Fixq.nodes_fed;
  printf "  algebra     (∪ push-up)      : delta=%b, %d nodes fed\n"
    (ra.Fixq.used_delta = Some true)
    ra.Fixq.nodes_fed;
  printf "  results agree: %b\n\n"
    (Item.set_equal ri.Fixq.result ra.Fixq.result)

(* ------------------------------------------------------------------ *)
(* Section 6 ablation: the stratified-difference refinement            *)
(* ------------------------------------------------------------------ *)

let section6 () =
  printf "== Section 6 ablation: stratified difference (x except R) ==\n\n";
  let registry = Doc_registry.create () in
  ignore
    (W.Curriculum.load ~registry
       { W.Curriculum.default with W.Curriculum.courses = 1200 });
  (* transitive prerequisites that are NOT already-passed courses *)
  let q =
    {|let $taken := doc("curriculum.xml")/curriculum/course[@code = "c2"]
      return
        for $c in doc("curriculum.xml")/curriculum/course
        where exists($c intersect
                     (with $x seeded by $c
                      recurse ($x/id(./prerequisites/pre_code) except $taken)))
        return $c|}
  in
  let run ~stratified =
    Fixq.run ~registry ~stratified ~engine:(Fixq.Interpreter Fixq.Auto) q
  in
  let plain = run ~stratified:false in
  let strat = run ~stratified:true in
  printf "  Figure 5 rules only : delta=%b  %7.1f ms  %7d nodes fed\n"
    (plain.Fixq.used_delta = Some true)
    plain.Fixq.wall_ms plain.Fixq.nodes_fed;
  printf "  + stratified rule   : delta=%b  %7.1f ms  %7d nodes fed\n"
    (strat.Fixq.used_delta = Some true)
    strat.Fixq.wall_ms strat.Fixq.nodes_fed;
  printf "  results agree: %b\n\n"
    (Item.set_equal plain.Fixq.result strat.Fixq.result)

(* ------------------------------------------------------------------ *)
(* Section 7 ablation: divide-and-conquer (parallel Delta)             *)
(* ------------------------------------------------------------------ *)

let section7 () =
  printf
    "== Section 7 ablation: parallel Delta (divide-and-conquer over ∆) ==\n\n";
  let module Eval = Fixq_lang.Eval in
  let module Fixpoint = Fixq_lang.Fixpoint in
  let registry = Doc_registry.create () in
  ignore (W.Xmark.load ~registry { W.Xmark.default with W.Xmark.scale = 0.02 });
  (* the bidder-network payload: expensive per node (auction scans),
     read-only — exactly the shape divide-and-conquer pays off for *)
  let ev = Eval.create ~registry () in
  Eval.load_prolog ev
    (Parser.parse_program
       {|declare variable $doc := doc("auction.xml");
         declare function bidder ($in as node()*) as node()*
         { for $id in $in/@id
           let $b := $doc//open_auction[seller/@person = $id]/bidder/personref
           return $doc//people/person[@id = $b/@person]
         };
         0|});
  let body_expr = Parser.parse_expr "bidder($x)" in
  let body input =
    Eval.eval_expr ev ~vars:[ ("x", input) ] body_expr
  in
  let seed =
    Eval.eval_expr ev
      (Parser.parse_expr {|(doc("auction.xml")//people/person)[position() <= 100]|})
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let stats = Stats.create () in
  let (seq, seq_ms) =
    time (fun () -> Fixpoint.delta ~stats ~body ~seed ())
  in
  printf "  sequential Delta       : %8.1f ms (%d nodes)\n" seq_ms
    (List.length seq);
  List.iter
    (fun domains ->
      let (par, par_ms) =
        time (fun () ->
            Fixpoint.delta_parallel ~domains ~chunk_threshold:8 ~stats ~body
              ~seed ())
      in
      printf "  parallel Delta (%d dom) : %8.1f ms  ×%.2f  agree=%b\n"
        domains par_ms (seq_ms /. par_ms)
        (Item.set_equal seq par))
    [ 2; 4 ];
  printf
    "\n  Note: a negative result on this engine. The split is sound\n\
    \  (distributivity is exactly the licence to divide ∆), but the\n\
    \  interpreter's list-allocating payloads are GC-bound: OCaml\n\
    \  domains synchronize on minor collections, so added domains buy\n\
    \  sync overhead, not throughput. A compute-bound or off-heap\n\
    \  payload (the paper imagines distributed back-ends) is where the\n\
    \  divide-and-conquer reading pays.\n\n"

(* ------------------------------------------------------------------ *)
(* Cluster scaling                                                     *)
(* ------------------------------------------------------------------ *)

(* The multi-process counterpart of section7: scatter-gather an XMark
   descendant closure across 1, 2, 4 worker processes (replication =
   worker count, so every worker serves a seed slice). Process
   isolation sidesteps the shared-heap GC wall that sinks the
   domains-based split — each worker collects privately. *)
let cluster_bench () =
  printf "== Cluster scaling: scatter-gather across worker processes ==\n\n";
  let module Cluster = Fixq_cluster.Cluster in
  let module Coordinator = Fixq_cluster.Coordinator in
  let bin =
    let next_to_me =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/fixq_cli.exe"
    in
    if Sys.file_exists next_to_me then Some next_to_me else None
  in
  match bin with
  | None ->
    printf "  (skipped: bin/fixq_cli.exe not built next to bench/main.exe)\n\n"
  | Some bin ->
    let load =
      {|{"op":"load-doc","uri":"x.xml","generate":"xmark","size":0.05,"seed":42}|}
    in
    let run_line =
      {|{"op":"run","query":"with $x seeded by doc(\"x.xml\")//person recurse $x/*","cache":false}|}
    in
    List.iter
      (fun workers ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "fixq-bench-%d-%dw" (Unix.getpid ()) workers)
        in
        let command ~name:_ ~socket =
          [| bin; "serve"; "--socket"; socket; "--workers"; "4" |]
        in
        let config =
          { Coordinator.default_config with replication = workers }
        in
        match Cluster.launch ~dir ~count:workers ~command ~config () with
        | exception Failure msg ->
          printf "  %d workers: launch failed (%s)\n" workers msg
        | cluster ->
          let handle = Cluster.handle_line cluster in
          ignore (handle load);
          ignore (handle run_line) (* warm the prepared caches *);
          let best = ref infinity in
          let result_chars = ref 0 in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            let (resp, _) = handle run_line in
            best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1000.);
            result_chars :=
              String.length
                (Option.value ~default:""
                   (Json.str_opt (Json.member "result" (Json.parse resp))))
          done;
          printf "  %d worker%s: %8.1f ms  (%d result chars)\n" workers
            (if workers = 1 then " " else "s")
            !best !result_chars;
          record_json
            [ ("section", Json.Str "cluster");
              ("workers", Json.of_int workers); ("ms", Json.Num !best);
              ("result_chars", Json.of_int !result_chars) ];
          Cluster.shutdown cluster)
      [ 1; 2; 4 ];
    printf
      "\n  1 worker routes whole (scatter needs two live replicas); 2 and\n\
      \  4 split the seed into that many residue classes per Theorem 3.2.\n\
      \  Equal result_chars across rows is the parity check; at smoke\n\
      \  sizes socket round-trips dominate, so expect speedups only on\n\
      \  documents large enough to amortize the gather.\n\n"

(* ------------------------------------------------------------------ *)
(* IVM: cached query after a small edit vs full recompute              *)
(* ------------------------------------------------------------------ *)

(* The differential-maintenance headline: adopt an eligible fixpoint
   into the IVM engine (first run), apply a 1-node patch-doc insert
   (which maintains the cached entry in place from the edit frontier),
   and serve the query again from the cache — measured against a
   cache-bypassing full recompute on the patched document. Byte
   equality of the two results is the soundness check; the wall-clock
   gap is the O(|∆|)-vs-O(run) claim. *)
let ivm_bench () =
  printf "== IVM: cached query after a 1-node edit vs full recompute ==\n\n";
  let module Server = Fixq_service.Server in
  let query =
    "with $x seeded by doc(\"auction.xml\")/site recurse \
     $x/descendant-or-self::*/bidder"
  in
  let run_line =
    Json.to_string
      (Json.Obj [ ("op", Json.Str "run"); ("query", Json.Str query) ])
  in
  let nocache_line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "run"); ("query", Json.Str query);
           ("cache", Json.Bool false) ])
  in
  let patch_line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "patch-doc"); ("uri", Json.Str "auction.xml");
           ("action", Json.Str "insert"); ("path", Json.Str "/site/people");
           ("xml", Json.Str "<person><name>Edit Probe</name></person>") ])
  in
  let member_str name resp =
    Option.value ~default:"" (Json.str_opt (Json.member name (Json.parse resp)))
  in
  let member_int name resp =
    Option.value ~default:(-1) (Json.int_opt (Json.member name (Json.parse resp)))
  in
  List.iter
    (fun (label, scale) ->
      let server = Server.create () in
      let send line = fst (Server.handle_line server line) in
      ignore
        (send
           (Printf.sprintf
              {|{"op":"load-doc","uri":"auction.xml","generate":"xmark","size":%g,"seed":42}|}
              scale));
      ignore (send run_line) (* populate + adopt *);
      (* each round is a fresh 1-node edit. The edit itself (patch-doc,
         where differential maintenance runs) is timed separately; the
         compared quantity is what serving the query costs AFTER the
         edit — a maintained cache hit here, a full recompute without
         IVM (cache:false on the same patched document). Min of 3
         rounds apiece. *)
      let patch_ms = ref infinity in
      let hit_ms = ref infinity and recompute_ms = ref infinity in
      let maintained_entries = ref 0 and cache_status = ref "" in
      let hit_result = ref "" and fresh_result = ref "" in
      for _ = 1 to 3 do
        let t0 = Unix.gettimeofday () in
        let patch_resp = send patch_line in
        patch_ms :=
          Float.min !patch_ms ((Unix.gettimeofday () -. t0) *. 1000.);
        let t1 = Unix.gettimeofday () in
        let hit_resp = send run_line in
        hit_ms := Float.min !hit_ms ((Unix.gettimeofday () -. t1) *. 1000.);
        maintained_entries := member_int "maintained" patch_resp;
        cache_status := member_str "result_cache" hit_resp;
        hit_result := member_str "result" hit_resp;
        let t2 = Unix.gettimeofday () in
        let fresh_resp = send nocache_line in
        recompute_ms :=
          Float.min !recompute_ms ((Unix.gettimeofday () -. t2) *. 1000.);
        fresh_result := member_str "result" fresh_resp
      done;
      let byte_equal = !hit_result = !fresh_result in
      let speedup = !recompute_ms /. Float.max !hit_ms 1e-9 in
      printf
        "  %-14s patch %6.2f ms   cached %6.3f ms   recompute %8.2f ms   \
         %5.1fx   %s, cache %s, %d maintained\n"
        label !patch_ms !hit_ms !recompute_ms speedup
        (if byte_equal then "bytes equal" else "BYTES DIFFER")
        !cache_status !maintained_entries;
      record_json
        [ ("section", Json.Str "ivm"); ("doc", Json.Str label);
          ("scale", Json.Num scale);
          ("patch_ms", Json.Num !patch_ms);
          ("maintained_ms", Json.Num !hit_ms);
          ("recompute_ms", Json.Num !recompute_ms);
          ("speedup", Json.Num speedup);
          ("maintained_entries", Json.of_int !maintained_entries);
          ("result_cache", Json.Str !cache_status);
          ("byte_equal", Json.Bool byte_equal) ])
    [ ("bidder-small", 0.004); ("bidder-medium", 0.01);
      ("bidder-large", 0.024) ];
  printf
    "\n  patch = the edit itself, including differential maintenance of\n\
    \  every eligible cached entry (paid once per edit, amortized over\n\
    \  all cached queries); cached = serving the query after the edit\n\
    \  from the maintained cache — without IVM the same request would\n\
    \  cost the recompute column. Byte equality is asserted per row.\n\n"

(* ------------------------------------------------------------------ *)
(* Recovery: snapshot + tail vs full-history replay                    *)
(* ------------------------------------------------------------------ *)

(* Durability headline: after a long patch history, how fast does state
   come back? The cold-start row starts a stateful server over the same
   state directory twice — before any snapshot (full WAL replay:
   regenerate the document, re-apply every patch) and after one (decode
   the materialized registry, replay the short tail). The respawn row
   is the cluster-side analogue: replaying a worker's recorded line
   history with compaction off (every line re-sent) vs on (one
   materialized load-doc). Byte equality against the pre-crash answer
   is asserted per row. *)
let recovery_bench () =
  printf "== Recovery: snapshot + tail vs full-history replay ==\n\n";
  let module Server = Fixq_service.Server in
  let module Coordinator = Fixq_cluster.Coordinator in
  let member_str name resp =
    Option.value ~default:""
      (Json.str_opt (Json.member name (Json.parse resp)))
  in
  (* per-row history length: re-applying a patch costs O(doc), so a few
     hundred ops already make full replay dwarf the snapshot's one-time
     O(doc) decode — and keep the bench itself quick *)
  let cold_patches = 500 in
  let respawn_patches = 200 in
  let load =
    {|{"op":"load-doc","uri":"auction.xml","generate":"xmark","size":0.024,"seed":42}|}
  in
  let patch =
    {|{"op":"patch-doc","uri":"auction.xml","action":"insert","path":"/site","xml":"<chaos/>"}|}
  in
  let query =
    "with $x seeded by doc(\"auction.xml\")/site recurse \
     $x/descendant-or-self::*/bidder"
  in
  let nocache_line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "run"); ("query", Json.Str query);
           ("cache", Json.Bool false) ])
  in
  let report case patches replay_ms snapshot_ms byte_equal =
    let speedup = replay_ms /. Float.max snapshot_ms 1e-9 in
    printf
      "  %-10s  full replay %8.1f ms   snapshot+tail %8.1f ms   %5.1fx   %s\n"
      case replay_ms snapshot_ms speedup
      (if byte_equal then "bytes equal" else "BYTES DIFFER");
    record_json
      [ ("section", Json.Str "recovery"); ("case", Json.Str case);
        ("patches", Json.of_int patches);
        ("replay_ms", Json.Num replay_ms);
        ("snapshot_ms", Json.Num snapshot_ms);
        ("speedup", Json.Num speedup);
        ("byte_equal", Json.Bool byte_equal) ]
  in

  (* serve --state-dir cold start *)
  let dir =
    let d = Filename.temp_file "fixq-recovery" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  (* threshold 0 disables the op-count snapshot trigger: the only
     snapshot in this row is the explicit one between the two cold
     starts, so cold start #1 really replays the whole history *)
  let mk () =
    Server.create
      ~config:
        { Server.default_config with
          state_dir = Some dir; snapshot_threshold = 0 }
      ()
  in
  let send s line = fst (Server.handle_line s line) in
  let a = mk () in
  ignore (send a load);
  for _ = 1 to cold_patches do
    ignore (send a patch)
  done;
  let expected = member_str "result" (send a nocache_line) in
  (* crash (no shutdown): cold start #1 replays the whole WAL —
     regenerate the document, re-apply every patch. Recovery is
     read-only until the next accepted op, so cold starts can be
     repeated over the same directory; min of 3 damps GC noise. *)
  let cold_start () =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let s = mk () in
    ((Unix.gettimeofday () -. t0) *. 1000., s)
  in
  let min_of_3 () =
    let best_ms = ref infinity and last = ref None in
    for _ = 1 to 3 do
      let (ms, s) = cold_start () in
      if ms < !best_ms then best_ms := ms;
      last := Some s
    done;
    (!best_ms, Option.get !last)
  in
  let (replay_ms, b) = min_of_3 () in
  let replay_equal = member_str "result" (send b nocache_line) = expected in
  (* snapshot, keep a short tail, cold start #2 decodes the
     materialized registry and replays five ops *)
  ignore (send b {|{"op":"snapshot"}|});
  for _ = 1 to 5 do
    ignore (send b patch)
  done;
  let expected2 = member_str "result" (send b nocache_line) in
  let (snapshot_ms, c) = min_of_3 () in
  let snapshot_equal =
    member_str "result" (send c nocache_line) = expected2
  in
  report "cold-start" cold_patches replay_ms snapshot_ms
    (replay_equal && snapshot_equal);
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());

  (* coordinator respawn replay, compaction off vs on *)
  let respawn_ms compact_patches =
    let servers =
      ref [ ("w0", Server.create ()); ("w1", Server.create ()) ]
    in
    let backend =
      { Coordinator.workers = [ "w0"; "w1" ];
        send =
          (fun name ~timeout_ms:_ line ->
            match List.assoc_opt name !servers with
            | Some s -> Ok (fst (Server.handle_line s line))
            | None -> Error "unknown worker");
        info = (fun _ -> []);
        restarts = (fun () -> 0);
        stop = ignore;
        add_worker = (fun () -> Error "fixed fleet");
        retire_worker = ignore;
        kill_worker = ignore }
    in
    let coord =
      Coordinator.create
        ~config:
          { Coordinator.default_config with
            replication = 2; compact_patches }
        backend
    in
    let chandle line = fst (Coordinator.handle_line coord line) in
    ignore (chandle load);
    for _ = 1 to respawn_patches do
      ignore (chandle patch)
    done;
    let expected = member_str "result" (chandle nocache_line) in
    (* kill w1: replace it with a fresh empty process, time the replay *)
    servers := ("w1", Server.create ()) :: List.remove_assoc "w1" !servers;
    let t0 = Unix.gettimeofday () in
    Coordinator.on_worker_respawn coord "w1";
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    (ms, member_str "result" (chandle nocache_line) = expected)
  in
  let (respawn_replay_ms, eq_off) = respawn_ms 0 in
  let (respawn_compact_ms, eq_on) = respawn_ms 16 in
  report "respawn" respawn_patches respawn_replay_ms respawn_compact_ms
    (eq_off && eq_on);
  printf
    "\n  cold-start = Server.create over the same --state-dir (recovery\n\
    \  runs inside create): full WAL replay vs decoding the materialized\n\
    \  snapshot plus a 5-op tail. respawn = Coordinator.on_worker_respawn\n\
    \  replaying a worker's doc history into a fresh process, full line\n\
    \  history vs one compacted load-doc.\n\n"

(* ------------------------------------------------------------------ *)
(* Accumulator scaling: per-round cost vs |res|                        *)
(* ------------------------------------------------------------------ *)

(* A chain document makes the recursion advance exactly one node per
   round for thousands of rounds: ∆ stays 1 while the accumulated
   result grows to |chain|. If per-round accumulation cost depended on
   |res| — the old [except]/[union]-over-everything loop re-sorted the
   whole result each round — late rounds would be measurably slower
   than early ones; with the run-based accumulator they stay flat. *)
let accum () =
  printf "== Accumulator scaling: round cost as |res| grows ==\n\n";
  let module Eval = Fixq_lang.Eval in
  let module Fixpoint = Fixq_lang.Fixpoint in
  let links = 4000 in
  let registry = Doc_registry.create () in
  let doc =
    let buf = Buffer.create (links * 28) in
    Buffer.add_string buf "<chain>";
    for i = 1 to links do
      Buffer.add_string buf
        (Printf.sprintf {|<n id="p%d" next="p%d"/>|} i (i + 1))
    done;
    Buffer.add_string buf "</chain>";
    Fixq_xdm.Xml_parser.parse_string ~uri:"chain.xml" (Buffer.contents buf)
  in
  Node.register_id_attribute doc "id";
  Doc_registry.register ~registry "chain.xml" doc;
  let ev = Eval.create ~registry () in
  let body_expr = Parser.parse_expr "$x/id(@next)" in
  let body input = Eval.eval_expr ev ~vars:[ ("x", input) ] body_expr in
  let seed =
    Eval.eval_expr ev (Parser.parse_expr {|doc("chain.xml")/chain/n[@id = "p1"]|})
  in
  let stats = Stats.create () in
  let result = Fixpoint.delta ~stats ~body ~seed () in
  let rounds = Array.of_list (Stats.last_run stats) in
  let n = Array.length rounds in
  let window = max 50 (n / 8) in
  let avg lo hi =
    let s = ref 0.0 in
    for i = lo to hi do
      s := !s +. rounds.(i).Stats.round_ms
    done;
    !s /. float_of_int (hi - lo + 1)
  in
  (* skip the first [window] rounds (JIT-less, but caches/GC warm up)
     and the final empty round *)
  let early = avg window (min (n - 1) ((2 * window) - 1)) in
  let late = avg (max 0 (n - 1 - (2 * window))) (n - 1 - window) in
  let ratio = if early > 0.0 then late /. early else Float.nan in
  let k = Stats.run_kernel_totals stats in
  printf "  chain of %d nodes, ∆ = 1 node/round, %d rounds\n" links n;
  printf "  result size %d, early rounds avg %.4f ms, late rounds avg %.4f ms\n"
    (List.length result) early late;
  printf "  late/early ratio ×%.2f (%s)\n" ratio
    (if ratio < 2.0 then "flat: accumulation cost independent of |res|"
     else "NOT FLAT: round cost grows with the accumulated result");
  printf "  kernel: %d bitmap tests (%d hits), %d merges, %d fallback sorts\n\n"
    k.Fixq_xdm.Counters.bitmap_tests k.Fixq_xdm.Counters.bitmap_hits
    k.Fixq_xdm.Counters.merges k.Fixq_xdm.Counters.fallback_sorts;
  record_json
    [ ("section", Json.Str "accum"); ("links", Json.of_int links);
      ("rounds", Json.of_int n);
      ("result_size", Json.of_int (List.length result));
      ("early_ms_per_round", Json.Num early);
      ("late_ms_per_round", Json.Num late); ("late_over_early", Json.Num ratio);
      ("kernel_bitmap_tests", Json.of_int k.Fixq_xdm.Counters.bitmap_tests);
      ("kernel_bitmap_hits", Json.of_int k.Fixq_xdm.Counters.bitmap_hits);
      ("kernel_merges", Json.of_int k.Fixq_xdm.Counters.merges);
      ("kernel_fallback_sorts",
       Json.of_int k.Fixq_xdm.Counters.fallback_sorts) ]

(* ------------------------------------------------------------------ *)
(* Columnar executor + SQL:1999 backend                                *)
(* ------------------------------------------------------------------ *)

(* The vectorized batch kernels under the algebra engine, per workload
   family: wall-clock against the row-at-a-time interpreter, the batch
   counters (batches executed, rows moved, rows that crossed the boxed
   [Value.t] boundary — the vectorization payoff is a low
   boxed/total ratio), and — where the body renders to the Table-1
   SQL:1999 dialect — the [WITH RECURSIVE] backend's wall-clock on the
   same document with a result-parity check. *)
let columnar_bench () =
  printf "== Columnar executor (batch kernels, SQL:1999 backend) ==\n\n";
  let module Counters = Fixq_xdm.Counters in
  let families =
    [ ("curriculum-q1", W.Queries.q1,
       fun registry ->
         ignore
           (W.Curriculum.load ~registry
              { W.Curriculum.default with W.Curriculum.courses = 400 }));
      ("curriculum-check", W.Queries.curriculum_check,
       fun registry ->
         ignore
           (W.Curriculum.load ~registry
              { W.Curriculum.default with W.Curriculum.courses = 400 }));
      ("bidder", W.Queries.bidder_network,
       fun registry ->
         ignore
           (W.Xmark.load ~registry
              { W.Xmark.default with W.Xmark.scale = 0.004 }));
      ("dialogs", W.Queries.dialogs,
       fun registry ->
         ignore (W.Shakespeare.load ~registry W.Shakespeare.default));
      ("hospital", W.Queries.hospital,
       fun registry ->
         ignore
           (W.Hospital.load ~registry
              { W.Hospital.default with W.Hospital.total = 20_000 })) ]
  in
  printf "%-18s | %9s | %9s | %9s | %8s | %11s | %6s\n" "Family" "interp ms"
    "column ms" "sql ms" "batches" "rows(boxed)" "ok";
  printf "%s\n" (String.make 84 '-');
  List.iter
    (fun (name, query, setup) ->
      let registry = Doc_registry.create () in
      setup registry;
      let run engine =
        let before = Counters.snapshot () in
        let r = Fixq.run ~registry ~engine query in
        (r, Counters.diff (Counters.snapshot ()) before)
      in
      let (interp, _) = run (Fixq.Interpreter Fixq.Auto) in
      let (alg, k) = run (Fixq.Algebra Fixq.Auto) in
      let renderable =
        match
          Fixq.sql_of_first_ifp ~registry (Parser.parse_program query)
        with
        | Some (Ok _) -> true
        | _ -> false
      in
      let sql = if renderable then Some (run (Fixq.Sql Fixq.Auto)) else None in
      let same a b =
        Item.set_equal a.Fixq.result b.Fixq.result
        || Item.deep_equal a.Fixq.result b.Fixq.result
      in
      let agree =
        same interp alg
        && match sql with Some (s, _) -> same interp s | None -> true
      in
      printf "%-18s | %9.1f | %9.1f | %9s | %8d | %5d(%4d)k | %6s\n%!" name
        interp.Fixq.wall_ms alg.Fixq.wall_ms
        (match sql with
        | Some (s, _) -> Printf.sprintf "%.1f" s.Fixq.wall_ms
        | None -> "—")
        k.Counters.col_batches
        (k.Counters.col_rows / 1000)
        (k.Counters.col_boxed_rows / 1000)
        (if agree then "yes" else "NO");
      record_json
        [ ("section", Json.Str "columnar"); ("family", Json.Str name);
          ("interp_ms", Json.Num interp.Fixq.wall_ms);
          ("algebra_ms", Json.Num alg.Fixq.wall_ms);
          ("sql_ms",
           match sql with
           | Some (s, _) -> Json.Num s.Fixq.wall_ms
           | None -> Json.Null);
          ("sql_renderable", Json.Bool renderable);
          ("col_batches", Json.of_int k.Counters.col_batches);
          ("col_rows", Json.of_int k.Counters.col_rows);
          ("col_boxed_rows", Json.of_int k.Counters.col_boxed_rows);
          ("agree", Json.Bool agree) ])
    families;
  printf "\n"

(* ------------------------------------------------------------------ *)
(* Static cost analyzer: calibration and --engine auto                 *)
(* ------------------------------------------------------------------ *)

(* Per workload family: the analyzer's per-engine estimates next to
   measured wall-clock on every engine, the certified round bound next
   to the actual recursion depth (it must never be exceeded), and the
   auto pick next to the worst fixed engine (it must never be slower,
   modulo measurement noise). *)
let cost_bench () =
  printf "== Static cost analyzer: estimates vs measurements ==\n\n";
  let module E = Fixq_cost.Estimate in
  let families =
    [ ("curriculum-q1", W.Queries.q1,
       fun registry ->
         ignore
           (W.Curriculum.load ~registry
              { W.Curriculum.default with W.Curriculum.courses = 400 }));
      ("curriculum-check", W.Queries.curriculum_check,
       fun registry ->
         ignore
           (W.Curriculum.load ~registry
              { W.Curriculum.default with W.Curriculum.courses = 400 }));
      ("bidder", W.Queries.bidder_network,
       fun registry ->
         ignore
           (W.Xmark.load ~registry
              { W.Xmark.default with W.Xmark.scale = 0.004 }));
      ("dialogs", W.Queries.dialogs,
       fun registry ->
         ignore (W.Shakespeare.load ~registry W.Shakespeare.default));
      ("hospital", W.Queries.hospital,
       fun registry ->
         ignore
           (W.Hospital.load ~registry
              { W.Hospital.default with W.Hospital.total = 20_000 })) ]
  in
  let analyze registry query =
    let p = Parser.parse_program query in
    let no_ifp = Fixq.count_ifps p = 0 in
    let compiled =
      if no_ifp then None
      else
        Some
          (match Fixq.plan_of_first_ifp ~registry p with
          | Some _ -> true
          | None -> false
          | exception _ -> false)
    in
    let sql =
      if no_ifp then None
      else try Fixq.sql_of_first_ifp ~registry p with _ -> None
    in
    let (syntactic, algebraic) =
      match try Fixq.distributivity_verdicts ~registry p with _ -> None with
      | Some v -> v
      | None -> (false, None)
    in
    E.analyze ~registry ~compiled
      ~sql_renderable:(Option.map Result.is_ok sql)
      ~algebra_delta:(algebraic = Some true) ~interp_delta:syntactic p
  in
  printf "%-18s | %-7s | %9s | %9s | %9s | %7s | %6s | %5s\n" "Family"
    "chosen" "interp ms" "algeb. ms" "sql ms" "auto ms" "rounds" "bound";
  printf "%s\n" (String.make 88 '-');
  List.iter
    (fun (name, query, setup) ->
      let registry = Doc_registry.create () in
      setup registry;
      let est = analyze registry query in
      let run engine = Fixq.run ~registry ~engine query in
      let interp = run (Fixq.Interpreter Fixq.Auto) in
      let alg = run (Fixq.Algebra Fixq.Auto) in
      let sql = run (Fixq.Sql Fixq.Auto) in
      let fixed =
        [ ("interp", interp); ("algebra", alg); ("sql", sql) ]
      in
      let chosen_engine =
        match est.E.chosen with
        | "algebra" -> Fixq.Algebra Fixq.Auto
        | "sql" -> Fixq.Sql Fixq.Auto
        | _ -> Fixq.Interpreter Fixq.Auto
      in
      let auto = run chosen_engine in
      let worst_ms =
        List.fold_left
          (fun acc (_, r) -> Float.max acc r.Fixq.wall_ms)
          0. fixed
      in
      (* auto re-runs its pick, so compare with noise headroom *)
      let never_slower =
        auto.Fixq.wall_ms <= (worst_ms *. 1.10) +. 2.0
      in
      let actual_rounds =
        List.fold_left
          (fun acc (_, r) -> max acc r.Fixq.depth)
          auto.Fixq.depth fixed
      in
      let bound_ok =
        match est.E.rounds_bound with
        | Some b -> actual_rounds <= b
        | None -> true
      in
      let agree =
        let same a b =
          Item.set_equal a.Fixq.result b.Fixq.result
          || Item.deep_equal a.Fixq.result b.Fixq.result
        in
        same interp alg && same interp sql && same interp auto
      in
      printf "%-18s | %-7s | %9.1f | %9.1f | %9.1f | %7.1f | %6d | %5s\n%!"
        name est.E.chosen interp.Fixq.wall_ms alg.Fixq.wall_ms
        sql.Fixq.wall_ms auto.Fixq.wall_ms actual_rounds
        (match est.E.rounds_bound with
        | Some b -> string_of_int b
        | None -> "—");
      let est_cost eng =
        match
          List.find_opt (fun e -> e.E.eng_name = eng) est.E.engines
        with
        | Some e -> Json.Num (Float.round e.E.eng_cost)
        | None -> Json.Null
      in
      record_json
        [ ("section", Json.Str "cost"); ("family", Json.Str name);
          ("work", Json.Num (Float.round est.E.work));
          ("chosen", Json.Str est.E.chosen);
          ("est_interp", est_cost "interp");
          ("est_algebra", est_cost "algebra");
          ("est_sql", est_cost "sql");
          ("interp_ms", Json.Num interp.Fixq.wall_ms);
          ("algebra_ms", Json.Num alg.Fixq.wall_ms);
          ("sql_ms", Json.Num sql.Fixq.wall_ms);
          ("auto_ms", Json.Num auto.Fixq.wall_ms);
          ("worst_ms", Json.Num worst_ms);
          ("never_slower", Json.Bool never_slower);
          ("rounds_bound",
           (match est.E.rounds_bound with
           | Some b -> Json.of_int b
           | None -> Json.Null));
          ("actual_rounds", Json.of_int actual_rounds);
          ("bound_ok", Json.Bool bound_ok);
          ("agree", Json.Bool agree) ])
    families;
  printf "\n"

(* ------------------------------------------------------------------ *)
(* Semiring-annotated fixpoints: recursive aggregates per kind         *)
(* ------------------------------------------------------------------ *)

(* [accumulate by] over the paper's workloads: min (cheapest
   prerequisite chain, cross-checked against a reference Bellman-Ford
   on the extracted edge relation), max (widest-path bidder reach),
   count and why (path multiplicity / seed witnesses on an acyclic
   curriculum), and the bool semiring's parity with the legacy IFP
   (same bytes, comparable time). *)
let semiring_bench () =
  printf "== Semiring fixpoints: accumulate by over the paper's workloads ==\n\n";
  let module Eval = Fixq_lang.Eval in
  let module Semiring = Fixq_semiring.Semiring in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let code_of n =
    List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
    |> Option.fold ~none:"" ~some:Node.string_value
  in
  let annotated ~registry src =
    let ev = Eval.create ~registry () in
    let (result, wall_ms) = time (fun () -> Eval.run_string ev src) in
    (result, wall_ms, Eval.last_annotations ev)
  in
  let row ~kind ~doc ~wall_ms ~result_size ~cross_check =
    printf "  %-5s %-18s %8.2f ms  %5d annotated  %s\n" kind doc wall_ms
      result_size cross_check;
    record_json
      [ ("section", Json.Str "semiring"); ("kind", Json.Str kind);
        ("doc", Json.Str doc); ("wall_ms", Json.Num wall_ms);
        ("result_size", Json.of_int result_size);
        ("cross_check", Json.Str cross_check) ]
  in
  (* Seed at the course with the largest transitive prerequisite
     closure — any given course may have none at all. *)
  let pick_seed doc courses =
    let best = ref "c1" and best_n = ref 0 in
    for i = 1 to courses do
      let c = Printf.sprintf "c%d" i in
      let n =
        List.length (W.Curriculum.cheapest_prerequisite_costs doc ~from:c)
      in
      if n > !best_n then begin
        best := c;
        best_n := n
      end
    done;
    !best
  in
  (* Tropical semiring vs reference shortest paths. *)
  let courses = 400 in
  let registry = Doc_registry.create () in
  let doc =
    W.Curriculum.load_weighted ~registry
      { W.Curriculum.default with W.Curriculum.courses }
  in
  let from = pick_seed doc courses in
  let (result, wall_ms, anns) =
    annotated ~registry (W.Queries.cheapest_prerequisite from)
  in
  let kernel_costs =
    match anns with
    | Some (Semiring.Min, entries) ->
      List.filter_map
        (fun (n, a) ->
          match a with
          | Semiring.Num d -> Some (code_of n, d)
          | _ -> None)
        entries
      |> List.sort compare
    | _ -> []
  in
  let reference =
    W.Curriculum.cheapest_prerequisite_costs doc ~from
    |> List.sort compare
  in
  row ~kind:"min"
    ~doc:(Printf.sprintf "curriculum-%d" courses)
    ~wall_ms ~result_size:(List.length result)
    ~cross_check:
      (if kernel_costs = reference && kernel_costs <> [] then
         "Bellman-Ford agrees"
       else "BELLMAN-FORD DISAGREES");
  (* Widest path over the rated bidder network. *)
  let registry = Doc_registry.create () in
  ignore
    (W.Xmark.load_weighted ~registry
       { W.Xmark.default with W.Xmark.scale = 0.004 });
  let (result, wall_ms, anns) =
    annotated ~registry (W.Queries.weighted_bidder_reach "person0")
  in
  let max_ok =
    match anns with
    | Some (Semiring.Max, entries) ->
      entries <> []
      && List.for_all
           (fun (_, a) ->
             match a with Semiring.Num d -> d >= 1.0 | _ -> false)
           entries
    | _ -> false
  in
  row ~kind:"max" ~doc:"xmark-0.004" ~wall_ms
    ~result_size:(List.length result)
    ~cross_check:
      (if max_ok then "bottleneck ratings in range" else "NO ANNOTATIONS");
  (* Count and why on an acyclic curriculum (count is unstable on
     cycles — Analyze flags it FQ043 and serve refuses it unbudgeted). *)
  let registry = Doc_registry.create () in
  let dag =
    W.Curriculum.load_weighted ~registry
      { W.Curriculum.default with
        W.Curriculum.courses;
        back_edge_fraction = 0.0 }
  in
  let from = pick_seed dag courses in
  let (result, wall_ms, anns) =
    annotated ~registry (W.Queries.counted_closure from)
  in
  let paths =
    match anns with
    | Some (Semiring.Count, entries) ->
      List.fold_left
        (fun acc (_, a) ->
          match a with Semiring.Num d -> acc +. d | _ -> acc)
        0.0 entries
    | _ -> 0.0
  in
  row ~kind:"count"
    ~doc:(Printf.sprintf "curriculum-%d-dag" courses)
    ~wall_ms ~result_size:(List.length result)
    ~cross_check:(Printf.sprintf "%.0f derivation paths" paths);
  let (result, wall_ms, anns) =
    annotated ~registry (W.Queries.witnessed_closure from)
  in
  let why_ok =
    match anns with
    | Some (Semiring.Why, entries) ->
      entries <> []
      && List.for_all
           (fun (_, a) ->
             match a with
             | Semiring.Wit w -> Semiring.Int_set.cardinal w = 1
             | _ -> false)
           entries
    | _ -> false
  in
  row ~kind:"why"
    ~doc:(Printf.sprintf "curriculum-%d-dag" courses)
    ~wall_ms ~result_size:(List.length result)
    ~cross_check:
      (if why_ok then "single-seed witnesses" else "WITNESSES OFF");
  (* Bool semiring: same bytes as the legacy fixpoint, comparable
     time. *)
  let registry = Doc_registry.create () in
  let doc =
    W.Curriculum.load_weighted ~registry
      { W.Curriculum.default with W.Curriculum.courses }
  in
  let from = pick_seed doc courses in
  let p =
    Parser.parse_program
      (Printf.sprintf
         {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="%s"]
recurse $x/id(./prerequisites/pre_code)|}
         from)
  in
  let bool_p =
    let rewrite e =
      Fixq_lang.Rewrite.map_expr
        (function
          | Fixq_lang.Ast.Ifp { var; seed; body; accum = None } ->
            Fixq_lang.Ast.Ifp
              { var; seed; body;
                accum =
                  Some { Fixq_lang.Ast.kind = Semiring.Bool; weight = None } }
          | e -> e)
        e
    in
    { p with Fixq_lang.Ast.main = rewrite p.Fixq_lang.Ast.main }
  in
  let engine = Fixq.Interpreter Fixq.Auto in
  let plain = Fixq.run_program ~registry ~engine p in
  let annotated_run = Fixq.run_program ~registry ~engine bool_p in
  let byte_equal =
    Fixq_xdm.Serializer.seq_to_string plain.Fixq.result
    = Fixq_xdm.Serializer.seq_to_string annotated_run.Fixq.result
  in
  printf "  bool  curriculum-%d      plain %6.2f ms  annotated %6.2f ms  %s\n"
    courses plain.Fixq.wall_ms annotated_run.Fixq.wall_ms
    (if byte_equal then "bytes equal" else "BYTES DIFFER");
  record_json
    [ ("section", Json.Str "semiring"); ("kind", Json.Str "bool");
      ("doc", Json.Str (Printf.sprintf "curriculum-%d" courses));
      ("wall_ms", Json.Num annotated_run.Fixq.wall_ms);
      ("result_size", Json.of_int (List.length annotated_run.Fixq.result));
      ("plain_wall_ms", Json.Num plain.Fixq.wall_ms);
      ("cross_check",
       Json.Str (if byte_equal then "bytes equal" else "BYTES DIFFER")) ];
  printf "\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  printf "== Micro-benchmarks (bechamel) ==\n\n";
  let registry = Doc_registry.create () in
  ignore
    (W.Curriculum.load ~registry
       { W.Curriculum.default with W.Curriculum.courses = 200 });
  ignore
    (W.Shakespeare.load ~registry
       { W.Shakespeare.default with W.Shakespeare.acts = 2; scenes_per_act = 2 });
  ignore
    (W.Hospital.load ~registry
       { W.Hospital.default with W.Hospital.total = 2000 });
  let bench name engine query =
    Bechamel.Test.make ~name
      (Bechamel.Staged.stage (fun () -> ignore (Fixq.run ~registry ~engine query)))
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"ifp"
      [ bench "curriculum/interp-naive" (Fixq.Interpreter Fixq.Naive)
          W.Queries.curriculum_check;
        bench "curriculum/interp-delta" (Fixq.Interpreter Fixq.Auto)
          W.Queries.curriculum_check;
        bench "curriculum/algebra-mu" (Fixq.Algebra Fixq.Naive)
          W.Queries.curriculum_check;
        bench "curriculum/algebra-mudelta" (Fixq.Algebra Fixq.Auto)
          W.Queries.curriculum_check;
        bench "dialogs/interp-naive" (Fixq.Interpreter Fixq.Naive)
          W.Queries.dialogs;
        bench "dialogs/interp-delta" (Fixq.Interpreter Fixq.Auto)
          W.Queries.dialogs;
        bench "hospital/interp-naive" (Fixq.Interpreter Fixq.Naive)
          W.Queries.hospital;
        bench "hospital/interp-delta" (Fixq.Interpreter Fixq.Auto)
          W.Queries.hospital ]
  in
  (* The set kernels under the fixpoint loops, on real node lists: the
     hospital document's elements whole, reversed (worst case for the
     sortedness fast path) and interleaved halves. *)
  let kernel_tests =
    let all =
      (Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Naive)
         {|doc("hospital.xml")//*|})
        .Fixq.result
    in
    let rev = List.rev all in
    let even = List.filteri (fun i _ -> i mod 2 = 0) all in
    let odd = List.filteri (fun i _ -> i mod 2 = 1) all in
    let k name f =
      Bechamel.Test.make ~name (Bechamel.Staged.stage (fun () -> ignore (f ())))
    in
    Bechamel.Test.make_grouped ~name:"kernel"
      [ k "ddo/sorted" (fun () -> Item.ddo all);
        k "ddo/reversed" (fun () -> Item.ddo rev);
        k "union/interleaved" (fun () -> Item.union even odd);
        k "except/half" (fun () -> Item.except all odd);
        k "intersect/half" (fun () -> Item.intersect all odd);
        k "accumulator/absorb" (fun () ->
            let a = Fixq_xdm.Accumulator.create () in
            ignore (Fixq_xdm.Accumulator.absorb a ~who:"bench" even);
            Fixq_xdm.Accumulator.absorb a ~who:"bench" odd) ]
  in
  (* The columnar batch kernels on (iter, item) relations built from the
     same hospital elements: the shapes the µ/µ∆ loops execute every
     round. *)
  let columnar_tests =
    let module R = Fixq_algebra.Relation in
    let module V = Fixq_algebra.Value in
    let all =
      (Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Naive)
         {|doc("hospital.xml")//*|})
        .Fixq.result
    in
    let nodes =
      List.filter_map (function Item.N n -> Some n | Item.A _ -> None) all
    in
    let rel =
      R.create [ "iter"; "item" ]
        (List.mapi (fun i n -> [| V.Int (i mod 7); V.Nd n |]) nodes)
    in
    let even = R.select_bool "pick" (R.append_col "pick"
        (R.col_of_values (Array.init (R.cardinal rel) (fun i -> V.Bool (i mod 2 = 0)))) rel)
    in
    let k name f =
      Bechamel.Test.make ~name (Bechamel.Staged.stage (fun () -> ignore (f ())))
    in
    Bechamel.Test.make_grouped ~name:"kernel/columnar"
      [ k "distinct" (fun () -> R.distinct rel);
        k "union" (fun () -> R.union even rel);
        k "difference" (fun () -> R.difference rel even);
        k "equi_join" (fun () -> R.equi_join [ ("item", "item") ] even rel);
        k "semi_join" (fun () -> R.semi_join [ ("item", "item") ] rel even);
        k "project" (fun () -> R.project [ ("item", "item") ] rel) ]
  in
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.concat_map
      (fun tests ->
        let raw = Benchmark.all cfg instances tests in
        let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [])
      [ tests; kernel_tests; columnar_tests ]
    |> List.sort compare
  in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        printf "%-42s %12.0f ns/run\n" name est;
        record_json
          [ ("section", Json.Str "micro"); ("name", Json.Str name);
            ("ns_per_run", Json.Num est) ]
      | _ -> printf "%-42s (no estimate)\n" name)
    rows;
  printf "\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  (* --json OUT (e.g. BENCH_table2.json): written on exit *)
  let json_out =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let rows = if has "--paper" then paper_rows else quick_rows in
  let explicit =
    List.exists
      (fun a ->
        List.mem a
          [ "table1"; "table2"; "figure9"; "example24"; "section41";
            "section6"; "section7"; "accum"; "micro"; "cluster"; "ivm";
            "semiring"; "columnar"; "cost"; "recovery" ])
      args
  in
  let when_ opt f = if (not explicit) || has opt then f () in
  (* table2 first: it reports wall-clock on a fresh heap, before the
     allocation-heavy micro/accum phases grow the major heap *)
  when_ "table2" (fun () -> table2 rows);
  when_ "table1" table1;
  when_ "figure9" figure9;
  when_ "example24" example24;
  when_ "section41" section41;
  when_ "section6" section6;
  when_ "section7" section7;
  when_ "accum" accum;
  when_ "columnar" columnar_bench;
  when_ "cost" cost_bench;
  when_ "semiring" semiring_bench;
  when_ "ivm" ivm_bench;
  (* opt-in like micro: stateful temp dirs + a long patch history *)
  when_ "recovery" (fun () -> if has "recovery" then recovery_bench ());
  when_ "micro" (fun () -> if has "micro" then micro ());
  (* opt-in like micro: needs the fixq binary built alongside *)
  when_ "cluster" (fun () -> if has "cluster" then cluster_bench ());
  Option.iter write_json json_out
