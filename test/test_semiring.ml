(* The semiring-annotated fixpoint kernel: ⊗/⊕ algebra unit tests,
   end-to-end [accumulate by] runs per kind, byte-parity of the bool
   semiring with the legacy IFP across the paper's four workload
   families (property-tested over generator seeds), and the min-cost
   kernel against a reference Bellman-Ford. *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Serializer = Fixq_xdm.Serializer
module Semiring = Fixq_semiring.Semiring
module Kernel = Fixq_semiring.Kernel
module Eval = Fixq_lang.Eval
module Rewrite = Fixq_lang.Rewrite
module Ast = Fixq_lang.Ast
module Analyze = Fixq_analysis.Analyze
module W = Fixq_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Semiring algebra                                                    *)
(* ------------------------------------------------------------------ *)

let test_kind_strings () =
  List.iter
    (fun k ->
      check "kind_of_string inverts kind_to_string" true
        (Semiring.kind_of_string (Semiring.kind_to_string k) = Some k))
    [ Semiring.Bool; Semiring.Count; Semiring.Max; Semiring.Min;
      Semiring.Why ];
  check "unknown kind" true (Semiring.kind_of_string "tropical" = None)

let test_stability () =
  let s = Semiring.stability in
  check "bool stable" true (s Semiring.Bool = Semiring.Stable);
  check "max stable" true (s Semiring.Max = Semiring.Stable);
  check "why stable" true (s Semiring.Why = Semiring.Stable);
  check "min p-stable" true (s Semiring.Min = Semiring.P_stable);
  check "count unstable" true (s Semiring.Count = Semiring.Unstable)

let test_improve_min () =
  let open Semiring in
  check "strict decrease improves" true
    (improve Min ~old:(Num 5.0) ~incoming:(Num 3.0)
    = Some (Num 3.0, Num 3.0));
  check "equal does not improve" true
    (improve Min ~old:(Num 3.0) ~incoming:(Num 3.0) = None);
  check "increase does not improve" true
    (improve Min ~old:(Num 3.0) ~incoming:(Num 7.0) = None)

let test_improve_max () =
  let open Semiring in
  check "strict increase improves" true
    (improve Max ~old:(Num 2.0) ~incoming:(Num 4.0)
    = Some (Num 4.0, Num 4.0));
  check "decrease does not improve" true
    (improve Max ~old:(Num 4.0) ~incoming:(Num 2.0) = None)

let test_improve_count () =
  let open Semiring in
  check "count always accumulates" true
    (improve Count ~old:(Num 2.0) ~incoming:(Num 3.0)
    = Some (Num 5.0, Num 3.0));
  check "zero increment does not improve" true
    (improve Count ~old:(Num 2.0) ~incoming:(Num 0.0) = None)

let test_improve_why () =
  let open Semiring in
  let w xs = Wit (Int_set.of_list xs) in
  (match improve Why ~old:(w [ 1 ]) ~incoming:(w [ 1; 2 ]) with
  | Some (Wit u, Wit fresh) ->
    check "union stored" true (Int_set.equal u (Int_set.of_list [ 1; 2 ]));
    check "only new witnesses refeed" true
      (Int_set.equal fresh (Int_set.singleton 2))
  | _ -> Alcotest.fail "expected improvement");
  check "subset does not improve" true
    (improve Why ~old:(w [ 1; 2 ]) ~incoming:(w [ 2 ]) = None)

let test_ann_strings () =
  let open Semiring in
  check_str "mark" "true" (ann_to_string Mark);
  check_str "integral number" "4" (ann_to_string (Num 4.0));
  check_str "fractional number" "2.5" (ann_to_string (Num 2.5));
  check_str "infinity" "INF" (ann_to_string (Num infinity));
  check_str "witness set" "{3,7}"
    (ann_to_string (Wit (Int_set.of_list [ 7; 3 ])))

(* ------------------------------------------------------------------ *)
(* End-to-end: accumulate by on a handwritten weighted curriculum      *)
(* ------------------------------------------------------------------ *)

let registry = Doc_registry.create ()

let weighted_doc =
  {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1" cost="1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2" cost="2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3" cost="9"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c4" cost="3"><prerequisites/></course>
</curriculum>|}

let () =
  Doc_registry.register ~registry "curriculum.xml"
    (Xml_parser.parse_string ~strip_whitespace:true weighted_doc)

let run_annotated ?(strategy = Eval.Auto) src =
  let ev = Eval.create ~registry ~strategy () in
  let result = Eval.run_string ev src in
  (result, Eval.last_annotations ev)

let code_of n =
  List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
  |> Option.fold ~none:"" ~some:Node.string_value

let ann_by_code = function
  | None -> []
  | Some (_, entries) ->
    List.map (fun (n, a) -> (code_of n, Semiring.ann_to_string a)) entries
    |> List.sort compare

let q1_min =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code)
accumulate by min(number(./@cost))|}

let test_min_cost_small () =
  let (result, anns) = run_annotated q1_min in
  (* c2 costs 2, c3 costs 9, c4 via c2 costs 2+3=5 (not 9+3). *)
  Alcotest.(check (list (pair string string)))
    "cheapest costs"
    [ ("c2", "2"); ("c3", "9"); ("c4", "5") ]
    (ann_by_code anns);
  check_int "result is the node set" 3 (List.length result)

let test_count_paths () =
  let (_, anns) =
    run_annotated
      {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code)
accumulate by count|}
  in
  (* c4 is derivable through c2 and through c3: two paths. *)
  Alcotest.(check (list (pair string string)))
    "path multiplicities"
    [ ("c2", "1"); ("c3", "1"); ("c4", "2") ]
    (ann_by_code anns)

let test_why_witnesses () =
  let (_, anns) =
    run_annotated
      {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c2" or @code="c3"]
recurse $x/id(./prerequisites/pre_code)
accumulate by why|}
  in
  match anns with
  | Some (Semiring.Why, entries) ->
    let c4 =
      List.find_opt (fun (n, _) -> code_of n = "c4") entries
    in
    (match c4 with
    | Some (_, Semiring.Wit w) ->
      check_int "c4 supported by both seeds" 2 (Semiring.Int_set.cardinal w)
    | _ -> Alcotest.fail "no witness annotation for c4")
  | _ -> Alcotest.fail "expected why annotations"

let test_max_bottleneck () =
  let (_, anns) =
    run_annotated
      {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code)
accumulate by max(number(./@cost))|}
  in
  (* Widest path: c4's bottleneck via c3 is min(9,3)=3; via c2 min(2,3)=2;
     max of the two is 3. Seeds propagate ∞, so c2/c3 keep their own
     weight. *)
  Alcotest.(check (list (pair string string)))
    "bottleneck ratings"
    [ ("c2", "2"); ("c3", "9"); ("c4", "3") ]
    (ann_by_code anns)

let test_both_engines_agree () =
  List.iter
    (fun engine ->
      let report =
        Fixq.run ~registry ~engine q1_min
      in
      check_str
        "annotated result on both engines"
        "<course code=\"c2\" cost=\"2\"><prerequisites><pre_code>c4</pre_code></prerequisites></course> <course code=\"c3\" cost=\"9\"><prerequisites><pre_code>c4</pre_code></prerequisites></course> <course code=\"c4\" cost=\"3\"><prerequisites/></course>"
        (Serializer.seq_to_string report.Fixq.result);
      check "annotations surfaced" true
        (List.length report.Fixq.annotations = 3);
      check "semiring surfaced" true (report.Fixq.semiring = Some "min"))
    [ Fixq.Interpreter Fixq.Auto; Fixq.Algebra Fixq.Auto ]

(* ------------------------------------------------------------------ *)
(* Divergence classification and gates                                 *)
(* ------------------------------------------------------------------ *)

let parse src = Fixq_lang.Parser.parse_program src

let diag_codes src =
  let a = Analyze.analyze (parse src) in
  List.map (fun d -> d.Fixq_analysis.Diag.code) a.Analyze.diagnostics

let test_semiring_diagnostics () =
  let counted =
    {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code) accumulate by count|}
  in
  check "count closure warns FQ043" true
    (List.mem "FQ043" (diag_codes counted));
  check "min closure informs FQ044" true
    (List.mem "FQ044" (diag_codes q1_min));
  let plain =
    {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code)|}
  in
  check "plain IFP has neither" true
    (not
       (List.exists
          (fun c -> c = "FQ043" || c = "FQ044")
          (diag_codes plain)))

let test_classification () =
  let report src =
    match (Analyze.analyze (parse src)).Analyze.ifps with
    | r :: _ -> r
    | [] -> Alcotest.fail "no IFP"
  in
  let counted =
    {|with $x seeded by doc("c.xml")//a recurse $x/b accumulate by count|}
  in
  (match (report counted).Analyze.divergence with
  | Analyze.May_diverge _ -> ()
  | _ -> Alcotest.fail "count must be may-diverge");
  let min_q =
    {|with $x seeded by doc("c.xml")//a recurse $x/b accumulate by min(number(./@w))|}
  in
  check "min is bounded at best" true
    ((report min_q).Analyze.divergence = Analyze.Bounded);
  let why_q = {|with $x seeded by doc("c.xml")//a recurse $x/b accumulate by why|} in
  check "why keeps the structural verdict" true
    ((report why_q).Analyze.divergence = Analyze.Terminates);
  check "semiring recorded" true
    ((report why_q).Analyze.semiring = Some Semiring.Why)

let test_gates () =
  let annotated =
    parse
      {|with $x seeded by doc("c.xml")//a recurse $x/b accumulate by why|}
  in
  let plain = parse {|with $x seeded by doc("c.xml")//a recurse $x/b|} in
  check "plain scatters" true (Analyze.scatter_eligible plain);
  check "annotated never scatters" false (Analyze.scatter_eligible annotated);
  check "plain IVM-eligible" true
    (Analyze.ivm_eligibility plain = Analyze.Ivm_full);
  (match Analyze.ivm_eligibility annotated with
  | Analyze.Ivm_ineligible _ -> ()
  | _ -> Alcotest.fail "annotated must be IVM-ineligible")

(* ------------------------------------------------------------------ *)
(* Property: bool semiring ≡ legacy IFP on the four workload families  *)
(* ------------------------------------------------------------------ *)

(* Rewrite every IFP of a program to [accumulate by bool]. *)
let boolify p =
  let rewrite e =
    Rewrite.map_expr
      (function
        | Ast.Ifp { var; seed; body; accum = None } ->
          Ast.Ifp
            { var; seed; body;
              accum = Some { Ast.kind = Semiring.Bool; weight = None } }
        | e -> e)
      e
  in
  { Ast.functions =
      List.map (fun fd -> { fd with Ast.body = rewrite fd.Ast.body })
        p.Ast.functions;
    variables = List.map (fun (v, e) -> (v, rewrite e)) p.Ast.variables;
    main = rewrite p.Ast.main }

let family_runs seed =
  let registry = Doc_registry.create () in
  ignore
    (W.Curriculum.load ~registry
       { W.Curriculum.default with W.Curriculum.courses = 60; seed });
  ignore
    (W.Xmark.load ~registry
       { W.Xmark.default with W.Xmark.scale = 0.001; seed });
  ignore
    (W.Shakespeare.load ~registry
       { W.Shakespeare.default with W.Shakespeare.acts = 2; seed });
  ignore
    (W.Hospital.load ~registry
       { W.Hospital.default with W.Hospital.total = 120; seed });
  (registry,
   [ W.Queries.q1; W.Queries.curriculum_check; W.Queries.bidder_network;
     W.Queries.dialogs; W.Queries.hospital ])

let bool_parity_on ~engine seed =
  let (registry, queries) = family_runs seed in
  List.for_all
    (fun src ->
      let p = parse src in
      let plain = Fixq.run_program ~registry ~engine p in
      let annotated = Fixq.run_program ~registry ~engine (boolify p) in
      Serializer.seq_to_string plain.Fixq.result
      = Serializer.seq_to_string annotated.Fixq.result
      && plain.Fixq.depth = annotated.Fixq.depth
      && plain.Fixq.nodes_fed = annotated.Fixq.nodes_fed)
    queries

let prop_bool_parity_interp =
  QCheck2.Test.make ~count:8
    ~name:"bool semiring byte-identical to legacy IFP (interpreter)"
    QCheck2.Gen.(int_range 1 1000)
    (bool_parity_on ~engine:(Fixq.Interpreter Fixq.Auto))

let prop_bool_parity_naive =
  QCheck2.Test.make ~count:4
    ~name:"bool semiring byte-identical to legacy IFP (naive)"
    QCheck2.Gen.(int_range 1 1000)
    (bool_parity_on ~engine:(Fixq.Interpreter Fixq.Naive))

(* ------------------------------------------------------------------ *)
(* Property: min-cost kernel ≡ reference Bellman-Ford                  *)
(* ------------------------------------------------------------------ *)

let min_cost_matches seed =
  let registry = Doc_registry.create () in
  let doc =
    W.Curriculum.load_weighted ~registry
      { W.Curriculum.default with W.Curriculum.courses = 80; seed }
  in
  (* Seed at a course that provably reaches prerequisites, so the
     comparison is never vacuously empty = empty. *)
  let from =
    let rec go i =
      if i > 80 then "c1"
      else
        let c = Printf.sprintf "c%d" i in
        if W.Curriculum.cheapest_prerequisite_costs doc ~from:c <> [] then c
        else go (i + 1)
    in
    go 1
  in
  let ev = Eval.create ~registry () in
  ignore (Eval.run_string ev (W.Queries.cheapest_prerequisite from));
  let kernel =
    match Eval.last_annotations ev with
    | Some (Semiring.Min, entries) ->
      List.map
        (fun (n, a) ->
          match a with
          | Semiring.Num d -> (code_of n, d)
          | _ -> Alcotest.fail "non-numeric min annotation")
        entries
      |> List.sort compare
    | _ -> Alcotest.fail "expected min annotations"
  in
  let reference =
    W.Curriculum.cheapest_prerequisite_costs doc ~from
    |> List.sort compare
  in
  kernel = reference && kernel <> []

let prop_min_bellman_ford =
  QCheck2.Test.make ~count:15
    ~name:"min-cost kernel matches reference Bellman-Ford"
    QCheck2.Gen.(int_range 1 1000)
    min_cost_matches

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "semiring"
    [ ( "algebra",
        [ Alcotest.test_case "kind strings" `Quick test_kind_strings;
          Alcotest.test_case "stability" `Quick test_stability;
          Alcotest.test_case "improve min" `Quick test_improve_min;
          Alcotest.test_case "improve max" `Quick test_improve_max;
          Alcotest.test_case "improve count" `Quick test_improve_count;
          Alcotest.test_case "improve why" `Quick test_improve_why;
          Alcotest.test_case "annotation strings" `Quick test_ann_strings ] );
      ( "end-to-end",
        [ Alcotest.test_case "min cost" `Quick test_min_cost_small;
          Alcotest.test_case "count paths" `Quick test_count_paths;
          Alcotest.test_case "why witnesses" `Quick test_why_witnesses;
          Alcotest.test_case "max bottleneck" `Quick test_max_bottleneck;
          Alcotest.test_case "engines agree" `Quick test_both_engines_agree ]
      );
      ( "analysis",
        [ Alcotest.test_case "FQ043/FQ044" `Quick test_semiring_diagnostics;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "scatter/ivm gates" `Quick test_gates ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_bool_parity_interp;
          QCheck_alcotest.to_alcotest prop_bool_parity_naive;
          QCheck_alcotest.to_alcotest prop_min_bellman_ford ] ) ]
