(* Property tests for the PR-3 set kernels: the merge-based
   ddo/union/except/intersect in Item, the incremental fixpoint
   Accumulator, and the name-indexed descendant steps in Axis — each
   checked against a straightforward list-based reference on randomized
   node multisets drawn from several documents. Plus regression tests
   for the Atom_set set-equality path (quadratic before PR 3). *)

module Node = Fixq_xdm.Node
module Atom = Fixq_xdm.Atom
module Item = Fixq_xdm.Item
module Axis = Fixq_xdm.Axis
module Accumulator = Fixq_xdm.Accumulator
module Counters = Fixq_xdm.Counters

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fixtures: a pool of nodes spanning three documents                  *)
(* ------------------------------------------------------------------ *)

let docs =
  (* distinct shapes, shared element names, text/comment nodes mixed
     in — the kernels must only ever see ids, never care about shape *)
  let leaf n = Node.E ("leaf", [ ("n", string_of_int n) ], [ Node.T "x" ]) in
  [ Node.of_spec
      (Node.E
         ( "r", [],
           [ Node.E ("a", [], [ leaf 1; Node.E ("b", [], [ leaf 2 ]) ]);
             Node.E ("b", [], [ leaf 3; Node.C "note"; leaf 4 ]);
             Node.T "tail" ] ));
    Node.of_spec
      (Node.E
         ( "r", [],
           List.init 10 (fun i ->
               Node.E
                 ( (if i mod 2 = 0 then "a" else "b"), [],
                   [ leaf (10 + i) ] )) ));
    Node.of_spec (Node.E ("a", [], [ Node.E ("a", [], [ leaf 100 ]) ])) ]

let pool =
  let out = ref [] in
  List.iter (fun d -> Node.iter_subtree (fun n -> out := n :: !out) d) docs;
  Array.of_list (List.rev !out)

let node_of_idx i = pool.(i mod Array.length pool)
let seq_of_idxs l = List.map (fun i -> Item.node (node_of_idx i)) l

let ids_of_seq s =
  List.map
    (function Item.N n -> n.Node.id | Item.A _ -> Alcotest.fail "atom")
    s

(* ------------------------------------------------------------------ *)
(* List-based reference implementations                                *)
(* ------------------------------------------------------------------ *)

let ref_ddo ns = List.sort_uniq Node.compare_doc_order ns
let mem n l = List.exists (fun m -> Node.compare_doc_order n m = 0) l
let ref_union a b = ref_ddo (a @ b)
let ref_except a b = List.filter (fun n -> not (mem n b)) (ref_ddo a)
let ref_intersect a b = List.filter (fun n -> mem n b) (ref_ddo a)
let ids = List.map (fun n -> n.Node.id)

let nodes_of_idxs l = List.map node_of_idx l

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let idx_gen = QCheck2.Gen.(list_size (int_bound 40) (int_bound 200))

let prop_kernels_match_reference =
  QCheck2.Test.make ~count:300 ~name:"merge kernels = list reference"
    QCheck2.Gen.(pair idx_gen idx_gen)
    (fun (ia, ib) ->
      let na = nodes_of_idxs ia and nb = nodes_of_idxs ib in
      let sa = seq_of_idxs ia and sb = seq_of_idxs ib in
      ids_of_seq (Item.ddo sa) = ids (ref_ddo na)
      && ids_of_seq (Item.union sa sb) = ids (ref_union na nb)
      && ids_of_seq (Item.except sa sb) = ids (ref_except na nb)
      && ids_of_seq (Item.intersect sa sb) = ids (ref_intersect na nb))

let prop_doc_order =
  QCheck2.Test.make ~count:200 ~name:"kernel outputs strictly doc-ordered"
    QCheck2.Gen.(pair idx_gen idx_gen)
    (fun (ia, ib) ->
      let strictly_sorted s =
        let rec go = function
          | Item.N x :: (Item.N y :: _ as rest) ->
            Node.compare_doc_order x y < 0 && go rest
          | [ Item.N _ ] | [] -> true
          | _ -> false
        in
        go s
      in
      let sa = seq_of_idxs ia and sb = seq_of_idxs ib in
      List.for_all strictly_sorted
        [ Item.ddo sa; Item.union sa sb; Item.except sa sb;
          Item.intersect sa sb ])

let prop_accumulator =
  (* a run of absorb batches behaves like folding the reference union,
     and each round's fresh delta is exactly what the reference except
     would produce *)
  QCheck2.Test.make ~count:200 ~name:"accumulator = fold of union"
    QCheck2.Gen.(list_size (int_bound 8) idx_gen)
    (fun batches ->
      let acc = Accumulator.create () in
      let reference = ref [] in
      List.for_all
        (fun batch ->
          let nodes = nodes_of_idxs batch in
          let (fresh, fresh_count, produced) =
            Accumulator.absorb acc ~who:"test" (seq_of_idxs batch)
          in
          let expect_fresh = ref_except nodes !reference in
          reference := ref_union !reference nodes;
          ids_of_seq fresh = ids expect_fresh
          && fresh_count = List.length expect_fresh
          && produced = List.length batch
          && Accumulator.size acc = List.length !reference
          && ids_of_seq (Accumulator.to_seq acc) = ids !reference
          && List.for_all (fun n -> Accumulator.mem acc n) !reference)
        batches)

let name_gen = QCheck2.Gen.oneofl [ "a"; "b"; "leaf"; "r"; "*"; "zzz" ]

let prop_indexed_step =
  (* Axis.step answers descendant name tests from the per-document name
     index with subtree pruning; Axis.nodes is the plain unindexed
     traversal — they must agree from every context node *)
  QCheck2.Test.make ~count:300 ~name:"indexed descendant step = scan"
    QCheck2.Gen.(pair (int_bound 200) name_gen)
    (fun (i, nm) ->
      let n = node_of_idx i in
      let reference axis =
        List.filter (Axis.matches axis (Axis.Name nm)) (Axis.nodes axis n)
      in
      ids (Axis.step Axis.Descendant (Axis.Name nm) n)
      = ids (reference Axis.Descendant)
      && ids (Axis.step Axis.Descendant_or_self (Axis.Name nm) n)
         = ids (reference Axis.Descendant_or_self)
      && ids (Axis.step Axis.Child (Axis.Name nm) n)
         = ids (reference Axis.Child))

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let raises_type_error who f =
  try
    ignore (f ());
    false
  with Atom.Type_error msg -> contains msg who

let test_atom_type_errors () =
  let atom = [ Item.atom (Atom.Int 1) ] in
  let nodes = seq_of_idxs [ 0; 1 ] in
  check "ddo on atoms" true
    (raises_type_error "fs:ddo" (fun () -> Item.ddo atom));
  check "union on atoms" true
    (raises_type_error "union" (fun () -> Item.union nodes atom));
  check "except on atoms" true
    (raises_type_error "except" (fun () -> Item.except atom nodes));
  check "intersect on atoms" true
    (raises_type_error "intersect" (fun () -> Item.intersect nodes atom));
  check "accumulator on atoms" true
    (raises_type_error "fixpoint" (fun () ->
         Accumulator.absorb (Accumulator.create ()) ~who:"fixpoint" atom))

let test_index_counters () =
  (* the descendant name step must actually hit the index *)
  let root = List.hd docs in
  let before = Counters.snapshot () in
  let hits = Axis.step Axis.Descendant (Axis.Name "leaf") root in
  let d = Counters.diff (Counters.snapshot ()) before in
  check "found leaves" true (List.length hits > 0);
  check "index used" true (d.Counters.index_steps >= 1);
  check "index produced the nodes" true
    (d.Counters.index_nodes >= List.length hits)

let shuffle st arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let test_atom_set_scale () =
  (* regression: set_equal on 10k-atom sequences was quadratic
     (pairwise membership); the keyed path must handle this instantly *)
  let st = Random.State.make [| 42 |] in
  let mk st =
    Array.to_list
      (shuffle st (Array.init 10_000 (fun i -> Item.atom (Atom.Str (Printf.sprintf "k%d" i)))))
  in
  let a = mk st and b = mk st in
  let t0 = Unix.gettimeofday () in
  check "10k sets equal" true (Item.set_equal a b);
  check "10k sets differ" false
    (Item.set_equal a (Item.atom (Atom.Str "extra") :: b));
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  check ("10k set_equal under 2s, took " ^ string_of_float ms) true (ms < 2000.0)

let test_atom_set_crossover () =
  (* numeric strings mixed with numbers fall back to the (sound)
     pairwise path: equal_value is not transitive there *)
  let s l = List.map Item.atom l in
  check "1 = \"01\"" true
    (Item.set_equal (s [ Atom.Int 1 ]) (s [ Atom.Str "01" ]));
  check "\"1\" <> \"01\"" false
    (Item.set_equal (s [ Atom.Str "1" ]) (s [ Atom.Str "01" ]));
  check "dup collapse" true
    (Item.set_equal
       (s [ Atom.Int 2; Atom.Int 2; Atom.Str "x" ])
       (s [ Atom.Str "x"; Atom.Int 2 ]))

(* ------------------------------------------------------------------ *)

let qc = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kernels"
    [ ( "properties",
        qc
          [ prop_kernels_match_reference;
            prop_doc_order;
            prop_accumulator;
            prop_indexed_step ] );
      ( "units",
        [ Alcotest.test_case "atom type errors" `Quick test_atom_type_errors;
          Alcotest.test_case "index counters" `Quick test_index_counters;
          Alcotest.test_case "atom set 10k regression" `Quick
            test_atom_set_scale;
          Alcotest.test_case "atom set numeric crossover" `Quick
            test_atom_set_crossover ] ) ]
