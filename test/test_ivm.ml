(* Differential maintenance of cached fixpoints (lib/ivm) and its
   substrate: the patch-doc primitive on Node/Patch, per-document
   generation stamps, footprint-keyed result caching, the
   Analyze.ivm_eligibility verdict, and — the load-bearing property —
   maintained results byte-identical to full recompute across
   randomized edit sequences, driven through Server.handle_line exactly
   as the wire transports would. *)

module Xdm = Fixq_xdm
module Node = Xdm.Node
module Patch = Xdm.Patch
module Doc_registry = Xdm.Doc_registry
module Serializer = Xdm.Serializer
module Analyze = Fixq_analysis.Analyze
module Parser = Fixq_lang.Parser
module Service = Fixq_service
module Json = Service.Json
module Server = Service.Server

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let doc_of xml = Xdm.Xml_parser.parse_string ~uri:"u.xml" xml

let ser n = Serializer.to_string n

(* serialize the single document element of a patched root *)
let root_elem n =
  match Array.to_list n.Node.children with
  | [ e ] -> e
  | _ -> Alcotest.fail "expected exactly one root element"

(* ------------------------------------------------------------------ *)
(* Patch primitives                                                    *)
(* ------------------------------------------------------------------ *)

let test_patch_insert () =
  let d = doc_of "<r><a><k/></a><a/></r>" in
  let apply op = Patch.apply d op in
  let last =
    apply (Patch.Insert { path = "/r"; position = Patch.Last; xml = "<z/>" })
  in
  checks "into-last" "<r><a><k/></a><a/><z/></r>" (ser (root_elem last.Patch.new_root));
  let first =
    apply (Patch.Insert { path = "/r"; position = Patch.First; xml = "<z/>" })
  in
  checks "into-first" "<r><z/><a><k/></a><a/></r>" (ser (root_elem first.Patch.new_root));
  let before =
    apply
      (Patch.Insert { path = "/r/a[2]"; position = Patch.Before; xml = "<z/>" })
  in
  checks "before" "<r><a><k/></a><z/><a/></r>" (ser (root_elem before.Patch.new_root));
  let after =
    apply
      (Patch.Insert { path = "/r/a[1]"; position = Patch.After; xml = "<z/>" })
  in
  checks "after" "<r><a><k/></a><z/><a/></r>" (ser (root_elem after.Patch.new_root));
  checki "one inserted element" 1 last.Patch.inserted_count;
  checkb "nothing deleted" true (last.Patch.deleted = [])

let test_patch_delete_replace_settext () =
  let d = doc_of "<r><a><k/></a><b>old</b></r>" in
  let del = Patch.apply d (Patch.Delete { path = "/r/a" }) in
  checks "delete" "<r><b>old</b></r>" (ser (root_elem del.Patch.new_root));
  checkb "deleted ids recorded" true (List.length del.Patch.deleted >= 2);
  let rep =
    Patch.apply d (Patch.Replace { path = "/r/b"; xml = "<b>new</b>" })
  in
  checks "replace" "<r><a><k/></a><b>new</b></r>" (ser (root_elem rep.Patch.new_root));
  let txt = Patch.apply d (Patch.Set_text { path = "/r/b"; text = "t2" }) in
  checks "set-text" "<r><a><k/></a><b>t2</b></r>" (ser (root_elem txt.Patch.new_root))

(* fresh ids must be a valid preorder: strictly increasing across a
   document-order walk (element, attributes, children) *)
let test_patch_preorder () =
  let d = doc_of "<r><a x=\"1\"><k/></a><b/></r>" in
  let { Patch.new_root; remap; _ } =
    Patch.apply d
      (Patch.Insert
         { path = "/r/a"; position = Patch.Last; xml = "<w y=\"2\"><v/></w>" })
  in
  let last = ref (-1) in
  let rec walk n =
    checkb "preorder id" true (n.Node.id > !last);
    last := n.Node.id;
    Array.iter walk n.Node.attributes;
    Array.iter walk n.Node.children
  in
  walk new_root;
  (* the remap covers every surviving old node, mapping to the
     same-name copy *)
  checkb "root remapped" true (Hashtbl.mem remap d.Node.id);
  Hashtbl.iter
    (fun _old_id n -> checkb "remap into new tree" true (n.Node.id >= new_root.Node.id))
    remap

let test_patch_errors () =
  let d = doc_of "<r><a/></r>" in
  let fails op =
    match Patch.apply d op with
    | _ -> Alcotest.fail "expected Patch_error"
    | exception Patch.Patch_error _ -> ()
  in
  fails (Patch.Delete { path = "/r/zz" });
  fails (Patch.Delete { path = "/r" });
  fails (Patch.Insert { path = "/r"; position = Patch.Before; xml = "<z/>" });
  fails (Patch.Replace { path = "/r/a[3]"; xml = "<z/>" });
  fails (Patch.Insert { path = "/r/a"; position = Patch.Last; xml = "<open" })

(* ------------------------------------------------------------------ *)
(* Per-document generations                                            *)
(* ------------------------------------------------------------------ *)

let test_doc_generations () =
  let registry = Doc_registry.create () in
  Doc_registry.register ~registry "a.xml" (doc_of "<a/>");
  Doc_registry.register ~registry "b.xml" (doc_of "<b/>");
  checki "a gen" 1 (Doc_registry.doc_generation ~registry "a.xml");
  checki "b gen" 1 (Doc_registry.doc_generation ~registry "b.xml");
  Doc_registry.register ~registry "a.xml" (doc_of "<a2/>");
  checki "a bumped" 2 (Doc_registry.doc_generation ~registry "a.xml");
  checki "b untouched" 1 (Doc_registry.doc_generation ~registry "b.xml");
  let ((), footprint) =
    Doc_registry.track ~registry (fun () ->
        ignore (Doc_registry.find ~registry "a.xml"))
  in
  checkb "tracked footprint" true (footprint = [ ("a.xml", 2) ])

(* ------------------------------------------------------------------ *)
(* Eligibility verdicts                                                *)
(* ------------------------------------------------------------------ *)

let eligibility q =
  Analyze.ivm_eligibility ~stratified:false (Parser.parse_program q)

let test_eligibility () =
  checks "full" "full"
    (Analyze.ivm_string
       (eligibility
          {|with $x seeded by doc("u.xml")/r recurse $x/*|}));
  checks "descendant full" "full"
    (Analyze.ivm_string
       (eligibility
          {|with $x seeded by doc("u.xml")/r recurse $x/descendant-or-self::*/k|}));
  checks "filter is insert-only" "insert-only"
    (Analyze.ivm_string
       (eligibility
          {|with $x seeded by doc("u.xml")/r recurse $x/*[k]|}));
  checks "id() ineligible" "ineligible"
    (Analyze.ivm_string
       (eligibility
          {|with $x seeded by doc("u.xml")/r recurse $x/id("c")|}));
  checks "no ifp ineligible" "ineligible"
    (Analyze.ivm_string (eligibility "1 + 1"));
  checks "wrapped main ineligible" "ineligible"
    (Analyze.ivm_string
       (eligibility
          {|count(with $x seeded by doc("u.xml")/r recurse $x/*)|}))

(* ------------------------------------------------------------------ *)
(* Server plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let send server line = fst (Server.handle_line server line)

let member name resp = Json.member name (Json.parse resp)
let member_str name resp = Option.value ~default:"" (Json.str_opt (member name resp))
let member_int name resp = Option.value ~default:(-1) (Json.int_opt (member name resp))

let load_line uri xml =
  Json.to_string
    (Json.Obj
       [ ("op", Json.Str "load-doc"); ("uri", Json.Str uri);
         ("xml", Json.Str xml) ])

let run_line ?(cache = true) q =
  Json.to_string
    (Json.Obj
       (("op", Json.Str "run") :: ("query", Json.Str q)
       :: (if cache then [] else [ ("cache", Json.Bool false) ])))

(* satellite regression: a cached result must survive a load of a
   document it never read — only its own footprint invalidates it *)
let test_footprint_survives_unrelated_load () =
  let server = Server.create () in
  ignore (send server (load_line "u.xml" "<r><a/><a/></r>"));
  let q = {|with $x seeded by doc("u.xml")/r recurse $x/*|} in
  checks "first run misses" "miss" (member_str "result_cache" (send server (run_line q)));
  ignore (send server (load_line "other.xml" "<zzz/>"));
  checks "unrelated load keeps the hit" "hit"
    (member_str "result_cache" (send server (run_line q)));
  ignore (send server (load_line "u.xml" "<r><a/><a/><a/></r>"));
  checks "reloading the read doc invalidates" "miss"
    (member_str "result_cache" (send server (run_line q)))

let patch_line ?(uri = "u.xml") ?position ~action ~path payload =
  Json.to_string
    (Json.Obj
       ([ ("op", Json.Str "patch-doc"); ("uri", Json.Str uri);
          ("action", Json.Str action); ("path", Json.Str path) ]
       @ (match position with
         | Some p -> [ ("position", Json.Str p) ]
         | None -> [])
       @ payload))

let test_server_patch_maintains () =
  let server = Server.create () in
  ignore (send server (load_line "u.xml" "<r><a><k/></a><a/></r>"));
  let q = {|with $x seeded by doc("u.xml")/r recurse $x/*|} in
  ignore (send server (run_line q));
  let presp =
    send server
      (patch_line ~action:"insert" ~path:"/r"
         [ ("xml", Json.Str "<a><k/></a>") ])
  in
  checkb "patch ok" true (Json.bool_opt (member "ok" presp) = Some true);
  checki "one entry maintained" 1 (member_int "maintained" presp);
  checki "none recomputed" 0 (member_int "recompute" presp);
  let hit = send server (run_line q) in
  checks "maintained entry hits" "hit" (member_str "result_cache" hit);
  let fresh = send server (run_line ~cache:false q) in
  checks "maintained bytes = recompute bytes" (member_str "result" fresh)
    (member_str "result" hit)

let test_server_patch_drops_ineligible () =
  let server = Server.create () in
  ignore (send server (load_line "u.xml" "<r><a><k/></a><a/></r>"));
  (* insert-only query: a delete edit must fall back to recompute *)
  let q = {|with $x seeded by doc("u.xml")/r recurse $x/*[k]|} in
  ignore (send server (run_line q));
  let presp =
    send server (patch_line ~action:"delete" ~path:"/r/a[2]" [])
  in
  checki "entry dropped" 1 (member_int "recompute" presp);
  checki "nothing maintained" 0 (member_int "maintained" presp);
  checks "next run recomputes" "miss"
    (member_str "result_cache" (send server (run_line q)));
  let stats = send server {|{"op":"stats"}|} in
  let ivm = Json.member "ivm" (member "stats" stats) in
  checkb "fallback counted" true
    (Json.int_opt (Json.member "fallback_recompute_total" ivm) = Some 1)

let test_server_patch_errors () =
  let server = Server.create () in
  ignore (send server (load_line "u.xml" "<r><a/></r>"));
  let bad = send server (patch_line ~action:"delete" ~path:"/r/zz" []) in
  checkb "bad path is an error" true
    (Json.bool_opt (member "ok" bad) = Some false);
  let missing =
    send server (patch_line ~uri:"nope.xml" ~action:"delete" ~path:"/r/a" [])
  in
  checkb "unknown uri is an error" true
    (Json.bool_opt (member "ok" missing) = Some false)

(* ------------------------------------------------------------------ *)
(* Property: maintained ≡ recompute over randomized edit sequences     *)
(* ------------------------------------------------------------------ *)

(* Drive a server through a deterministic random edit sequence and
   assert, after every edit and for every query class (full-eligible,
   insert-only, ineligible), that the default (cached, maintained)
   result is byte-identical to a cache-bypassing recompute. *)
let run_edit_property ~seed ~steps =
  let rng = Random.State.make [| seed |] in
  let server = Server.create () in
  ignore (send server (load_line "u.xml" "<r><a><k/></a><a><k/><k/></a></r>"));
  let queries =
    [ ("full", {|with $x seeded by doc("u.xml")/r recurse $x/*|});
      ("insert-only", {|with $x seeded by doc("u.xml")/r recurse $x/*[k]|});
      ("ineligible", {|with $x seeded by doc("u.xml")/r recurse $x/id("c")|}) ]
  in
  List.iter (fun (_, q) -> ignore (send server (run_line q))) queries;
  let c_count = ref 0 in
  for step = 1 to steps do
    let edit =
      match Random.State.int rng 5 with
      | 0 | 4 ->
        incr c_count;
        patch_line ~action:"insert" ~path:"/r"
          [ ("xml", Json.Str (Printf.sprintf "<c n=\"%d\"><k/></c>" step)) ]
      | 1 when !c_count > 0 ->
        decr c_count;
        patch_line ~action:"delete" ~path:"/r/c[1]" []
      | 1 ->
        incr c_count;
        patch_line ~position:"into-first" ~action:"insert" ~path:"/r"
          [ ("xml", Json.Str "<c/>") ]
      | 2 ->
        patch_line ~action:"replace" ~path:"/r/a[1]"
          [ ("xml", Json.Str (Printf.sprintf "<a><k/><m n=\"%d\"/></a>" step)) ]
      | _ -> patch_line ~action:"set-text" ~path:"/r/a[2]" [ ("text", Json.Str "t") ]
    in
    let presp = send server edit in
    if Json.bool_opt (member "ok" presp) <> Some true then
      Alcotest.failf "step %d: patch failed: %s" step presp;
    List.iter
      (fun (label, q) ->
        let cached = send server (run_line q) in
        let fresh = send server (run_line ~cache:false q) in
        let c = member_str "result" cached and f = member_str "result" fresh in
        if c <> f then
          Alcotest.failf "step %d: %s diverged:\n cached: %s\n  fresh: %s" step
            label c f)
      queries
  done;
  (* the full-eligible query must actually have been maintained, not
     silently recomputed every time *)
  let stats = send server {|{"op":"stats"}|} in
  let ivm = Json.member "ivm" (member "stats" stats) in
  checkb "maintenance engaged" true
    (match Json.int_opt (Json.member "maintained_total" ivm) with
    | Some n -> n >= steps
    | None -> false)

let test_property_edits_seed7 () = run_edit_property ~seed:7 ~steps:25
let test_property_edits_seed42 () = run_edit_property ~seed:42 ~steps:25

let () =
  Alcotest.run "ivm"
    [ ("patch",
       [ Alcotest.test_case "insert positions" `Quick test_patch_insert;
         Alcotest.test_case "delete/replace/set-text" `Quick
           test_patch_delete_replace_settext;
         Alcotest.test_case "preorder + remap" `Quick test_patch_preorder;
         Alcotest.test_case "errors" `Quick test_patch_errors ]);
      ("registry",
       [ Alcotest.test_case "per-doc generations" `Quick test_doc_generations ]);
      ("eligibility",
       [ Alcotest.test_case "classification" `Quick test_eligibility ]);
      ("server",
       [ Alcotest.test_case "footprint survives unrelated load" `Quick
           test_footprint_survives_unrelated_load;
         Alcotest.test_case "patch maintains cached entry" `Quick
           test_server_patch_maintains;
         Alcotest.test_case "delete drops insert-only entry" `Quick
           test_server_patch_drops_ineligible;
         Alcotest.test_case "patch errors" `Quick test_server_patch_errors ]);
      ("property",
       [ Alcotest.test_case "random edits, seed 7" `Quick
           test_property_edits_seed7;
         Alcotest.test_case "random edits, seed 42" `Quick
           test_property_edits_seed42 ]) ]
