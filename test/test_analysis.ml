(* The fixq_analysis subsystem: source spans from the parser, located
   diagnostics with stable FQ0xx codes, lint rules, distributivity
   blame (rule + smallest blamed subexpression), divergence
   classification, the push-block → source mapping, and the
   --fix-hints repair loop (hint applied, both checkers re-confirm). *)

module Lang = Fixq_lang
module Parser = Lang.Parser
module Lexer = Lang.Lexer
module Analyze = Fixq_analysis.Analyze
module Diag = Fixq_analysis.Diag
module Push = Fixq_algebra.Push
module Xdm = Fixq_xdm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let analyze ?(stratified = false) src =
  let (p, spans) = Parser.parse_program_spans src in
  (p, spans, Analyze.analyze ~stratified ~spans p)

let find_code code (a : Analyze.t) =
  List.find_opt (fun d -> d.Diag.code = code) a.Analyze.diagnostics

let has_code code a = find_code code a <> None

(* ------------------------------------------------------------------ *)
(* Lexer positions and parser spans                                    *)
(* ------------------------------------------------------------------ *)

let test_line_col_of () =
  checkb "start" true (Lexer.line_col_of "abc" 0 = (1, 1));
  checkb "same line" true (Lexer.line_col_of "abc" 2 = (1, 3));
  checkb "after newline" true (Lexer.line_col_of "ab\ncd" 3 = (2, 1));
  checkb "second line offset" true (Lexer.line_col_of "ab\ncd" 4 = (2, 2));
  checkb "clamped" true (Lexer.line_col_of "ab" 99 = (1, 3))

let test_spans_locate_nodes () =
  let src = "with $x seeded by /a recurse ($x/b except $x/c)" in
  let (p, spans) = Parser.parse_program_spans src in
  (* the IFP starts at the 'with' keyword *)
  checkb "ifp span" true
    (Parser.Spans.line_col spans p.Lang.Ast.main = Some (1, 1));
  (match p.Lang.Ast.main with
  | Lang.Ast.Ifp { body; _ } ->
    (* the except chain is noted at its first operand *)
    checkb "except span" true
      (Parser.Spans.line_col spans body = Some (1, 31))
  | _ -> Alcotest.fail "expected an IFP main");
  (* declaration sites *)
  let src2 = "declare function f($a) { $a };\ndeclare variable $g := 1;\nf($g)" in
  let (_, spans2) = Parser.parse_program_spans src2 in
  checkb "fun decl site" true
    (Parser.Spans.fun_line_col spans2 "f" = Some (1, 18));
  checkb "global decl site" true
    (Parser.Spans.global_line_col spans2 "g" = Some (2, 18))

let test_spans_constant_constructors_unspanned () =
  (* Root/()/.: immediate values shared across occurrences, no span *)
  let (p, spans) = Parser.parse_program_spans "()" in
  checkb "no span for ()" true
    (Parser.Spans.line_col spans p.Lang.Ast.main = None)

(* ------------------------------------------------------------------ *)
(* Lint rules                                                          *)
(* ------------------------------------------------------------------ *)

let test_unused_let () =
  let (_, _, a) = analyze "let $u := 1 return 2" in
  (match find_code "FQ020" a with
  | Some d ->
    checks "severity" "warning" (Diag.severity_string d.Diag.severity);
    checkb "located" true (d.Diag.loc = Some (1, 5))
  | None -> Alcotest.fail "expected FQ020");
  let (_, _, clean) = analyze "let $u := 1 return $u" in
  checkb "used let is clean" false (has_code "FQ020" clean)

let test_unused_for () =
  let (_, _, a) = analyze "for $i in (1, 2) return 3" in
  checkb "unused for" true (has_code "FQ021" a);
  let (_, _, pos) = analyze "for $i at $p in (1, 2) return $i" in
  (* the positional binding is the unused one here *)
  checkb "unused positional" true (has_code "FQ021" pos);
  let (_, _, clean) = analyze "for $i in (1, 2) return $i" in
  checkb "used for is clean" false (has_code "FQ021" clean)

let test_unused_function () =
  let (_, _, a) = analyze "declare function f($a) { $a }; 1" in
  (match find_code "FQ022" a with
  | Some d ->
    checks "context" "f" d.Diag.context;
    checkb "located at decl" true (d.Diag.loc = Some (1, 18))
  | None -> Alcotest.fail "expected FQ022");
  (* reachability, not mere mention: g is only called from unreached f *)
  let (_, _, b) =
    analyze
      "declare function f($a) { g($a) }; declare function g($a) { $a }; 1"
  in
  checki "both unreached" 2
    (List.length
       (List.filter (fun d -> d.Diag.code = "FQ022") b.Analyze.diagnostics));
  (* a self-recursive unused function is still unused *)
  let (_, _, c) = analyze "declare function f($a) { f($a) }; 1" in
  checkb "self-recursive unused" true (has_code "FQ022" c);
  let (_, _, clean) = analyze "declare function f($a) { $a }; f(1)" in
  checkb "called is clean" false (has_code "FQ022" clean)

let test_shadowing_in_ifp_body () =
  let (_, _, a) =
    analyze "with $x seeded by /a recurse (for $x in /b return $x)"
  in
  checkb "rebinding the recursion variable" true (has_code "FQ023" a);
  let (_, _, b) =
    analyze
      "with $x seeded by /a recurse (for $y in $x return (for $y in /b \
       return $y))"
  in
  checkb "rebinding an inner loop variable" true (has_code "FQ023" b);
  (* same binder outside any IFP body: not this rule's business *)
  let (_, _, clean) =
    analyze "for $y in /a return (for $y in /b return $y)"
  in
  checkb "outside ifp is clean" false (has_code "FQ023" clean)

(* ------------------------------------------------------------------ *)
(* Static diagnostics gain codes and positions                         *)
(* ------------------------------------------------------------------ *)

let test_static_located () =
  let (_, _, a) = analyze "1 + count($nope)" in
  (match find_code "FQ010" a with
  | Some d ->
    checks "severity" "error" (Diag.severity_string d.Diag.severity);
    checkb "located at the variable" true (d.Diag.loc = Some (1, 11))
  | None -> Alcotest.fail "expected FQ010");
  let (_, _, b) = analyze "nosuch(1)" in
  checkb "unknown function coded" true (has_code "FQ011" b)

(* ------------------------------------------------------------------ *)
(* Distributivity blame                                                *)
(* ------------------------------------------------------------------ *)

let test_blame_except () =
  let (_, _, a) = analyze "with $x seeded by /a recurse ($x/b except $x/c)" in
  let r = List.hd a.Analyze.ifps in
  checkb "not syntactic" false r.Analyze.syntactic;
  (match r.Analyze.blame with
  | Some b ->
    checks "rule" "EXCEPT/INTERSECT" b.Lang.Distributivity.rule;
    checkb "blamed is the except node" true
      (match b.Lang.Distributivity.blamed with
      | Lang.Ast.Except _ -> true
      | _ -> false)
  | None -> Alcotest.fail "expected blame");
  (* the FQ030 diagnostic lands on the except, not the whole IFP *)
  (match find_code "FQ030" a with
  | Some d -> checkb "blame located" true (d.Diag.loc = Some (1, 31))
  | None -> Alcotest.fail "expected FQ030")

let test_blame_inside_function_body () =
  let (_, _, a) =
    analyze
      "declare function f($s) { count($s) };\n\
       with $x seeded by /a recurse f($x)"
  in
  let r = List.hd a.Analyze.ifps in
  (match r.Analyze.blame with
  | Some b -> checks "rule" "FUNCALL" b.Lang.Distributivity.rule
  | None -> Alcotest.fail "expected blame");
  checkb "reported" true (has_code "FQ030" a)

let test_blame_preserves_explain () =
  (* blame_of is the same inference as explain: same reason text *)
  let (p, _) =
    Parser.parse_program_spans "with $x seeded by /a recurse count($x)"
  in
  match p.Lang.Ast.main with
  | Lang.Ast.Ifp { var; body; _ } ->
    (match
       ( Lang.Distributivity.explain var body,
         Lang.Distributivity.blame_of var body )
     with
    | (Lang.Distributivity.Unsafe reason, Some b) ->
      checks "same reason" reason b.Lang.Distributivity.reason
    | _ -> Alcotest.fail "expected Unsafe + blame")
  | _ -> Alcotest.fail "expected IFP"

(* ------------------------------------------------------------------ *)
(* Divergence classification                                           *)
(* ------------------------------------------------------------------ *)

let first_report src =
  let (_, _, a) = analyze src in
  List.hd a.Analyze.ifps

let test_divergence_classes () =
  let r = first_report "with $x seeded by /a recurse $x/b" in
  checkb "node-only terminates" true (r.Analyze.divergence = Analyze.Terminates);
  let r = first_report "with $x seeded by 1 recurse $x * 1" in
  (match r.Analyze.divergence with
  | Analyze.May_diverge _ -> ()
  | _ -> Alcotest.fail "arith should be may-diverge");
  let r = first_report "with $x seeded by <a/> recurse <b/>" in
  (match r.Analyze.divergence with
  | Analyze.May_diverge _ -> ()
  | _ -> Alcotest.fail "constructors should be may-diverge");
  let r = first_report "with $x seeded by 1 recurse $x" in
  checkb "atoms without growth are bounded" true
    (r.Analyze.divergence = Analyze.Bounded)

let test_divergence_diagnostics () =
  let (_, _, a) = analyze "with $x seeded by 1 recurse $x * 1" in
  (match find_code "FQ040" a with
  | Some d -> checks "severity" "warning" (Diag.severity_string d.Diag.severity)
  | None -> Alcotest.fail "expected FQ040");
  let (_, _, b) = analyze "with $x seeded by 1 recurse $x" in
  checkb "bounded is info FQ041" true (has_code "FQ041" b);
  let (_, _, c) = analyze "with $x seeded by /a recurse $x/b" in
  checkb "terminates is silent" false
    (has_code "FQ040" c || has_code "FQ041" c)

(* ------------------------------------------------------------------ *)
(* Scatter eligibility (the cluster's gate, centralised)               *)
(* ------------------------------------------------------------------ *)

let parse src = Parser.parse_program src

let test_scatter_eligible () =
  checkb "node-only distributive main IFP" true
    (Analyze.scatter_eligible
       (parse "with $x seeded by doc(\"t\")/r recurse $x/a"));
  checkb "non-distributive body" false
    (Analyze.scatter_eligible
       (parse "with $x seeded by doc(\"t\")/r recurse ($x/a except $x/b)"));
  checkb "stratified flips fixed except" true
    (Analyze.scatter_eligible ~stratified:true
       (parse
          "with $x seeded by doc(\"t\")/r recurse ($x/a except doc(\"t\")/b)"));
  checkb "IFP not the main expression" false
    (Analyze.scatter_eligible
       (parse "(1, with $x seeded by doc(\"t\")/r recurse $x/a)"));
  checkb "atom seed" false
    (Analyze.scatter_eligible (parse "with $x seeded by 1 recurse $x"))

(* ------------------------------------------------------------------ *)
(* Acceptance: blame → push block → --fix-hints → both checkers agree  *)
(* ------------------------------------------------------------------ *)

let test_hint_repair_roundtrip () =
  let registry = Xdm.Doc_registry.create () in
  Xdm.Doc_registry.register ~registry "t"
    (Xdm.Xml_parser.parse_string ~uri:"t" "<r><a><b/></a></r>");
  let src = "with $x seeded by doc(\"t\")/r recurse ($x/a except $x/b)" in
  let (p, spans) = Parser.parse_program_spans src in
  let a = Analyze.analyze ~spans p in
  let r = List.hd a.Analyze.ifps in
  checkb "blamed" false r.Analyze.syntactic;
  checkb "repairable" true r.Analyze.hint_repairable;
  checkb "hint advertised" true (has_code "FQ032" a);
  (* the algebraic push blocks at the difference operator … *)
  let outcome =
    match Fixq.plan_of_first_ifp ~registry p with
    | Some (fix_id, plan) -> Push.check ~fix_id plan
    | None -> Alcotest.fail "expected a compilable plan"
  in
  checkb "push blocked" false outcome.Push.distributive;
  (match outcome.Push.blocking with
  | Some b -> checkb "blocked at difference" true (String.length b > 0 && b.[0] = '\\')
  | None -> Alcotest.fail "expected a blocking operator");
  (* … and the FQ031 mapping lands on the except construct *)
  (match Analyze.push_block_diag ~spans r outcome with
  | Some d ->
    checks "code" "FQ031" d.Diag.code;
    checkb "mapped to the except" true (d.Diag.loc = Some (1, 39))
  | None -> Alcotest.fail "expected FQ031");
  (* apply the hint; both checkers must now confirm *)
  let (p', applied) = Analyze.apply_hints p a in
  checki "one hint applied" 1 applied;
  let a' = Analyze.analyze p' in
  checkb "syntactic after repair" true
    (List.hd a'.Analyze.ifps).Analyze.syntactic;
  let outcome' =
    match Fixq.plan_of_first_ifp ~registry p' with
    | Some (fix_id, plan) -> Push.check ~fix_id plan
    | None -> Alcotest.fail "expected a compilable plan after repair"
  in
  checkb "algebraic after repair" true outcome'.Push.distributive;
  (* the repair preserves the query's meaning on this document *)
  let run p =
    Xdm.Serializer.seq_to_string
      (Fixq.run_program ~registry ~engine:(Fixq.Interpreter Fixq.Auto) p)
        .Fixq.result
  in
  checks "same result" (run p) (run p')

let test_apply_hints_skips_unrepairable () =
  (* constructor body: the hint cannot make it distributive *)
  let (p, _, a) = analyze "with $x seeded by <a/> recurse <b/>" in
  let r = List.hd a.Analyze.ifps in
  checkb "not repairable" false r.Analyze.hint_repairable;
  let (_, applied) = Analyze.apply_hints p a in
  checki "nothing applied" 0 applied

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ("spans",
       [ Alcotest.test_case "line_col_of" `Quick test_line_col_of;
         Alcotest.test_case "locate nodes" `Quick test_spans_locate_nodes;
         Alcotest.test_case "constants unspanned" `Quick
           test_spans_constant_constructors_unspanned ]);
      ("lint",
       [ Alcotest.test_case "unused let" `Quick test_unused_let;
         Alcotest.test_case "unused for" `Quick test_unused_for;
         Alcotest.test_case "unused function" `Quick test_unused_function;
         Alcotest.test_case "shadowing in ifp body" `Quick
           test_shadowing_in_ifp_body;
         Alcotest.test_case "static located" `Quick test_static_located ]);
      ("blame",
       [ Alcotest.test_case "except" `Quick test_blame_except;
         Alcotest.test_case "inside function body" `Quick
           test_blame_inside_function_body;
         Alcotest.test_case "preserves explain" `Quick
           test_blame_preserves_explain ]);
      ("divergence",
       [ Alcotest.test_case "classes" `Quick test_divergence_classes;
         Alcotest.test_case "diagnostics" `Quick test_divergence_diagnostics ]);
      ("scatter",
       [ Alcotest.test_case "eligibility" `Quick test_scatter_eligible ]);
      ("hints",
       [ Alcotest.test_case "repair roundtrip" `Quick
           test_hint_repair_roundtrip;
         Alcotest.test_case "skips unrepairable" `Quick
           test_apply_hints_skips_unrepairable ]) ]
