(* Lexer and parser tests: token stream, precedence, FLWOR desugaring,
   constructors, the IFP syntactic form, prologs, sequence types and
   error reporting. *)

module Lexer = Fixq_lang.Lexer
module Parser = Fixq_lang.Parser
module Semiring = Fixq_semiring.Semiring
open Fixq_lang.Ast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expr = Alcotest.testable pp_expr equal_expr

let parse = Parser.parse_expr

let check_expr msg expected src = Alcotest.check expr msg expected (parse src)

let int_ n = Literal (Fixq_xdm.Atom.Int n)
let str s = Literal (Fixq_xdm.Atom.Str s)
let child n = Axis_step { axis = Fixq_xdm.Axis.Child; test = Fixq_xdm.Axis.Name n }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens src =
  let lx = Lexer.create src in
  let rec go acc =
    match Lexer.next lx with
    | Lexer.EOF -> List.rev acc
    | t -> go (t :: acc)
  in
  go []

let test_lexer_basic () =
  check "names and vars" true
    (tokens "for $x in doc"
    = [ Lexer.NAME "for"; Lexer.VAR "x"; Lexer.NAME "in"; Lexer.NAME "doc" ]);
  check "operators" true
    (tokens "<= << := ::"
    = [ Lexer.LE; Lexer.LT2; Lexer.ASSIGN; Lexer.AXIS2 ]);
  check "numbers" true
    (tokens "1 2.5 3e2"
    = [ Lexer.INT 1; Lexer.DBL 2.5; Lexer.DBL 300.0 ]);
  check "strings with escapes" true
    (tokens {|"a""b" 'c'|} = [ Lexer.STRING "a\"b"; Lexer.STRING "c" ]);
  check "prefixed name" true (tokens "fn:id" = [ Lexer.NAME "fn:id" ])

let test_lexer_comments () =
  check "nested comments skipped" true
    (tokens "1 (: outer (: inner :) still :) 2"
    = [ Lexer.INT 1; Lexer.INT 2 ])

let test_lexer_errors () =
  let fails s =
    try
      ignore (tokens s);
      false
    with Lexer.Error _ -> true
  in
  check "unterminated string" true (fails {|"abc|});
  check "unterminated comment" true (fails "(: no end");
  check "stray bang" true (fails "!")

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let test_literals () =
  check_expr "int" (int_ 5) "5";
  check_expr "string" (str "hi") {|"hi"|};
  check_expr "empty" Empty_seq "()";
  check_expr "sequence" (Sequence (int_ 1, int_ 2)) "1, 2"

let test_arith_precedence () =
  check_expr "mul binds tighter"
    (Arith (Add, int_ 1, Arith (Mul, int_ 2, int_ 3)))
    "1 + 2 * 3";
  check_expr "unary minus" (Neg (int_ 3)) "- 3";
  check_expr "idiv/mod"
    (Arith (Mod, Arith (Idiv, int_ 7, int_ 2), int_ 3))
    "7 idiv 2 mod 3";
  check_expr "range below comparison"
    (Gen_cmp (Eq, Range (int_ 1, int_ 3), int_ 2))
    "1 to 3 = 2"

let test_comparisons () =
  check_expr "general" (Gen_cmp (Le, Var "x", int_ 3)) "$x <= 3";
  check_expr "value" (Val_cmp (Eq, Var "x", int_ 3)) "$x eq 3";
  check_expr "node is" (Node_is (Var "a", Var "b")) "$a is $b";
  check_expr "before" (Node_before (Var "a", Var "b")) "$a << $b";
  check_expr "and/or precedence"
    (Or (And (Var "a", Var "b"), Var "c"))
    "$a and $b or $c"

let test_set_ops () =
  check_expr "union |" (Union (Var "a", Var "b")) "$a | $b";
  check_expr "union kw" (Union (Var "a", Var "b")) "$a union $b";
  check_expr "except binds tighter"
    (Union (Var "a", Except (Var "b", Var "c")))
    "$a union $b except $c"

let test_paths () =
  check_expr "child chain"
    (Path (Path (Var "x", child "a"), child "b"))
    "$x/a/b";
  check_expr "attribute"
    (Path
       ( Var "x",
         Axis_step { axis = Fixq_xdm.Axis.Attribute; test = Fixq_xdm.Axis.Name "id" } ))
    "$x/@id";
  check_expr "descendant shorthand"
    (Path
       ( Path
           ( Var "x",
             Axis_step
               { axis = Fixq_xdm.Axis.Descendant_or_self;
                 test = Fixq_xdm.Axis.Kind_node } ),
         child "a" ))
    "$x//a";
  check_expr "explicit axis"
    (Path
       ( Var "x",
         Axis_step
           { axis = Fixq_xdm.Axis.Following_sibling;
             test = Fixq_xdm.Axis.Name "s" } ))
    "$x/following-sibling::s";
  (* the predicate belongs to the step: positions count per context
     node of $x, not over the whole path result *)
  check_expr "predicate"
    (Path (Var "x", Filter (child "a", int_ 1)))
    "$x/a[1]";
  check_expr "root" Root "/";
  check_expr "absolute path" (Path (Root, child "r")) "/r";
  check_expr "context dot" Context_item ".";
  check_expr "parent"
    (Axis_step { axis = Fixq_xdm.Axis.Parent; test = Fixq_xdm.Axis.Kind_node })
    "..";
  (* keywords still work as element names in paths *)
  check_expr "keyword as name test"
    (Path (Var "x", child "union"))
    "$x/union";
  check_expr "kind test in path"
    (Path (Var "x", Axis_step { axis = Fixq_xdm.Axis.Child; test = Fixq_xdm.Axis.Kind_text }))
    "$x/text()"

let test_function_calls () =
  check_expr "no args" (Call ("true", [])) "true()";
  check_expr "normalizes fn:" (Call ("count", [ Var "x" ])) "fn:count($x)";
  check_expr "nested"
    (Call ("count", [ Call ("distinct-values", [ Var "x" ]) ]))
    "count(distinct-values($x))"

let test_flwor () =
  check_expr "simple for"
    (For { var = "x"; pos = None; source = Var "s"; body = Var "x" })
    "for $x in $s return $x";
  check_expr "positional"
    (For { var = "x"; pos = Some "i"; source = Var "s"; body = Var "i" })
    "for $x at $i in $s return $i";
  check_expr "where desugars to if"
    (For
       { var = "x"; pos = None; source = Var "s";
         body = If (Gen_cmp (Gt, Var "x", int_ 1), Var "x", Empty_seq) })
    "for $x in $s where $x > 1 return $x";
  check_expr "multiple bindings nest"
    (For
       { var = "a"; pos = None; source = Var "s";
         body =
           For { var = "b"; pos = None; source = Var "t"; body = Var "b" } })
    "for $a in $s, $b in $t return $b";
  check_expr "let"
    (Let { var = "v"; value = int_ 1; body = Var "v" })
    "let $v := 1 return $v";
  check_expr "mixed clauses"
    (Let
       { var = "v"; value = Var "s";
         body = For { var = "x"; pos = None; source = Var "v"; body = Var "x" }
       })
    "let $v := $s for $x in $v return $x"

let test_quantified () =
  check_expr "some"
    (Quantified (Some_, "x", Var "s", Gen_cmp (Eq, Var "x", int_ 1)))
    "some $x in $s satisfies $x = 1";
  check_expr "every"
    (Quantified (Every, "x", Var "s", Gen_cmp (Eq, Var "x", int_ 1)))
    "every $x in $s satisfies $x = 1"

let test_instance_of () =
  check_expr "instance of"
    (Instance_of (Var "x", Typed (It_node, Star)))
    "$x instance of node()*";
  check_expr "binds tighter than comparison"
    (Gen_cmp (Eq, Instance_of (Var "x", Typed (It_atomic "integer", One)),
              Call ("true", [])))
    "$x instance of xs:integer = true()"

let test_cast_parse () =
  check_expr "cast" (Cast (Var "x", "integer", false)) "$x cast as xs:integer";
  check_expr "cast optional" (Cast (Var "x", "double", true))
    "$x cast as xs:double?";
  check_expr "castable" (Castable (Var "x", "string", false))
    "$x castable as xs:string";
  check_expr "cast binds tighter than instance"
    (Instance_of (Cast (Var "x", "integer", false), Typed (It_atomic "integer", One)))
    "$x cast as xs:integer instance of xs:integer"

let test_if_typeswitch () =
  check_expr "if" (If (Var "c", int_ 1, int_ 2)) "if ($c) then 1 else 2";
  check_expr "typeswitch"
    (Typeswitch
       ( Var "x",
         [ (Typed (It_element None, One), Some "e", Var "e");
           (Typed (It_atomic "integer", One), None, int_ 0) ],
         None, Empty_seq ))
    {|typeswitch ($x)
      case $e as element() return $e
      case xs:integer return 0
      default return ()|}

let test_ifp_form () =
  check_expr "with..recurse"
    (Ifp
       { var = "x"; seed = Var "s"; body = Path (Var "x", child "a");
         accum = None })
    "with $x seeded by $s recurse $x/a";
  (* 'with' still usable as an element name *)
  check_expr "with as name test" (Path (Var "d", child "with")) "$d/with"

let test_accumulate_clause () =
  let ifp accum =
    Ifp { var = "x"; seed = Var "s"; body = Path (Var "x", child "a"); accum }
  in
  check_expr "accumulate by bool"
    (ifp (Some { kind = Semiring.Bool; weight = None }))
    "with $x seeded by $s recurse $x/a accumulate by bool";
  check_expr "accumulate by count"
    (ifp (Some { kind = Semiring.Count; weight = None }))
    "with $x seeded by $s recurse $x/a accumulate by count";
  check_expr "accumulate by why"
    (ifp (Some { kind = Semiring.Why; weight = None }))
    "with $x seeded by $s recurse $x/a accumulate by why";
  check_expr "accumulate by min(weight)"
    (ifp
       (Some
          { kind = Semiring.Min; weight = Some (parse "number(./@cost)") }))
    "with $x seeded by $s recurse $x/a accumulate by min(number(./@cost))";
  check_expr "accumulate by max(weight)"
    (ifp
       (Some
          { kind = Semiring.Max; weight = Some (parse "number(./@rating)") }))
    "with $x seeded by $s recurse $x/a accumulate by max(number(./@rating))";
  (* 'accumulate' is not reserved: usable as an element name after a body *)
  check_expr "accumulate as name test"
    (Path (Var "d", child "accumulate"))
    "$d/accumulate"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_accumulate_errors () =
  let error s =
    try
      ignore (Parser.parse_expr s);
      Alcotest.failf "expected a parse error: %s" s
    with Parser.Error { line; col; msg } -> (line, col, msg)
  in
  let q = "with $x seeded by $s recurse $x/a" in
  (* Unknown semiring kind: located at the kind token. *)
  let (line, _, msg) = error (q ^ " accumulate by tropical") in
  check "names the kind" true (contains msg "tropical");
  check "lists the valid kinds" true (contains msg "min");
  check_int "unknown kind line" 1 line;
  (* min/max demand a weight; the rest refuse one. *)
  let (_, _, msg) = error (q ^ " accumulate by min") in
  check "min needs weight" true (contains msg "weight");
  let (_, _, msg) = error (q ^ " accumulate by count(number(./@cost))") in
  check "count refuses weight" true (contains msg "weight");
  (* Errors on later lines carry the right line number. *)
  let (line, col, _) = error (q ^ "\naccumulate by wibble") in
  check_int "second-line clause located" 2 line;
  check "column past the keyword" true (col > 1);
  (* Dangling clause fragments fail rather than parse as paths. *)
  ignore (error (q ^ " accumulate min"));
  ignore (error (q ^ " accumulate by"))

let test_constructors () =
  check_expr "direct empty" (Elem_constr ("a", [], [])) "<a/>";
  check_expr "direct attrs"
    (Elem_constr ("a", [ ("k", [ A_lit "v" ]) ], []))
    {|<a k="v"/>|};
  check_expr "attr with expr"
    (Elem_constr ("a", [ ("k", [ A_lit "p"; A_expr (Var "x") ]) ], []))
    {|<a k="p{$x}"/>|};
  check_expr "nested content"
    (Elem_constr
       ( "a", [],
         [ Text_constr (str "hi "); Elem_constr ("b", [], []); Var "x" ] ))
    "<a>hi <b/>{$x}</a>";
  check_expr "brace escape"
    (Elem_constr ("a", [], [ Text_constr (str "{x}") ]))
    "<a>{{x}}</a>";
  check_expr "computed element"
    (Comp_elem ("a", Var "x"))
    "element a { $x }";
  check_expr "computed text" (Text_constr (Var "x")) "text { $x }";
  check_expr "computed attribute"
    (Attr_constr ("k", Var "x"))
    "attribute k { $x }";
  check_expr "entity in content"
    (Elem_constr ("a", [], [ Text_constr (str "x<y") ]))
    "<a>x&lt;y</a>"

let test_programs () =
  let p =
    Parser.parse_program
      {|declare function local:f($x as node()*) as node()* { $x };
        declare variable $d := 42;
        f($d)|}
  in
  check_int "one function" 1 (List.length p.functions);
  check_int "one variable" 1 (List.length p.variables);
  check "local: prefix stripped" true
    ((List.hd p.functions).fname = "f");
  check "main is a call" true
    (equal_expr p.main (Call ("f", [ Var "d" ])))

let test_seq_types () =
  let st = Alcotest.testable pp_seq_type equal_seq_type in
  Alcotest.check st "node()*" (Typed (It_node, Star))
    (Parser.parse_seq_type "node()*");
  Alcotest.check st "element(a)+"
    (Typed (It_element (Some "a"), Plus))
    (Parser.parse_seq_type "element(a)+");
  Alcotest.check st "xs:integer?"
    (Typed (It_atomic "integer", Opt))
    (Parser.parse_seq_type "xs:integer?");
  Alcotest.check st "empty-sequence()" Empty_sequence
    (Parser.parse_seq_type "empty-sequence()")

let test_seq_type_errors () =
  let fails s =
    try
      ignore (Parser.parse_seq_type s);
      false
    with Parser.Error _ -> true
  in
  check "unknown kind" true (fails "wibble()");
  check "trailing garbage" true (fails "node()* extra");
  check "bad occurrence position" true (fails "* node()")

let test_parse_errors () =
  let fails s =
    try
      ignore (Parser.parse_expr s);
      false
    with Parser.Error _ -> true
  in
  check "dangling operator" true (fails "1 +");
  check "unbalanced paren" true (fails "(1, 2");
  check "bad for" true (fails "for $x return 1");
  check "mismatched constructor" true (fails "<a></b>");
  check "trailing junk" true (fails "1 2");
  check "missing recurse" true (fails "with $x seeded by $s $x")

let test_error_position () =
  try
    ignore (Parser.parse_expr "1 +\n  *")
  with Parser.Error { line; _ } -> check_int "error line" 2 line

(* Round-trip property: parse (show e) is not available (no printer to
   source), so instead check parser determinism on a corpus. *)
let corpus =
  [ "1 + 2 * 3"; "$x/a[@id = \"k\"]/b"; "for $x in $s where $x > 1 return $x";
    "with $x seeded by $s recurse $x/a"; "<a k=\"{$v}\">{$x}text</a>";
    "some $v in $s satisfies $v = 1"; "count($x) = 0 or empty($y)";
    "($a, $b) except $c"; "//a/../b[2][@k]" ]

let test_determinism () =
  List.iter
    (fun src ->
      let a = parse src and b = parse src in
      if not (equal_expr a b) then Alcotest.failf "nondeterministic: %s" src)
    corpus;
  check "deterministic" true true

let () =
  Alcotest.run "parser"
    [ ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors ] );
      ( "expressions",
        [ Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "arithmetic precedence" `Quick
            test_arith_precedence;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "set operators" `Quick test_set_ops;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "function calls" `Quick test_function_calls;
          Alcotest.test_case "flwor" `Quick test_flwor;
          Alcotest.test_case "quantifiers" `Quick test_quantified;
          Alcotest.test_case "instance of" `Quick test_instance_of;
          Alcotest.test_case "cast" `Quick test_cast_parse;
          Alcotest.test_case "if/typeswitch" `Quick test_if_typeswitch;
          Alcotest.test_case "ifp form" `Quick test_ifp_form;
          Alcotest.test_case "accumulate clause" `Quick test_accumulate_clause;
          Alcotest.test_case "accumulate errors" `Quick
            test_accumulate_errors;
          Alcotest.test_case "constructors" `Quick test_constructors ] );
      ( "programs",
        [ Alcotest.test_case "prolog" `Quick test_programs;
          Alcotest.test_case "sequence types" `Quick test_seq_types;
          Alcotest.test_case "sequence type errors" `Quick
            test_seq_type_errors;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_position;
          Alcotest.test_case "determinism" `Quick test_determinism ] ) ]
