(* The SQL:1999 WITH RECURSIVE substrate: parsing, plain selects, the
   Section 2 curriculum example, Naïve/Delta agreement, and the
   standard's linearity restriction. *)

module Sqldb = Fixq_sqlrec.Sqldb
module Sqlrec = Fixq_sqlrec.Sqlrec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The relational curriculum encoding of Section 2:
   C(course, prerequisite). *)
let db () =
  let db = Sqldb.create () in
  Sqldb.add_table db "C"
    { Sqldb.columns = [ "course"; "prerequisite" ];
      rows =
        [ [ Sqldb.S "c1"; Sqldb.S "c2" ]; [ Sqldb.S "c1"; Sqldb.S "c3" ];
          [ Sqldb.S "c2"; Sqldb.S "c4" ]; [ Sqldb.S "c4"; Sqldb.S "c2" ] ] };
  db

(* The paper's Section 2 query, verbatim. *)
let prerequisites_query =
  {|WITH RECURSIVE P(course_code) AS
      ((SELECT prerequisite
        FROM C
        WHERE course = 'c1')
       UNION ALL
       (SELECT C.prerequisite
        FROM P, C
        WHERE P.course_code = C.course))
    SELECT DISTINCT * FROM P;|}

let codes (t : Sqldb.table) =
  List.map
    (fun row -> match row with [ Sqldb.S s ] -> s | _ -> "?")
    t.Sqldb.rows
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_shape () =
  let q = Sqlrec.parse prerequisites_query in
  check "rec name" true (q.Sqlrec.rec_name = "p");
  check "columns" true (q.Sqlrec.rec_columns = [ "course_code" ]);
  check_int "seed has one table" 1 (List.length q.Sqlrec.seed.Sqlrec.from);
  check_int "body joins P and C" 2 (List.length q.Sqlrec.body.Sqlrec.from);
  check "final is distinct" true q.Sqlrec.final.Sqlrec.distinct

let test_parse_errors () =
  let fails s =
    try
      ignore (Sqlrec.parse s);
      false
    with Sqlrec.Error _ -> true
  in
  check "missing with" true (fails "SELECT * FROM t");
  check "missing union all" true
    (fails "WITH RECURSIVE p(c) AS (SELECT a FROM t) SELECT * FROM p");
  check "unterminated string" true (fails "WITH RECURSIVE p(c) AS 'oops")

let test_plain_select () =
  let db = db () in
  let s = Sqlrec.parse_select "SELECT prerequisite FROM C WHERE course = 'c1'" in
  let t = Sqlrec.run_select db s in
  check_int "two direct prerequisites" 2 (List.length t.Sqldb.rows);
  let s2 = Sqlrec.parse_select "SELECT * FROM C" in
  check_int "star select" 4 (List.length (Sqlrec.run_select db s2).Sqldb.rows);
  let s3 =
    Sqlrec.parse_select
      "SELECT a.course FROM C a, C b WHERE a.prerequisite = b.course"
  in
  check_int "self join with aliases" 3
    (List.length (Sqlrec.run_select db s3).Sqldb.rows)

(* ------------------------------------------------------------------ *)
(* WITH RECURSIVE evaluation                                           *)
(* ------------------------------------------------------------------ *)

let test_naive_result () =
  let r = Sqlrec.run ~algorithm:Sqlrec.Naive (db ()) (Sqlrec.parse prerequisites_query) in
  Alcotest.(check (list string))
    "transitive prerequisites of c1" [ "c2"; "c3"; "c4" ] (codes r.Sqlrec.result)

let test_delta_result () =
  let r = Sqlrec.run ~algorithm:Sqlrec.Delta (db ()) (Sqlrec.parse prerequisites_query) in
  Alcotest.(check (list string))
    "delta agrees" [ "c2"; "c3"; "c4" ] (codes r.Sqlrec.result)

let test_delta_feeds_fewer_rows () =
  let q = Sqlrec.parse prerequisites_query in
  let rn = Sqlrec.run ~algorithm:Sqlrec.Naive (db ()) q in
  let rd = Sqlrec.run ~algorithm:Sqlrec.Delta (db ()) q in
  check "delta feeds fewer rows" true (rd.Sqlrec.rows_fed < rn.Sqlrec.rows_fed)

let test_empty_seed () =
  let q =
    Sqlrec.parse
      {|WITH RECURSIVE P(c) AS
          ((SELECT prerequisite FROM C WHERE course = 'nope')
           UNION ALL
           (SELECT C.prerequisite FROM P, C WHERE P.c = C.course))
        SELECT * FROM P|}
  in
  let r = Sqlrec.run ~algorithm:Sqlrec.Naive (db ()) q in
  check_int "empty fixpoint" 0 (List.length r.Sqlrec.result.Sqldb.rows)

let test_cycle_terminates () =
  (* c2 → c4 → c2: set semantics terminates on cycles *)
  let q =
    Sqlrec.parse
      {|WITH RECURSIVE P(c) AS
          ((SELECT prerequisite FROM C WHERE course = 'c2')
           UNION ALL
           (SELECT C.prerequisite FROM P, C WHERE P.c = C.course))
        SELECT DISTINCT * FROM P|}
  in
  let r = Sqlrec.run ~algorithm:Sqlrec.Delta (db ()) q in
  Alcotest.(check (list string)) "cycle closure" [ "c2"; "c4" ]
    (codes r.Sqlrec.result)

(* larger instance: naive and delta agree, delta does less work *)
let test_chain_scaling () =
  let db = Sqldb.create () in
  let n = 60 in
  Sqldb.add_table db "E"
    { Sqldb.columns = [ "src"; "dst" ];
      rows =
        List.init (n - 1) (fun i ->
            [ Sqldb.S (Printf.sprintf "n%d" i);
              Sqldb.S (Printf.sprintf "n%d" (i + 1)) ]) };
  let q =
    Sqlrec.parse
      {|WITH RECURSIVE R(x) AS
          ((SELECT dst FROM E WHERE src = 'n0')
           UNION ALL
           (SELECT E.dst FROM R, E WHERE R.x = E.src))
        SELECT * FROM R|}
  in
  let rn = Sqlrec.run ~algorithm:Sqlrec.Naive db q in
  let rd = Sqlrec.run ~algorithm:Sqlrec.Delta db q in
  check_int "chain closure (naive)" (n - 1)
    (List.length rn.Sqlrec.result.Sqldb.rows);
  check_int "chain closure (delta)" (n - 1)
    (List.length rd.Sqlrec.result.Sqldb.rows);
  (* naive feeds Θ(n²) rows, delta Θ(n) *)
  check "delta row work is linear-ish" true
    (rd.Sqlrec.rows_fed < n * 3 && rn.Sqlrec.rows_fed > n * 10)

(* ------------------------------------------------------------------ *)
(* Linearity (SQL:1999's restriction, Section 6)                       *)
(* ------------------------------------------------------------------ *)

let nonlinear_query =
  {|WITH RECURSIVE P(c) AS
      ((SELECT prerequisite FROM C WHERE course = 'c1')
       UNION ALL
       (SELECT a.c FROM P a, P b WHERE a.c = b.c))
    SELECT * FROM P|}

let test_linearity_check () =
  check "paper query is linear" true
    (Sqlrec.is_linear (Sqlrec.parse prerequisites_query));
  check "double reference is nonlinear" false
    (Sqlrec.is_linear (Sqlrec.parse nonlinear_query))

let test_linearity_enforced () =
  check "standard mode rejects nonlinear" true
    (try
       ignore
         (Sqlrec.run ~algorithm:Sqlrec.Naive (db ())
            (Sqlrec.parse nonlinear_query));
       false
     with Sqlrec.Error _ -> true);
  (* with enforcement off it still evaluates (and terminates) *)
  let r =
    Sqlrec.run ~enforce_linearity:false ~algorithm:Sqlrec.Naive (db ())
      (Sqlrec.parse nonlinear_query)
  in
  check_int "nonlinear evaluates without the standard's guard" 2
    (List.length r.Sqlrec.result.Sqldb.rows)

let test_int_literals_and_errors () =
  let db = Sqldb.create () in
  Sqldb.add_table db "T"
    { Sqldb.columns = [ "k"; "v" ];
      rows = [ [ Sqldb.I 1; Sqldb.S "a" ]; [ Sqldb.I 2; Sqldb.S "b" ] ] };
  let t =
    Sqlrec.run_select db (Sqlrec.parse_select "SELECT v FROM T WHERE k = 2")
  in
  check_int "int literal match" 1 (List.length t.Sqldb.rows);
  let fails s =
    try
      ignore (Sqlrec.run_select db (Sqlrec.parse_select s));
      false
    with Sqlrec.Error _ -> true
  in
  check "unknown table" true (fails "SELECT x FROM missing");
  check "unknown column" true (fails "SELECT nope FROM T");
  check "ambiguous column" true
    (fails "SELECT k FROM T a, T b WHERE a.k = b.k")

let test_comparison_operators () =
  let db = Sqldb.create () in
  Sqldb.add_table db "T"
    { Sqldb.columns = [ "k"; "v" ];
      rows =
        [ [ Sqldb.I 1; Sqldb.S "a" ];
          [ Sqldb.I 2; Sqldb.S "b" ];
          [ Sqldb.I 3; Sqldb.S "c" ] ] };
  let count s =
    List.length (Sqlrec.run_select db (Sqlrec.parse_select s)).Sqldb.rows
  in
  check_int "<> excludes one row" 2 (count "SELECT v FROM T WHERE k <> 2");
  check_int "< strict" 1 (count "SELECT v FROM T WHERE k < 2");
  check_int "<= inclusive" 2 (count "SELECT v FROM T WHERE k <= 2");
  check_int "> strict" 1 (count "SELECT v FROM T WHERE k > 2");
  check_int ">= inclusive" 2 (count "SELECT v FROM T WHERE k >= 2");
  check_int "string ordering" 2 (count "SELECT k FROM T WHERE v >= 'b'");
  check_int "conjunction of comparisons" 1
    (count "SELECT v FROM T WHERE k > 1 AND k < 3");
  check_int "self-join strict order" 3
    (count "SELECT a.k, b.k FROM T a, T b WHERE a.k < b.k");
  let fails s =
    try
      ignore (Sqlrec.run_select db (Sqlrec.parse_select s));
      false
    with Sqlrec.Error _ -> true
  in
  check "mixed-kind ordering rejected" true
    (fails "SELECT v FROM T WHERE k < 'b'");
  check "mixed-kind inequality allowed" false
    (fails "SELECT v FROM T WHERE k <> 'b'")

let test_value_semantics () =
  check "string/int comparable" true
    (Sqldb.value_equal (Sqldb.S "3") (Sqldb.I 3));
  check "set equal" true
    (Sqldb.set_equal
       { Sqldb.columns = [ "a" ]; rows = [ [ Sqldb.I 1 ]; [ Sqldb.I 2 ] ] }
       { Sqldb.columns = [ "a" ]; rows = [ [ Sqldb.I 2 ]; [ Sqldb.I 1 ]; [ Sqldb.I 1 ] ] })

(* Property: naive = delta on random edge relations *)
let graph_gen =
  let open QCheck2.Gen in
  let node = map (Printf.sprintf "n%d") (int_bound 6) in
  list_size (int_range 1 14) (pair node node)

let prop_naive_eq_delta =
  QCheck2.Test.make ~count:150
    ~name:"WITH RECURSIVE: naive = delta on random graphs" graph_gen
    (fun edges ->
      let db = Sqldb.create () in
      Sqldb.add_table db "E"
        { Sqldb.columns = [ "src"; "dst" ];
          rows = List.map (fun (a, b) -> [ Sqldb.S a; Sqldb.S b ]) edges };
      let q =
        Sqlrec.parse
          {|WITH RECURSIVE R(x) AS
              ((SELECT dst FROM E WHERE src = 'n0')
               UNION ALL
               (SELECT E.dst FROM R, E WHERE R.x = E.src))
            SELECT DISTINCT * FROM R|}
      in
      let rn = Sqlrec.run ~algorithm:Sqlrec.Naive db q in
      let rd = Sqlrec.run ~algorithm:Sqlrec.Delta db q in
      Sqldb.set_equal rn.Sqlrec.result rd.Sqlrec.result)

let () =
  Alcotest.run "sqlrec"
    [ ( "parsing",
        [ Alcotest.test_case "query shape" `Quick test_parse_shape;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "plain selects" `Quick test_plain_select ] );
      ( "recursion",
        [ Alcotest.test_case "naive" `Quick test_naive_result;
          Alcotest.test_case "delta" `Quick test_delta_result;
          Alcotest.test_case "delta does less work" `Quick
            test_delta_feeds_fewer_rows;
          Alcotest.test_case "empty seed" `Quick test_empty_seed;
          Alcotest.test_case "cycles" `Quick test_cycle_terminates;
          Alcotest.test_case "chain scaling" `Quick test_chain_scaling ] );
      ( "standard",
        [ Alcotest.test_case "linearity check" `Quick test_linearity_check;
          Alcotest.test_case "linearity enforced" `Quick
            test_linearity_enforced;
          Alcotest.test_case "literals and errors" `Quick
            test_int_literals_and_errors;
          Alcotest.test_case "comparison operators" `Quick
            test_comparison_operators;
          Alcotest.test_case "values" `Quick test_value_semantics ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_naive_eq_delta ]) ]
