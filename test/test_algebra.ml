(* The Relational XQuery substrate: relations, plan evaluation, the
   loop-lifting compiler (differential against the interpreter), µ/µ∆
   and the algebraic ∪ push-up (Table 1, Figures 7–9). *)

module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Axis = Fixq_xdm.Axis
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Parser = Fixq_lang.Parser
module Eval = Fixq_lang.Eval
module Stats = Fixq_lang.Stats
module Value = Fixq_algebra.Value
module Relation = Fixq_algebra.Relation
module Plan = Fixq_algebra.Plan
module Plan_eval = Fixq_algebra.Plan_eval
module Compile = Fixq_algebra.Compile
module Push = Fixq_algebra.Push
module Optimize = Fixq_algebra.Optimize
module Render = Fixq_algebra.Render

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let registry = Doc_registry.create ()

let () =
  Doc_registry.register ~registry "curriculum.xml"
    (Xml_parser.parse_string ~strip_whitespace:true
       {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites/></course>
</curriculum>|});
  Doc_registry.register ~registry "small.xml"
    (Xml_parser.parse_string ~strip_whitespace:true
       {|<r><a k="1"><b>x</b></a><a k="2"><b>y</b><b>z</b></a><c k="1"/></r>|})

let pe () = Plan_eval.create ~registry ~stats:(Stats.create ()) ()

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

let rel schema rows = Relation.create schema rows

let test_relation_basics () =
  let r = rel [ "a"; "b" ] [ [| Value.Int 1; Value.Str "x" |] ] in
  check_int "cardinal" 1 (Relation.cardinal r);
  check "get" true (Relation.get r (List.hd (Relation.rows r)) "b" = Value.Str "x");
  check "bad width rejected" true
    (try
       ignore (rel [ "a" ] [ [| Value.Int 1; Value.Int 2 |] ]);
       false
     with Invalid_argument _ -> true)

let test_relation_setops () =
  let r =
    rel [ "a" ]
      [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 1 |] ]
  in
  check_int "distinct" 2 (Relation.cardinal (Relation.distinct r));
  let s = rel [ "a" ] [ [| Value.Int 1 |] ] in
  check_int "difference removes one occurrence" 2
    (Relation.cardinal (Relation.difference r s));
  check_int "union is bag union" 4
    (Relation.cardinal (Relation.union r s))

let test_relation_join () =
  let l = rel [ "k"; "x" ] [ [| Value.Int 1; Value.Str "a" |]; [| Value.Int 2; Value.Str "b" |] ] in
  let r = rel [ "k"; "y" ] [ [| Value.Int 1; Value.Str "c" |]; [| Value.Int 1; Value.Str "d" |] ] in
  let j = Relation.equi_join [ ("k", "k") ] l r in
  check_int "join cardinality" 2 (Relation.cardinal j);
  check "clash renamed" true (Relation.schema j = [ "k"; "x"; "k'"; "y" ]);
  let c = Relation.cross l r in
  check_int "cross" 4 (Relation.cardinal c)

let test_relation_group_number () =
  let r =
    rel [ "g"; "v" ]
      [ [| Value.Int 1; Value.Int 10 |]; [| Value.Int 1; Value.Int 30 |];
        [| Value.Int 2; Value.Int 20 |] ]
  in
  let counts = Relation.group_count ~partition:(Some "g") ~result:"n" r in
  check_int "two groups" 2 (Relation.cardinal counts);
  let numbered = Relation.number ~order:[ "v" ] ~partition:(Some "g") ~result:"rk" r in
  let ranks =
    List.map (fun row -> Relation.get numbered row "rk") (Relation.rows numbered)
  in
  check "ranks per group" true
    (List.sort compare ranks = [ Value.Int 1; Value.Int 1; Value.Int 2 ])

(* ------------------------------------------------------------------ *)
(* Plan evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let test_plan_schema_check () =
  check "bad projection rejected" true
    (try
       ignore (Plan.schema_of (Plan.Project ([ ("x", "nope") ], Plan.Doc "u")));
       false
     with Invalid_argument _ -> true);
  check "doc schema" true (Plan.schema_of (Plan.Doc "u") = [ "item" ])

let test_plan_step () =
  let doc = Option.get (Doc_registry.find ~registry "small.xml") in
  let plan =
    Plan.Step
      ( Axis.Descendant, Axis.Name "b", "item",
        Plan.Lit_table ([ "iter"; "item" ], [ [| Value.Int 1; Value.Nd doc |] ]) )
  in
  let out = Plan_eval.run (pe ()) plan in
  check_int "descendant b" 3 (Relation.cardinal out)

let test_plan_mu_counts () =
  (* µ over a child-step body computes the descendant closure *)
  let doc = Option.get (Doc_registry.find ~registry "small.xml") in
  let fix_id = Plan.fresh_fix_id () in
  let body =
    Plan.Distinct
      (Plan.Step (Axis.Child, Axis.Kind_node, "item", Plan.Fix_ref (fix_id, [ "iter"; "item" ])))
  in
  let seed =
    Plan.Lit_table ([ "iter"; "item" ], [ [| Value.Int 1; Value.Nd doc |] ])
  in
  let stats = Stats.create () in
  let t = Plan_eval.create ~registry ~stats () in
  let naive = Plan_eval.run t (Plan.Mu { Plan.fix_id; seed; body }) in
  let naive_fed = Stats.nodes_fed stats in
  let stats2 = Stats.create () in
  let t2 = Plan_eval.create ~registry ~stats:stats2 () in
  let delta = Plan_eval.run t2 (Plan.Mu_delta { Plan.fix_id; seed; body }) in
  check_int "closure size equal" (Relation.cardinal naive) (Relation.cardinal delta);
  check "delta feeds fewer tuples" true (Stats.nodes_fed stats2 < naive_fed)

let test_theta_join () =
  let l = rel [ "iter"; "v" ] [ [| Value.Int 1; Value.Int 5 |]; [| Value.Int 1; Value.Int 9 |] ] in
  let r = rel [ "iter"; "w" ] [ [| Value.Int 1; Value.Int 7 |] ] in
  let plan =
    Plan.Join
      ( { Plan.equi = [ ("iter", "iter") ];
          theta = [ ("v", Plan.Clt, "w") ] },
        Plan.Lit_table ([ "iter"; "v" ], Relation.rows l),
        Plan.Lit_table ([ "iter"; "w" ], Relation.rows r) )
  in
  check_int "theta filters" 1 (Relation.cardinal (Plan_eval.run (pe ()) plan))

let test_aggregates () =
  let data =
    Plan.Lit_table
      ( [ "iter"; "item" ],
        [ [| Value.Int 1; Value.Int 5 |]; [| Value.Int 1; Value.Int 7 |];
          [| Value.Int 2; Value.Int 3 |] ] )
  in
  let run_agg agg =
    let spec =
      { Plan.agg_result = "v"; agg_input = Some "item";
        agg_partition = Some "iter" }
    in
    Plan_eval.run (pe ()) (Plan.Aggr (agg, spec, data))
  in
  let sums = run_agg Plan.A_sum in
  check_int "two groups" 2 (Relation.cardinal sums);
  let vals rel =
    List.map (fun row -> Relation.get rel row "v") (Relation.rows rel)
    |> List.sort compare
  in
  check "sum values" true (vals sums = [ Value.Dbl 3.0; Value.Dbl 12.0 ]);
  check "max values" true
    (vals (run_agg Plan.A_max) = [ Value.Int 3; Value.Int 7 ]);
  check "min values" true
    (vals (run_agg Plan.A_min) = [ Value.Int 3; Value.Int 5 ])

let test_row_num_partition () =
  let data =
    Plan.Lit_table
      ( [ "iter"; "item" ],
        [ [| Value.Int 1; Value.Int 30 |]; [| Value.Int 1; Value.Int 10 |];
          [| Value.Int 2; Value.Int 20 |] ] )
  in
  let spec =
    { Plan.num_result = "rk"; num_order = [ "item" ];
      num_partition = Some "iter" }
  in
  let out = Plan_eval.run (pe ()) (Plan.Row_num (spec, data)) in
  let pairs =
    List.map
      (fun row -> (Relation.get out row "item", Relation.get out row "rk"))
      (Relation.rows out)
    |> List.sort compare
  in
  check "ranks ordered per partition" true
    (pairs
    = [ (Value.Int 10, Value.Int 1); (Value.Int 20, Value.Int 1);
        (Value.Int 30, Value.Int 2) ])

let test_value_module () =
  check "key distinguishes kinds" true
    (Value.key (Value.Int 1) <> Value.key (Value.Str "1"));
  check "compare_value promotes" true
    (Value.compare_value (Value.Str "3") (Value.Int 3) = 0);
  check "to_bool of node is EBV-ish" true
    (Value.to_bool (Value.Str "x"));
  check "as_node rejects atoms" true
    (try
       ignore (Value.as_node "t" (Value.Int 1));
       false
     with Fixq_xdm.Atom.Type_error _ -> true)

let test_construct_rejected () =
  check "ε evaluation is refused" true
    (try
       ignore
         (Plan_eval.run (pe ())
            (Plan.Construct ("element", Plan.Lit_table ([ "iter"; "item" ], []))));
       false
     with Plan_eval.Error _ -> true)

let test_mu_multi_iteration_lockstep () =
  (* the algebraic route's selling point: one µ advances the fixpoints
     of MANY outer iterations in lock-step, because iter is part of
     every tuple. Two iterations seeded with different subtrees must
     stay isolated. *)
  let doc = Option.get (Doc_registry.find ~registry "small.xml") in
  let root = List.hd (Node.children doc) in
  let kids = Node.children root in
  let a1 = List.nth kids 0 and a2 = List.nth kids 1 in
  let fix_id = Plan.fresh_fix_id () in
  let body =
    Plan.Distinct
      (Plan.Step
         (Axis.Child, Axis.Kind_node, "item",
          Plan.Fix_ref (fix_id, [ "iter"; "item" ])))
  in
  let seed =
    Plan.Lit_table
      ( [ "iter"; "item" ],
        [ [| Value.Int 1; Value.Nd a1 |]; [| Value.Int 2; Value.Nd a2 |] ] )
  in
  let rel = Plan_eval.run (pe ()) (Plan.Mu_delta { Plan.fix_id; seed; body }) in
  (* each iter's closure = descendants of its own seed *)
  let per_iter k =
    List.filter
      (fun row -> Relation.get rel row "iter" = Value.Int k)
      (Relation.rows rel)
    |> List.length
  in
  check_int "iter 1 sees a1's descendants" (Node.subtree_size a1 - 1)
    (per_iter 1);
  check_int "iter 2 sees a2's descendants" (Node.subtree_size a2 - 1)
    (per_iter 2);
  (* and no cross-contamination: total = sum *)
  check_int "iterations are isolated"
    (Node.subtree_size a1 - 1 + (Node.subtree_size a2 - 1))
    (Relation.cardinal rel)

(* ------------------------------------------------------------------ *)
(* Compiler differential vs interpreter                                *)
(* ------------------------------------------------------------------ *)

let interp_expr ?(vars = []) src =
  let ev = Eval.create ~registry () in
  Eval.eval_expr ev ~vars (Parser.parse_expr src)

let algebra_expr ?(bindings = []) src =
  let plan =
    Compile.expr ~functions:(Hashtbl.create 0) ~bindings
      (Parser.parse_expr src)
  in
  Compile.result_items (Plan_eval.run (pe ()) plan)

let differential msg ?vars src =
  let i = interp_expr ?vars src in
  let a = algebra_expr ?bindings:vars src in
  if not (Item.set_equal i a) then
    Alcotest.failf "%s: interpreter and algebra disagree on %s" msg src

let test_compile_differential_corpus () =
  List.iter
    (fun src -> differential "corpus" src)
    [ {|doc("small.xml")/r/a|};
      {|doc("small.xml")//b|};
      {|doc("small.xml")/r/a/@k|};
      {|doc("small.xml")//a[@k = "1"]|};
      {|doc("small.xml")//a[b = "y"]|};
      {|for $a in doc("small.xml")//a return $a/b|};
      {|for $a in doc("small.xml")//a where $a/@k = "2" return $a/b|};
      {|let $d := doc("small.xml") return $d//b|};
      {|doc("small.xml")//a union doc("small.xml")//c|};
      {|doc("small.xml")//* except doc("small.xml")//b|};
      {|doc("small.xml")//a intersect doc("small.xml")/r/*|};
      {|count(doc("small.xml")//b)|};
      {|if (exists(doc("small.xml")//c)) then doc("small.xml")//b else ()|};
      {|doc("small.xml")//a[1]|};
      {|doc("small.xml")//b[2]|};
      {|data(doc("small.xml")//a/@k)|};
      {|distinct-values(doc("small.xml")//@k)|};
      {|some $a in doc("small.xml")//a satisfies $a/@k = "2"|};
      {|every $a in doc("small.xml")//a satisfies exists($a/b)|};
      {|doc("curriculum.xml")/id("c2 c3")|};
      {|sum(data(doc("small.xml")//@k))|};
      {|max(data(doc("small.xml")//@k))|};
      {|min(data(doc("small.xml")//@k))|};
      {|doc("small.xml")//a/ancestor::r|};
      {|doc("small.xml")//b/parent::a|};
      {|doc("small.xml")//a/following-sibling::*|};
      {|doc("small.xml")//c/preceding-sibling::a|};
      {|doc("small.xml")//b/../@k|};
      {|not(empty(doc("small.xml")//c))|};
      {|boolean(doc("small.xml")//nothing)|};
      {|doc("small.xml")//a[exists(b)]|};
      {|doc("small.xml")//a[b = "y" or @k = "1"]|};
      {|doc("small.xml")//a[b = "y" and @k = "2"]|};
      {|let $a := doc("small.xml")//a let $b := doc("small.xml")//b
        return $a union $b|};
      {|for $a in doc("small.xml")//a
        for $b in $a/b
        return $b|};
      {|name((doc("small.xml")//*)[1])|} ]

let test_compile_vars () =
  let doc = Option.get (Doc_registry.find ~registry "small.xml") in
  differential "bound variable" ~vars:[ ("d", [ Item.N doc ]) ] "$d//b"

let test_compile_unsupported () =
  let fails src =
    try
      ignore
        (Compile.expr ~functions:(Hashtbl.create 0) (Parser.parse_expr src));
      false
    with Compile.Unsupported _ -> true
  in
  check "constructors unsupported" true (fails "<a/>");
  check "position unsupported" true
    (fails {|doc("small.xml")//a[position() = last()]|});
  check "ranges unsupported" true (fails "1 to 3");
  check "dynamic doc unsupported" true (fails {|doc(concat("a", ".xml"))|})

(* ------------------------------------------------------------------ *)
(* Compiled bodies, µ/µ∆ and the ∪ push-up                             *)
(* ------------------------------------------------------------------ *)

let compile_body ?(bindings = []) var src =
  Compile.body ~functions:(Hashtbl.create 0) ~recursion_var:var ~bindings
    (Parser.parse_expr src)

let test_body_roundtrip () =
  let doc = Option.get (Doc_registry.find ~registry "curriculum.xml") in
  let c = compile_body "x" "$x/id(./prerequisites/pre_code)" in
  check "no leftover binding refs" true (c.Compile.binding_refs = []);
  (* drive one application manually *)
  let ev = Eval.create ~registry () in
  let seed =
    Eval.eval_expr ev ~context:(Item.N doc)
      (Parser.parse_expr {|/curriculum/course[@code = "c1"]|})
  in
  let out =
    Plan_eval.run_with (pe ())
      [ (c.Compile.fix_id, Compile.items_relation seed) ]
      c.Compile.body
  in
  check_int "direct prerequisites" 2 (Relation.cardinal out)

let test_push_q1 () =
  let c = compile_body "x" "$x/id(./prerequisites/pre_code)" in
  let o = Push.check ~fix_id:c.Compile.fix_id c.Compile.body in
  check "Q1 distributive" true o.Push.distributive;
  check "steps recorded" true (o.Push.steps <> []);
  (* the iteration template is crossed in one big step (Figure 7(b)) *)
  check "big step across the loop template" true
    (List.mem "«loop»" o.Push.steps);
  check "outcome pretty-prints" true
    (String.length (Format.asprintf "%a" Push.pp_outcome o) > 0)

let test_push_q2 () =
  let c = compile_body "x" "if (count($x/self::a)) then $x/* else ()" in
  let o = Push.check ~fix_id:c.Compile.fix_id c.Compile.body in
  check "Q2 blocked" false o.Push.distributive;
  check "blocked at the count aggregate" true
    (match o.Push.blocking with
    | Some b ->
      (* count blocks (Figure 9(b)) *)
      String.length b >= 5 && String.sub b 0 5 = "count"
    | None -> false)

let test_push_section41 () =
  let c =
    compile_body "x"
      {|for $c in doc("curriculum.xml")/curriculum/course
        where $c/@code = $x/prerequisites/pre_code
        return $c|}
  in
  let o = Push.check ~fix_id:c.Compile.fix_id c.Compile.body in
  check "unfolded id is algebraically distributive" true o.Push.distributive

let test_push_blockers () =
  let blocked src =
    let c = compile_body "x" src in
    not (Push.check ~fix_id:c.Compile.fix_id c.Compile.body).Push.distributive
  in
  check "except blocks" true (blocked "$x except doc(\"small.xml\")//a");
  check "count blocks" true (blocked "count($x)");
  check "positional rownum blocks" true (blocked "$x[1]");
  check "linearity violation blocks" true
    (blocked "for $v in $x return ($x, $v)");
  check "comparison blocks (difference in bool table)" true
    (blocked "if ($x = 10) then $x else doc(\"small.xml\")//a")

let test_push_stratified () =
  let c = compile_body "x" "$x/a except doc(\"small.xml\")//c" in
  let default_ = Push.check ~fix_id:c.Compile.fix_id c.Compile.body in
  let strat =
    Push.check ~stratified:true ~fix_id:c.Compile.fix_id c.Compile.body
  in
  check "difference blocks by default (Table 1)" false
    default_.Push.distributive;
  check "stratified refinement admits fixed RHS" true strat.Push.distributive;
  (* x on the right stays blocked even with the flag *)
  let c2 = compile_body "x" "doc(\"small.xml\")//a except $x" in
  check "fixed LHS, varying RHS still blocked" false
    (Push.check ~stratified:true ~fix_id:c2.Compile.fix_id c2.Compile.body)
      .Push.distributive

let test_push_allowances () =
  let ok src =
    let c = compile_body "x" src in
    (Push.check ~fix_id:c.Compile.fix_id c.Compile.body).Push.distributive
  in
  check "steps" true (ok "$x/a/b");
  check "union" true (ok "$x/a union $x/b");
  check "FOR1 through iteration" true
    (ok "for $v in doc(\"small.xml\")//a return $x/a");
  check "FOR2 big step" true (ok "for $v in $x return $v/a");
  check "filter itemwise" true (ok "$x[@k = \"1\"]");
  check "positional under a step is per-node" true (ok "$x/a[1]");
  check "body ignoring x is trivially distributive" true
    (ok "doc(\"small.xml\")//a")

let test_mu_delta_equivalence_on_q1 () =
  let doc = Option.get (Doc_registry.find ~registry "curriculum.xml") in
  let c = compile_body "x" "$x/id(./prerequisites/pre_code)" in
  let ev = Eval.create ~registry () in
  let seed_items =
    Eval.eval_expr ev ~context:(Item.N doc)
      (Parser.parse_expr {|/curriculum/course[@code = "c1"]|})
  in
  let fix sel =
    sel { Plan.fix_id = c.Compile.fix_id; seed = Compile.seed_table seed_items;
          body = c.Compile.body }
  in
  let run plan = Compile.result_items (Plan_eval.run (pe ()) plan) in
  let rn = run (fix (fun f -> Plan.Mu f)) in
  let rd = run (fix (fun f -> Plan.Mu_delta f)) in
  check "µ s= µ∆ on Q1" true (Item.set_equal rn rd);
  check_int "three prerequisites" 3 (List.length rn)

(* Table 1's Push? column, printed from the implementation *)
let test_table1_verdicts () =
  let dummy = Plan.Lit_table ([ "iter"; "item" ], []) in
  let fs = { Plan.fun_result = "v"; fun_args = [] } in
  let agg = { Plan.agg_result = "n"; agg_input = None; agg_partition = None } in
  let num = { Plan.num_result = "r"; num_order = []; num_partition = None } in
  let pushable =
    [ Plan.Project ([], dummy); Plan.Select ("item", dummy);
      Plan.Join ({ Plan.equi = []; theta = [] }, dummy, dummy);
      Plan.Cross (dummy, dummy); Plan.Union (dummy, dummy);
      Plan.Fun (Plan.P_not, fs, dummy); Plan.Tag ("t", dummy);
      Plan.Step (Axis.Child, Axis.Kind_node, "item", dummy) ]
  in
  let blocked =
    [ Plan.Distinct dummy; Plan.Difference (dummy, dummy);
      Plan.Aggr (Plan.A_count, agg, dummy); Plan.Row_num (num, dummy);
      Plan.Construct ("elem", dummy) ]
  in
  List.iter
    (fun p ->
      if not (Plan.push_through p) then
        Alcotest.failf "expected pushable: %s" (Plan.op_symbol p))
    pushable;
  List.iter
    (fun p ->
      if Plan.push_through p then
        Alcotest.failf "expected blocked: %s" (Plan.op_symbol p))
    blocked

let test_render () =
  let c = compile_body "x" "$x/a" in
  let ascii = Render.to_ascii c.Compile.body in
  check "ascii mentions the step" true
    (String.length ascii > 0
    && (try
          ignore (String.index ascii 'c');
          true
        with Not_found -> false));
  let dot = Render.to_dot c.Compile.body in
  check "dot is a digraph" true (String.sub dot 0 7 = "digraph");
  check "summary mentions operators" true
    (String.length (Render.summary c.Compile.body) > 0)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimize_rules () =
  let lit =
    (* two rows: a 0/1-row literal is trivially distinct and the
       optimizer would drop the δ entirely. *)
    Plan.Lit_table
      ( [ "iter"; "item" ],
        [ [| Value.Int 1; Value.Int 1 |]; [| Value.Int 1; Value.Int 2 |] ] )
  in
  let payload =
    Plan.Step (Axis.Child, Axis.Kind_node, "item", Plan.Doc "small.xml")
  in
  ignore payload;
  let dd = Plan.Distinct (Plan.Distinct lit) in
  (match Optimize.optimize dd with
  | Plan.Distinct (Plan.Lit_table _) -> ()
  | other -> Alcotest.failf "δδ not collapsed: %s" (Render.summary other));
  (match Optimize.optimize (Plan.Distinct (Plan.Lit_table ([ "iter" ], []))) with
  | Plan.Lit_table _ -> ()
  | other ->
    Alcotest.failf "δ over empty literal not removed: %s"
      (Render.summary other));
  let pp_plan =
    Plan.Project
      ( [ ("x", "iter") ],
        Plan.Project ([ ("iter", "item"); ("item", "iter") ], lit) )
  in
  (match Optimize.optimize pp_plan with
  | Plan.Project ([ ("x", "item") ], Plan.Lit_table _) -> ()
  | other -> Alcotest.failf "ππ not fused: %s" (Render.summary other));
  (match
     Optimize.optimize (Plan.Union (Plan.Lit_table ([ "iter"; "item" ], []), lit))
   with
  | Plan.Lit_table _ | Plan.Project (_, Plan.Lit_table _) -> ()
  | other -> Alcotest.failf "∪ unit not removed: %s" (Render.summary other));
  (match
     Optimize.optimize
       (Plan.Join ({ Plan.equi = []; theta = [] }, lit, lit))
   with
  | Plan.Cross _ -> ()
  | other -> Alcotest.failf "keyless join not a ×: %s" (Render.summary other))

let test_optimize_preserves_semantics () =
  List.iter
    (fun src ->
      let plan =
        Compile.expr ~functions:(Hashtbl.create 0) (Parser.parse_expr src)
      in
      let before = Compile.result_items (Plan_eval.run (pe ()) plan) in
      let optimized = Optimize.optimize plan in
      let after = Compile.result_items (Plan_eval.run (pe ()) optimized) in
      if not (Item.set_equal before after) then
        Alcotest.failf "optimizer changed the result of %s" src)
    [ {|doc("small.xml")//a[@k = "1"]/b|};
      {|for $a in doc("small.xml")//a where $a/@k = "2" return $a/b|};
      {|count(doc("small.xml")//b)|};
      {|doc("small.xml")//a union doc("small.xml")//c|};
      {|doc("small.xml")//b[2]|};
      {|if (exists(doc("small.xml")//c)) then doc("small.xml")//b else ()|} ]

let test_optimize_preserves_push_verdict () =
  List.iter
    (fun (src, expected) ->
      let c = compile_body "x" src in
      let optimized = Optimize.optimize c.Compile.body in
      let v =
        (Push.check ~fix_id:c.Compile.fix_id optimized).Push.distributive
      in
      if v <> expected then
        Alcotest.failf "verdict changed after optimization on %s" src)
    [ ("$x/id(./prerequisites/pre_code)", true);
      ("if (count($x/self::a)) then $x/* else ()", false);
      ("$x/a union $x/b", true);
      ("count($x)", false) ]

(* Property: compiler differential on random path queries *)
let tree_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "c" ] in
  let spec =
    sized
    @@ fix (fun self n ->
           if n <= 1 then
             map (fun k -> Node.E ("leaf", [ ("k", string_of_int k) ], []))
               (int_bound 3)
           else
             map2
               (fun name kids -> Node.E (name, [ ("k", "0") ], kids))
               names
               (list_size (int_bound 3) (self (n / 2))))
  in
  map (fun s -> Node.of_spec s) spec

let query_gen =
  QCheck2.Gen.oneofl
    [ "$d//a"; "$d//a/b"; "$d/*"; "$d//leaf/@k"; "$d//a[@k = \"0\"]";
      "for $v in $d//a return $v/b"; "count($d//leaf)";
      "$d//a union $d//b"; "$d//* except $d//leaf";
      "distinct-values($d//@k)"; "$d//b[1]";
      "if (exists($d//c)) then $d//a else $d//b" ]

let prop_optimizer_preserves =
  QCheck2.Test.make ~count:120
    ~name:"optimized plans evaluate identically" 
    QCheck2.Gen.(pair tree_gen query_gen)
    (fun (doc, src) ->
      let vars = [ ("d", [ Item.N doc ]) ] in
      let plan =
        Compile.expr ~functions:(Hashtbl.create 0) ~bindings:vars
          (Parser.parse_expr src)
      in
      let before = Compile.result_items (Plan_eval.run (pe ()) plan) in
      let after =
        Compile.result_items (Plan_eval.run (pe ()) (Optimize.optimize plan))
      in
      Item.set_equal before after)

let prop_compiler_differential =
  QCheck2.Test.make ~count:150 ~name:"algebra = interpreter on random docs"
    QCheck2.Gen.(pair tree_gen query_gen)
    (fun (doc, src) ->
      let vars = [ ("d", [ Item.N doc ]) ] in
      let i = interp_expr ~vars src in
      let a = algebra_expr ~bindings:vars src in
      Item.set_equal i a)

let () =
  Alcotest.run "algebra"
    [ ( "relations",
        [ Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "set ops" `Quick test_relation_setops;
          Alcotest.test_case "joins" `Quick test_relation_join;
          Alcotest.test_case "grouping/numbering" `Quick
            test_relation_group_number ] );
      ( "plans",
        [ Alcotest.test_case "schema checking" `Quick test_plan_schema_check;
          Alcotest.test_case "step operator" `Quick test_plan_step;
          Alcotest.test_case "theta joins" `Quick test_theta_join;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "row numbering" `Quick test_row_num_partition;
          Alcotest.test_case "values" `Quick test_value_module;
          Alcotest.test_case "constructors rejected" `Quick
            test_construct_rejected;
          Alcotest.test_case "µ vs µ∆ tuple counts" `Quick
            test_plan_mu_counts;
          Alcotest.test_case "multi-iteration lock-step" `Quick
            test_mu_multi_iteration_lockstep ] );
      ( "compiler",
        [ Alcotest.test_case "differential corpus" `Quick
            test_compile_differential_corpus;
          Alcotest.test_case "bound variables" `Quick test_compile_vars;
          Alcotest.test_case "unsupported constructs" `Quick
            test_compile_unsupported;
          Alcotest.test_case "body roundtrip" `Quick test_body_roundtrip ] );
      ( "push-up",
        [ Alcotest.test_case "Q1" `Quick test_push_q1;
          Alcotest.test_case "Q2 (Figure 9)" `Quick test_push_q2;
          Alcotest.test_case "section 4.1" `Quick test_push_section41;
          Alcotest.test_case "blockers" `Quick test_push_blockers;
          Alcotest.test_case "stratified difference" `Quick
            test_push_stratified;
          Alcotest.test_case "allowances" `Quick test_push_allowances;
          Alcotest.test_case "µ/µ∆ equivalence" `Quick
            test_mu_delta_equivalence_on_q1;
          Alcotest.test_case "table 1 verdicts" `Quick test_table1_verdicts;
          Alcotest.test_case "render" `Quick test_render ] );
      ( "optimizer",
        [ Alcotest.test_case "rules" `Quick test_optimize_rules;
          Alcotest.test_case "semantics preserved" `Quick
            test_optimize_preserves_semantics;
          Alcotest.test_case "verdicts preserved" `Quick
            test_optimize_preserves_push_verdict ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_compiler_differential;
          QCheck_alcotest.to_alcotest prop_optimizer_preserves ] ) ]
