Semiring-annotated fixpoints end to end: min-cost, count, and why
annotations from the CLI; bool-annotation byte-parity with the legacy
IFP; lint classification; and the serve front end refusing an unstable
semiring without a budget.

  $ cat > curriculum.xml <<'XML'
  > <!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
  > <curriculum>
  >   <course code="c1" cost="1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  >   <course code="c2" cost="2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  >   <course code="c3" cost="9"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  >   <course code="c4" cost="3"><prerequisites/></course>
  > </curriculum>
  > XML

  $ cat > cheapest.xq <<'XQ'
  > with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
  > recurse $x/id(./prerequisites/pre_code)
  > accumulate by min(number(./@cost))
  > XQ

The tropical semiring: each derived course is annotated with its
cheapest cumulative cost (c4 is reached for 5 via c2, not 12 via c3):

  $ fixq run --doc curriculum.xml=curriculum.xml cheapest.xq
  <course code="c2" cost="2"><prerequisites><pre_code>c4</pre_code></prerequisites></course> <course code="c3" cost="9"><prerequisites><pre_code>c4</pre_code></prerequisites></course> <course code="c4" cost="3"><prerequisites/></course>
  -- accumulate by min --
  <course code="c2" cost="2"><prerequisites><pre_code>c4</pre_code></prerequisites></course> @ 2
  <course code="c3" cost="9"><prerequisites><pre_code>c4</pre_code></prerequisites></course> @ 9
  <course code="c4" cost="3"><prerequisites/></course> @ 5

Bool annotations are byte-identical to the plain fixpoint, modulo the
annotation trailer:

  $ cat > plain.xq <<'XQ'
  > with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
  > recurse $x/id(./prerequisites/pre_code)
  > XQ
  $ fixq run --doc curriculum.xml=curriculum.xml plain.xq > plain.out
  $ { cat plain.xq; echo 'accumulate by bool'; } > bool.xq
  $ fixq run --doc curriculum.xml=curriculum.xml bool.xq | sed '/^-- accumulate/,$d' > bool.out
  $ cmp plain.out bool.out

Counting derivation paths (c4 is reachable via c2 and via c3):

  $ fixq run --doc curriculum.xml=curriculum.xml -e 'with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse $x/id(./prerequisites/pre_code) accumulate by count' | grep -o '@ [0-9]*$'
  @ 1
  @ 1
  @ 2

Why-provenance over two seeds:

  $ fixq run --doc curriculum.xml=curriculum.xml -e 'with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c2" or @code="c3"] recurse $x/id(./prerequisites/pre_code) accumulate by why' | grep -o '@ {.*}$'
  @ {13,20}

Lint classifies semiring convergence: min is p-stable (FQ044, the node
set converges but annotations keep improving for up to |nodes| extra
rounds), count is unstable (FQ043):

  $ fixq lint --doc curriculum.xml=curriculum.xml cheapest.xq
  1:1: info FQ044 (main): accumulate by min over $x is p-stable: the node set converges but annotations improve for up to |nodes| extra rounds
  1:1: info FQ054 (main): fixpoint round bound not certifiable: accumulate by: semiring iteration is not bounded by node counts
  ifp $x (main) at 1:1: divergence=bounded syntactic=distributive algebraic=distributive
  $ fixq lint --doc curriculum.xml=curriculum.xml -e 'with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse $x/id(./prerequisites/pre_code) accumulate by count'
  1:1: warning FQ043 (main): unstable semiring: accumulate by count over $x may diverge: the count semiring is not stable: annotations on a cycle through $x can grow on every round
  1:1: info FQ054 (main): fixpoint round bound not certifiable: accumulate by: semiring iteration is not bounded by node counts
  ifp $x (main) at 1:1: divergence=may-diverge syntactic=distributive algebraic=distributive

The serve front end refuses the unstable counting semiring without an
iteration budget (FQ043, not the generic FQ040), reports semiring and
convergence in check responses, runs the p-stable min query, and counts
semiring queries per kind in the Prometheus export:

  $ cat > session.jsonl <<'EOF'
  > {"op":"load-doc","id":1,"uri":"curriculum.xml","path":"curriculum.xml"}
  > {"op":"run","id":2,"query":"with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code) accumulate by count"}
  > {"op":"run","id":3,"query":"with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code) accumulate by count","max_iterations":100}
  > {"op":"check","id":4,"query":"with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code) accumulate by min(number(./@cost))"}
  > {"op":"run","id":5,"query":"(with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code) accumulate by min(number(./@cost)))/@code"}
  > {"op":"stats","id":6}
  > {"op":"stats","id":7,"format":"prometheus"}
  > {"op":"shutdown","id":8}
  > EOF

  $ fixq serve --pipe < session.jsonl > out.jsonl
  $ grep -c . out.jsonl
  8

The unbudgeted run is refused with the semiring-specific code:

  $ sed -n 2p out.jsonl | grep -o '"code":"FQ043"'
  "code":"FQ043"
  $ sed -n 2p out.jsonl | grep -c 'may diverge'
  1

With a budget it runs, and the response carries the annotations:

  $ sed -n 3p out.jsonl | grep -o '"semiring":"count"'
  "semiring":"count"

check reports the semiring kind and its convergence class:

  $ sed -n 4p out.jsonl | grep -o '"semiring":"min","convergence":"p-stable"'
  "semiring":"min","convergence":"p-stable"

  $ sed -n 5p out.jsonl | grep -o '"result":[^,]*'
  "result":"code=\"c2\" code=\"c3\" code=\"c4\""

Preparation counts semiring queries per kind — in the JSON analysis
counters and as a labelled Prometheus family:

  $ sed -n 6p out.jsonl | grep -o '"semiring:[a-z]*":[0-9]*'
  "semiring:count":1
  "semiring:min":2
  $ sed -n 7p out.jsonl | grep -o 'fixq_semiring_queries_total{kind=[^}]*} [0-9]*'
  fixq_semiring_queries_total{kind=\"count\"} 1
  fixq_semiring_queries_total{kind=\"min\"} 2
