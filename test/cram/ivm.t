Differential maintenance of cached fixpoints under document updates:
the patch-doc op on the single-process server (maintained cache entry,
byte parity with recompute), the same through the cluster (patched via
the fixq client --patch convenience syntax), and a chaos kill inside
the worker's patch path proving a killed worker respawns to a
patch-consistent state.

  $ cat > tree.xml <<'XML'
  > <r><a><b/><b/></a><a><b/></a></r>
  > XML
  $ Q='{"op":"run","id":3,"query":"with $x seeded by doc(\"t.xml\")/r recurse $x/*"}'
  $ QF='{"op":"run","id":5,"query":"with $x seeded by doc(\"t.xml\")/r recurse $x/*","cache":false}'
  $ L='{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}'
  $ P='{"op":"patch-doc","id":4,"uri":"t.xml","action":"insert","path":"/r","xml":"<c/>"}'

Part 1 — serve. Run an IVM-eligible closure (adopting it), patch the
document, and observe: the patch response reports one maintained
entry, the follow-up run is a result-cache HIT carrying the updated
bytes, and a cache-bypassing recompute returns the same bytes.

  $ printf '%s\n' "$L" "$Q" "$P" "$Q" "$QF" '{"op":"shutdown","id":9}' \
  >   | fixq serve --pipe | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":1,"uri":"t.xml","generation":1}
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"miss","result_cache":"miss","generation":1,"nodes_fed":6,"depth":3,"result":"<a><b/><b/></a> <b/> <b/> <a><b/></a> <b/>"}
  {"ok":true,"id":4,"uri":"t.xml","path":"/r","generation":2,"doc_generation":2,"inserted":1,"deleted":0,"maintained":1,"recompute":0,"entries":[{"hash":"24b9466035757388b28116f3f51b34af","config":"interp:delta:false","outcome":"maintained","delta":1,"rounds":2}]}
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"hit","generation":2,"nodes_fed":6,"depth":3,"result":"<a><b/><b/></a> <b/> <b/> <a><b/></a> <b/> <c/>"}
  {"ok":true,"id":5,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"miss","generation":2,"nodes_fed":7,"depth":3,"result":"<a><b/><b/></a> <b/> <b/> <a><b/></a> <b/> <c/>"}
  {"ok":true,"id":9,"shutdown":true}

The check op reports IVM eligibility alongside divergence:

  $ printf '%s\n' '{"op":"check","query":"with $x seeded by doc(\"t.xml\")/r recurse $x/*"}' '{"op":"shutdown"}' \
  >   | fixq serve --pipe | head -1 | grep -o '"divergence":"[a-z-]*".*"node_only":[a-z]*,"ivm":"[a-z-]*"'
  "divergence":"terminates","semiring":null,"convergence":null,"node_only":true,"ivm":"full"

Part 2 — cluster. The coordinator ships the patch only to the shard
holding the uri and records it in the document's line history. The
edit arrives through fixq client --patch, and the cluster's bytes
match a single-process reference.

  $ D=$(mktemp -d /tmp/fixq-ivm-XXXXXX)
  $ fixq cluster --socket $D/c.sock --workers 2 --replication 2 \
  >   --worker-dir $D/w --health-interval-ms 3600000 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c.sock ] && break; sleep 0.1; done
  $ echo "$L" | fixq client -s $D/c.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1,"workers":["w0","w1"]}
  $ fixq client -s $D/c.sock --patch 't.xml insert <c/> at /r' </dev/null
  {"ok":true,"uri":"t.xml","generation":2,"workers":["w0","w1"]}
  $ printf '%s\n' "$L" "$P" "$QF" '{"op":"shutdown"}' | fixq serve --pipe \
  >   | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > single.txt
  $ echo "$QF" | fixq client -s $D/c.sock \
  >   | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > cluster.txt
  $ cmp single.txt cluster.txt && echo identical
  identical
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c.sock
  {"ok":true,"shutdown":true}
  $ wait

Part 3 — chaos at store.patch. The injection point fires BEFORE any
mutation, so a worker killed mid-patch leaves no half-applied state.
The first patch lands (arrival 1); the second kills the holder
(kill@2) and reports failure; the supervisor respawns the worker,
which replays its line history — load plus the first patch — back to
a patch-consistent document. The replay re-applies the first patch,
so the rule re-arms and every retry of the second patch is killed
too: the document must remain patch-consistent through repeated
mid-patch crashes.

  $ fixq cluster --socket $D/c2.sock --workers 2 --replication 1 \
  >   --worker-dir $D/w2 --health-interval-ms 200 \
  >   --chaos "seed=9,store.patch=kill@2" --chaos-log $D/chaos.log 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c2.sock ] && break; sleep 0.1; done
  $ P2='{"op":"patch-doc","id":6,"uri":"t.xml","action":"insert","path":"/r","xml":"<d/>"}'
  $ echo "$L" | fixq client -s $D/c2.sock | grep -o '"ok":true'
  "ok":true
  $ echo "$P" | fixq client -s $D/c2.sock | grep -o '"ok":true'
  "ok":true
  $ echo "$P2" | fixq client -s $D/c2.sock | grep -o '"ok":false'
  "ok":false
  $ for i in $(seq 150); do echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -q '"restarts":1' && break; sleep 0.2; done
  $ echo "$QF" | fixq client -s $D/c2.sock \
  >   | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' | cmp - single.txt && echo consistent-after-replay
  consistent-after-replay
  $ echo "$P2" | fixq client -s $D/c2.sock | grep -o '"ok":false'
  "ok":false
  $ for i in $(seq 150); do echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -q '"restarts":2' && break; sleep 0.2; done
  $ echo "$QF" | fixq client -s $D/c2.sock \
  >   | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' | cmp - single.txt && echo still-consistent
  still-consistent
  $ awk '{print $3, $4}' $D/chaos.log | sort -u
  store.patch kill
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c2.sock
  {"ok":true,"shutdown":true}
  $ wait
  $ rm -rf $D
