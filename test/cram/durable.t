Durability: the snapshot + WAL pair behind fixq serve --state-dir. A
SIGKILLed server comes back from its state directory with
byte-identical results (cold start = snapshot + WAL tail, never a full
re-load from clients); a clean shutdown flushes a final snapshot so
the restart replays nothing; injected crashes mid-WAL-append and
mid-snapshot land on the torn-tail recovery paths.

  $ cat > tree.xml <<'XML'
  > <r><a><b/><b/></a><a><b/></a></r>
  > XML
  $ Q='{"op":"run","query":"with $x seeded by doc(\"t.xml\")/r/* recurse $x/*","cache":false}'
  $ P='{"op":"patch-doc","uri":"t.xml","action":"insert","path":"/r","xml":"<a><b/></a>"}'
  $ D=$(mktemp -d /tmp/fixq-dur-XXXXXX)

Part 1 - kill -9, restart, byte parity. The op-count snapshot trigger
is disabled (threshold 0), so this cold start replays the full WAL:
one load-doc plus three accepted patches.

  $ fixq serve --socket $D/s.sock --state-dir $D/state --snapshot-threshold 0 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $D/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $D/s.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1}
  $ for i in 1 2 3; do echo "$P" | fixq client -s $D/s.sock > /dev/null; done
  $ echo "$Q" | fixq client -s $D/s.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > before.txt
  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null || true
  $ rm -f $D/s.sock

The state directory now holds a WAL but no snapshot:

  $ [ -f $D/state/wal ] && echo wal-exists
  wal-exists
  $ [ -f $D/state/snapshot ] || echo no-snapshot
  no-snapshot

A new server over the same directory replays the four ops and answers
byte-identically:

  $ fixq serve --socket $D/s.sock --state-dir $D/state --snapshot-threshold 0 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $D/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"stats"}' | fixq client -s $D/s.sock | grep -o '"recovered":{"docs":0,"tail_ops":4,[^}]*}'
  "recovered":{"docs":0,"tail_ops":4,"cache_entries":0,"ivm_entries":0,"truncated_bytes":0,"diagnostic":null}
  $ echo "$Q" | fixq client -s $D/s.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > after.txt
  $ cmp before.txt after.txt && echo identical
  identical

Part 2 - snapshot + tail. An explicit snapshot op materializes the
registry and truncates the WAL; only ops accepted after it replay.

  $ echo '{"op":"snapshot"}' | fixq client -s $D/s.sock | sed -E 's/,"wal_bytes":[0-9]+//'
  {"ok":true,"snapshot":true,"last_seq":4}
  $ echo "$P" | fixq client -s $D/s.sock > /dev/null
  $ echo "$Q" | fixq client -s $D/s.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > before.txt
  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null || true
  $ rm -f $D/s.sock
  $ fixq serve --socket $D/s.sock --state-dir $D/state --snapshot-threshold 0 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $D/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"stats"}' | fixq client -s $D/s.sock | grep -o '"docs":1,"tail_ops":1'
  "docs":1,"tail_ops":1
  $ echo "$Q" | fixq client -s $D/s.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > after.txt
  $ cmp before.txt after.txt && echo identical
  identical

Part 3 - graceful shutdown flushes the WAL and takes a final
snapshot, so a clean restart replays nothing:

  $ echo '{"op":"shutdown"}' | fixq client -s $D/s.sock
  {"ok":true,"shutdown":true}
  $ wait $SRV 2>/dev/null || true
  $ rm -f $D/s.sock
  $ fixq serve --socket $D/s.sock --state-dir $D/state --snapshot-threshold 0 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $D/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"stats"}' | fixq client -s $D/s.sock | grep -o '"docs":1,"tail_ops":0'
  "docs":1,"tail_ops":0
  $ echo "$Q" | fixq client -s $D/s.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > after.txt
  $ cmp before.txt after.txt && echo identical
  identical
  $ echo '{"op":"shutdown"}' | fixq client -s $D/s.sock
  {"ok":true,"shutdown":true}
  $ wait

Part 4 - crash mid-WAL-append (store.wal=kill). The second append is
torn in half by SIGKILL; recovery truncates to the last complete
record with a diagnostic instead of crashing or silently losing the
prefix.

  $ E=$(mktemp -d /tmp/fixq-dur-XXXXXX)
  $ fixq serve --socket $E/s.sock --state-dir $E/state --snapshot-threshold 0 \
  >   --chaos 'seed=11,store.wal=kill@2' --chaos-log $E/chaos.log 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $E/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $E/s.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1}
  $ echo "$P" | fixq client -s $E/s.sock 2>/dev/null || true
  $ wait $SRV 2>/dev/null || true
  $ grep -c 'store.wal kill' $E/chaos.log
  1
  $ rm -f $E/s.sock
  $ fixq serve --socket $E/s.sock --state-dir $E/state 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $E/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"stats"}' | fixq client -s $E/s.sock | grep -o '"tail_ops":1'
  "tail_ops":1
  $ echo '{"op":"stats"}' | fixq client -s $E/s.sock | grep -o '"diagnostic":"[^"]*"' | grep -c 'at byte'
  1
  $ echo "$Q" | fixq client -s $E/s.sock | grep -o '"result":"[^"]*"'
  "result":"<b/> <b/> <b/>"

Part 5 - crash mid-snapshot (store.snapshot=kill). The torn
snapshot.tmp is ignored on recovery and the WAL (only truncated after
a snapshot commits) still carries everything:

  $ echo '{"op":"shutdown"}' | fixq client -s $E/s.sock > /dev/null
  $ wait $SRV 2>/dev/null || true
  $ F=$(mktemp -d /tmp/fixq-dur-XXXXXX)
  $ fixq serve --socket $F/s.sock --state-dir $F/state --snapshot-threshold 0 \
  >   --chaos 'seed=11,store.snapshot=kill@1' --chaos-log $F/chaos.log 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $F/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $F/s.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1}
  $ echo "$P" | fixq client -s $F/s.sock > /dev/null
  $ echo '{"op":"snapshot"}' | fixq client -s $F/s.sock 2>/dev/null || true
  $ wait $SRV 2>/dev/null || true
  $ grep -c 'store.snapshot kill' $F/chaos.log
  1
  $ [ -f $F/state/snapshot ] || echo no-committed-snapshot
  no-committed-snapshot
  $ rm -f $F/s.sock
  $ fixq serve --socket $F/s.sock --state-dir $F/state 2>/dev/null &
  $ SRV=$!
  $ for i in $(seq 150); do [ -S $F/s.sock ] && break; sleep 0.1; done
  $ echo '{"op":"stats"}' | fixq client -s $F/s.sock | grep -o '"docs":0,"tail_ops":2'
  "docs":0,"tail_ops":2
  $ echo "$Q" | fixq client -s $F/s.sock | grep -o '"result":"[^"]*"'
  "result":"<b/> <b/> <b/> <b/>"
  $ echo '{"op":"shutdown"}' | fixq client -s $F/s.sock
  {"ok":true,"shutdown":true}
  $ wait
  $ rm -rf $D $E $F
