End-to-end coverage for the query service: a pipe-mode session that
exercises prepared-query caching, generation-based result invalidation,
error degradation, and the stats counters.

  $ cat > curriculum.xml <<'XML'
  > <!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
  > <curriculum>
  >   <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  >   <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  >   <course code="c3"><prerequisites/></course>
  >   <course code="c4"><prerequisites/></course>
  > </curriculum>
  > XML

The session: ping, load the document, run the same IFP query twice
(second run must hit both caches), reload the document (bumping the
registry generation), run again (prepared hit, result miss), check a
query, send a parse error, a divergent IFP with a tight iteration
budget, then ask for stats and shut down.

  $ cat > session.jsonl <<'EOF'
  > {"op":"ping","id":1}
  > {"op":"load-doc","id":2,"uri":"curriculum.xml","path":"curriculum.xml"}
  > {"op":"run","id":3,"query":"count(with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code))"}
  > {"op":"run","id":4,"query":"count(with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code))"}
  > {"op":"load-doc","id":5,"uri":"curriculum.xml","path":"curriculum.xml"}
  > {"op":"run","id":6,"query":"count(with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code))"}
  > {"op":"check","id":7,"query":"with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code)"}
  > {"op":"run","id":8,"query":"1 +"}
  > {"op":"run","id":9,"query":"with $x seeded by <a/> recurse <b/>","max_iterations":10}
  > {"op":"stats","id":10}
  > {"op":"shutdown","id":11}
  > EOF

  $ fixq serve --pipe < session.jsonl > out.jsonl
  $ grep -c . out.jsonl
  11

Every response except stats is deterministic once the timing field is
stripped:

  $ sed -E 's/,"wall_ms":[0-9.e+-]+//' out.jsonl | sed -n '1,9p'
  {"ok":true,"id":1,"pong":true}
  {"ok":true,"id":2,"uri":"curriculum.xml","generation":1}
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"miss","result_cache":"miss","generation":1,"nodes_fed":4,"depth":3,"result":"3"}
  {"ok":true,"id":4,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"hit","generation":1,"nodes_fed":4,"depth":3,"result":"3"}
  {"ok":true,"id":5,"uri":"curriculum.xml","generation":2}
  {"ok":true,"id":6,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"miss","generation":2,"nodes_fed":4,"depth":3,"result":"3"}
  {"ok":true,"id":7,"ifp_count":1,"syntactic":true,"algebraic":true,"interp_mode":"delta","algebra_mode":"delta","stratified":false,"warnings":[],"diagnostics":[{"severity":"info","code":"FQ053","line":1,"col":1,"context":"main","message":"certified fixpoint round bound: <= 5 (node-only IFP: at most 4 reachable nodes over the synopsis, so at most 5 rounds)"}],"divergence":"terminates","semiring":null,"convergence":null,"node_only":true,"ivm":"ineligible","blocking":null,"sql_renderable":true,"sql_reason":null,"rounds_bound":5,"bound_reason":"node-only IFP: at most 4 reachable nodes over the synopsis, so at most 5 rounds","estimated_cost":{"interp":74,"algebra":144,"sql":252},"chosen_engine":"interp","prepared_cache":"miss"}
  {"ok":false,"id":8,"error":"parse error at 1:4: expected an expression, found end of input","diagnostics":[{"severity":"error","code":"FQ001","line":1,"col":4,"context":"parse","message":"expected an expression, found end of input"}]}
  {"ok":false,"id":9,"error":"IFP diverged after 11 iterations"}
  $ sed -n '11p' out.jsonl
  {"ok":true,"id":11,"shutdown":true}

The stats response carries per-query latency aggregates (variable), but
the cache counters are exact: four prepared misses (q1, the check, the
parse error, the divergent query), two hits (the repeat runs), one
result-cache hit, and three misses (first run, post-reload run, the
divergent attempt). The post-reload miss also *evicts* the
stale-footprint entry it found, so only the fresh entry stays in the
LRU.

  $ grep -o '"prepared":{[^}]*}' out.jsonl
  "prepared":{"hits":2,"misses":4,"size":3,"capacity":64}
  $ grep -o '"results":{[^}]*}' out.jsonl
  "results":{"hits":1,"misses":3,"size":1,"capacity":256}
  $ grep -o '"documents":\[[^]]*\]' out.jsonl
  "documents":["curriculum.xml"]

A deadline in the past degrades to an error response without killing
the server:

  $ printf '%s\n%s\n%s\n' \
  >   '{"op":"run","query":"with $x seeded by <a/> recurse <b/>","timeout_ms":0}' \
  >   '{"op":"run","query":"1 + 1"}' \
  >   '{"op":"shutdown"}' \
  >   | fixq serve --pipe | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":false,"error":"deadline exceeded during IFP evaluation"}
  {"ok":true,"engine":"interp","mode":"naive","used_delta":null,"prepared_cache":"miss","result_cache":"miss","generation":0,"nodes_fed":0,"depth":0,"result":"2"}
  {"ok":true,"shutdown":true}

Documents can be preloaded from the command line:

  $ printf '%s\n%s\n' \
  >   '{"op":"run","query":"count(doc(\"curriculum.xml\")/curriculum/course)"}' \
  >   '{"op":"shutdown"}' \
  >   | fixq serve --pipe --doc curriculum.xml=curriculum.xml \
  >   | sed -E 's/,"wall_ms":[0-9.e+-]+//' | head -1
  {"ok":true,"engine":"interp","mode":"naive","used_delta":null,"prepared_cache":"miss","result_cache":"miss","generation":1,"nodes_fed":0,"depth":0,"result":"4"}

The cost analyzer gates admission. Under a tight --max-cost envelope an
un-budgeted run is refused with a structured FQ055 error; an iteration
budget converts refusal into down-budgeting (max_iterations clamped to
the certified round bound); --engine auto records its choice; and the
explain op returns the full cost report:

  $ cat > cost.jsonl <<'EOF2'
  > {"op":"load-doc","id":1,"uri":"curriculum.xml","path":"curriculum.xml"}
  > {"op":"run","id":2,"query":"count(with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code))","engine":"auto"}
  > {"op":"run","id":3,"query":"count(with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code))","engine":"auto","max_iterations":50}
  > {"op":"explain","id":4,"query":"with $x seeded by doc(\"curriculum.xml\")/curriculum/course[@code=\"c1\"] recurse $x/id(./prerequisites/pre_code)"}
  > {"op":"shutdown","id":5}
  > EOF2

  $ fixq serve --pipe --max-cost 50 < cost.jsonl > cost_out.jsonl
  $ sed -n '2p' cost_out.jsonl | grep -o '"code":"FQ055"\|"max_cost":[0-9]*\|"rounds_bound":[0-9]*'
  "code":"FQ055"
  "max_cost":50
  "rounds_bound":5
  $ sed -n '3p' cost_out.jsonl | grep -o '"chosen_by":"cost"\|"down_budgeted":[0-9]*\|"result":"[0-9]*"'
  "result":"3"
  "chosen_by":"cost"
  "down_budgeted":5
  $ sed -n '4p' cost_out.jsonl | grep -o '"chosen":"[a-z]*"\|"rounds_bound":[0-9]*\|"work":[0-9]*'
  "work":106
  "rounds_bound":5
  "chosen":"interp"
