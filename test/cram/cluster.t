End-to-end coverage for fixq cluster: worker processes behind the
coordinator socket, document-sharded routing, scatter-gather on a
distributive fixed point, and crash recovery (failover, then respawn
with document replay).

Sockets live under a short mktemp path: Unix socket paths are
length-limited and cram working directories are deep.

  $ cat > tree.xml <<'XML'
  > <r><a><b/><b/></a><a><b/></a></r>
  > XML
  $ Q='{"op":"run","id":3,"query":"with $x seeded by doc(\"t.xml\")/r/* recurse $x/*","cache":false}'

Part 1 — failover. Health checks are effectively off (1h interval), so
killing a worker leaves a hole that only failover can cross.

  $ D=$(mktemp -d /tmp/fixq-clu-XXXXXX)
  $ fixq cluster --socket $D/c.sock --workers 2 --replication 2 \
  >   --worker-dir $D/w --health-interval-ms 3600000 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c.sock ] && break; sleep 0.1; done

The document lands on both workers (replication 2), rendezvous order:

  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $D/c.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1,"workers":["w0","w1"]}

A distributive closure scatter-gathers across both replicas:

  $ echo "$Q" | fixq client -s $D/c.sock | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>","scatter":{"legs":2,"workers":["w0","w1"]}}

The same query through a single-process server gives byte-identical
results (Theorem 3.2: uniting the per-replica slices of a distributive
IFP reproduces the whole):

  $ printf '%s\n' '{"op":"load-doc","uri":"t.xml","path":"tree.xml"}' "$Q" '{"op":"shutdown"}' \
  >   | fixq serve --pipe | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > single.txt
  $ echo "$Q" | fixq client -s $D/c.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > scattered.txt
  $ cmp single.txt scattered.txt && echo identical
  identical

Kill the primary replica (w1). The next run's scatter leg dies, the
coordinator marks w1 dead and fails over to a whole-query run on w0 —
the client still gets one correct answer:

  $ STATS=$(echo '{"op":"stats"}' | fixq client -s $D/c.sock)
  $ W1PID=$(echo "$STATS" | sed -n 's/.*"name":"w1","alive":true,"socket":"[^"]*","pid":\([0-9]*\).*/\1/p')
  $ kill -9 $W1PID
  $ echo "$Q" | fixq client -s $D/c.sock | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"miss","generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>","worker":"w0"}
  $ echo '{"op":"stats"}' | fixq client -s $D/c.sock | grep -o '"failovers":[0-9]*'
  "failovers":1
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c.sock
  {"ok":true,"shutdown":true}
  $ wait

Part 2 — respawn. With health checks on, a killed worker comes back
under its old name, its documents are replayed, and scatter resumes.

  $ fixq cluster --socket $D/c2.sock --workers 2 --replication 2 \
  >   --worker-dir $D/w2 --health-interval-ms 200 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c2.sock ] && break; sleep 0.1; done
  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $D/c2.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1,"workers":["w0","w1"]}
  $ W0PID=$(echo '{"op":"stats"}' | fixq client -s $D/c2.sock | sed -n 's/.*"name":"w0","alive":true,"socket":"[^"]*","pid":\([0-9]*\).*/\1/p')
  $ kill -9 $W0PID
  $ for i in $(seq 150); do echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -q '"restarts":1' && break; sleep 0.2; done
  $ echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -o '"restarts":[0-9]*'
  "restarts":1

The respawned w0 holds the replayed document again — it shows up in
three document lists: w0's, w1's, and the coordinator's own:

  $ echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -o '"documents":\["t.xml"\]' | wc -l | tr -d ' '
  3

Scatter works across the healed pair, byte-identical as before:

  $ echo "$Q" | fixq client -s $D/c2.sock | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>","scatter":{"legs":2,"workers":["w0","w1"]}}

prepare warms every replica's prepared-query cache without executing:

  $ echo '{"op":"prepare","id":9,"query":"with $x seeded by doc(\"t.xml\")/r/* recurse $x/*"}' | fixq client -s $D/c2.sock | sed -E 's/,"prepare_ms":[0-9.e+-]+//'
  {"ok":true,"id":9,"prepared_cache":"hit","hash":"c1180df37a6b2cb523876b41e14dc5c9","ifp_count":1,"interp_mode":"delta","algebra_mode":"delta","has_plan":true,"workers":["w0","w1"]}

The Prometheus exposition aggregates coordinator counters with
per-worker samples relabeled by worker:

  $ PROM=$(echo '{"op":"stats","format":"prometheus"}' | fixq client -s $D/c2.sock)
  $ echo "$PROM" | grep -oE 'fixq_cluster_scatter_runs_total [0-9]+'
  fixq_cluster_scatter_runs_total 1
  $ echo "$PROM" | grep -oE 'fixq_cluster_worker_restarts_total [0-9]+'
  fixq_cluster_worker_restarts_total 1
  $ echo "$PROM" | grep -o 'fixq_uptime_seconds{worker=' | wc -l | tr -d ' '
  2
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c2.sock
  {"ok":true,"shutdown":true}
  $ wait

A second server refuses to steal a live coordinator or server socket:

  $ fixq serve --socket $D/s.sock 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/s.sock ] && break; sleep 0.1; done
  $ fixq serve --socket $D/s.sock </dev/null 2>&1 | tail -1 | sed "s,$D,DIR,"
  fixq serve: DIR/s.sock is in use by a live server (stop it or pick another path)
  $ echo '{"op":"shutdown"}' | fixq client -s $D/s.sock
  {"ok":true,"shutdown":true}
  $ wait
  $ rm -rf $D
