End-to-end coverage for fixq cluster: worker processes behind the
coordinator socket, document-sharded routing, scatter-gather on a
distributive fixed point, and crash recovery (failover, then respawn
with document replay).

Sockets live under a short mktemp path: Unix socket paths are
length-limited and cram working directories are deep.

  $ cat > tree.xml <<'XML'
  > <r><a><b/><b/></a><a><b/></a></r>
  > XML
  $ Q='{"op":"run","id":3,"query":"with $x seeded by doc(\"t.xml\")/r/* recurse $x/*","cache":false}'

Part 1 — failover. Health checks are effectively off (1h interval), so
killing a worker leaves a hole that only failover can cross.

  $ D=$(mktemp -d /tmp/fixq-clu-XXXXXX)
  $ fixq cluster --socket $D/c.sock --workers 2 --replication 2 \
  >   --worker-dir $D/w --health-interval-ms 3600000 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c.sock ] && break; sleep 0.1; done

The document lands on both workers (replication 2), rendezvous order:

  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $D/c.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1,"workers":["w0","w1"]}

A distributive closure scatter-gathers across both replicas:

  $ echo "$Q" | fixq client -s $D/c.sock | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>","scatter":{"legs":2,"workers":["w0","w1"]}}

The same query through a single-process server gives byte-identical
results (Theorem 3.2: uniting the per-replica slices of a distributive
IFP reproduces the whole):

  $ printf '%s\n' '{"op":"load-doc","uri":"t.xml","path":"tree.xml"}' "$Q" '{"op":"shutdown"}' \
  >   | fixq serve --pipe | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > single.txt
  $ echo "$Q" | fixq client -s $D/c.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > scattered.txt
  $ cmp single.txt scattered.txt && echo identical
  identical

Kill the primary replica (w1). The next run's scatter leg dies, the
coordinator marks w1 dead and fails over to a whole-query run on w0 —
the client still gets one correct answer:

  $ STATS=$(echo '{"op":"stats"}' | fixq client -s $D/c.sock)
  $ W1PID=$(echo "$STATS" | sed -n 's/.*"name":"w1","alive":true,"socket":"[^"]*","pid":\([0-9]*\).*/\1/p')
  $ kill -9 $W1PID
  $ echo "$Q" | fixq client -s $D/c.sock | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"miss","generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>","worker":"w0"}
  $ echo '{"op":"stats"}' | fixq client -s $D/c.sock | grep -o '"failovers":[0-9]*'
  "failovers":1
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c.sock
  {"ok":true,"shutdown":true}
  $ wait

Part 2 — respawn. With health checks on, a killed worker comes back
under its old name, its documents are replayed, and scatter resumes.

  $ fixq cluster --socket $D/c2.sock --workers 2 --replication 2 \
  >   --worker-dir $D/w2 --health-interval-ms 200 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c2.sock ] && break; sleep 0.1; done
  $ echo '{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}' | fixq client -s $D/c2.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1,"workers":["w0","w1"]}
  $ W0PID=$(echo '{"op":"stats"}' | fixq client -s $D/c2.sock | sed -n 's/.*"name":"w0","alive":true,"socket":"[^"]*","pid":\([0-9]*\).*/\1/p')
  $ kill -9 $W0PID
  $ for i in $(seq 150); do echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -q '"restarts":1' && break; sleep 0.2; done
  $ echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -o '"restarts":[0-9]*'
  "restarts":1

The respawned w0 holds the replayed document again — it shows up in
three document lists: w0's, w1's, and the coordinator's own:

  $ echo '{"op":"stats"}' | fixq client -s $D/c2.sock | grep -o '"documents":\["t.xml"\]' | wc -l | tr -d ' '
  3

Scatter works across the healed pair, byte-identical as before:

  $ echo "$Q" | fixq client -s $D/c2.sock | sed -E 's/,"wall_ms":[0-9.e+-]+//'
  {"ok":true,"id":3,"engine":"interp","mode":"delta","used_delta":true,"generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>","scatter":{"legs":2,"workers":["w0","w1"]}}

prepare warms every replica's prepared-query cache without executing:

  $ echo '{"op":"prepare","id":9,"query":"with $x seeded by doc(\"t.xml\")/r/* recurse $x/*"}' | fixq client -s $D/c2.sock | sed -E 's/,"prepare_ms":[0-9.e+-]+//'
  {"ok":true,"id":9,"prepared_cache":"hit","hash":"c1180df37a6b2cb523876b41e14dc5c9","ifp_count":1,"interp_mode":"delta","algebra_mode":"delta","has_plan":true,"workers":["w0","w1"]}

The Prometheus exposition aggregates coordinator counters with
per-worker samples relabeled by worker:

  $ PROM=$(echo '{"op":"stats","format":"prometheus"}' | fixq client -s $D/c2.sock)
  $ echo "$PROM" | grep -oE 'fixq_cluster_scatter_runs_total [0-9]+'
  fixq_cluster_scatter_runs_total 1
  $ echo "$PROM" | grep -oE 'fixq_cluster_worker_restarts_total [0-9]+'
  fixq_cluster_worker_restarts_total 1
  $ echo "$PROM" | grep -o 'fixq_uptime_seconds{worker=' | wc -l | tr -d ' '
  2
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c2.sock
  {"ok":true,"shutdown":true}
  $ wait

Part 3 — online rebalancing under chaos. Start two workers
(replication 1 so every document has exactly one holder), load a
handful of documents, then roll the topology — add a worker, drain
one, retire it — with a seeded SIGKILL landing on the first key move
(coordinator.rebalance=kill). Queries answer byte-identically before
and after the roll.

  $ fixq cluster --socket $D/c3.sock --workers 2 --replication 1 \
  >   --worker-dir $D/w3 --health-interval-ms 200 \
  >   --chaos 'seed=7,coordinator.rebalance=kill@1' --chaos-log $D/chaos3.log 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c3.sock ] && break; sleep 0.1; done
  $ for i in 0 1 2 3 4 5; do
  >   echo '{"op":"load-doc","uri":"d'$i'.xml","path":"tree.xml"}' \
  >     | fixq client -s $D/c3.sock | grep -o '"ok":true'
  > done
  "ok":true
  "ok":true
  "ok":true
  "ok":true
  "ok":true
  "ok":true
  $ closure() { echo '{"op":"run","query":"with $x seeded by doc(\"d'$1'.xml\")/r/* recurse $x/*","cache":false}' \
  >   | fixq client -s $D/c3.sock | sed -n 's/.*"result":"\([^"]*\)".*/\1/p'; }
  $ for i in 0 1 2 3 4 5; do closure $i; done > roll-before.txt

add-worker brings w2 into the ring and ships exactly the keys whose
rendezvous placement changed; the injected SIGKILL on the first move
is absorbed (the supervisor respawns the worker, the mover retries)
and no key is left pending:

  $ ADD=$(echo '{"op":"add-worker"}' | fixq client -s $D/c3.sock)
  $ echo "$ADD" | grep -o '"worker":"w2"'
  "worker":"w2"
  $ echo "$ADD" | grep -o '"pending":\[\]'
  "pending":[]
  $ echo "$ADD" | grep -o '"workers":\["w0","w1","w2"\]'
  "workers":["w0","w1","w2"]
  $ grep -c 'coordinator.rebalance kill' $D/chaos3.log
  1

Drain w0: its keys move to the survivors while the process keeps
serving until the move completes.

  $ DRAIN=$(echo '{"op":"drain","worker":"w0"}' | fixq client -s $D/c3.sock)
  $ echo "$DRAIN" | grep -o '"pending":\[\]'
  "pending":[]
  $ echo "$DRAIN" | grep -o '"workers":\["w1","w2"\]'
  "workers":["w1","w2"]
  $ echo '{"op":"stats"}' | fixq client -s $D/c3.sock | grep -o '"name":"w0","alive":true' | wc -l | tr -d ' '
  1

Every document still answers byte-identically after the roll:

  $ for i in 0 1 2 3 4 5; do closure $i; done > roll-after.txt
  $ cmp roll-before.txt roll-after.txt && echo identical
  identical

remove-worker retires the drained process for good, and the movement
counters surface in stats:

  $ echo '{"op":"remove-worker","worker":"w0"}' | fixq client -s $D/c3.sock | grep -o '"ok":true'
  "ok":true
  $ echo '{"op":"stats"}' | fixq client -s $D/c3.sock | grep -o '"name":"w0"' | wc -l | tr -d ' '
  0
  $ echo '{"op":"stats"}' | fixq client -s $D/c3.sock | grep -oE '"rebalances":[0-9]+'
  "rebalances":2
  $ for i in 0 1 2 3 4 5; do closure $i; done > roll-final.txt
  $ cmp roll-before.txt roll-final.txt && echo identical
  identical
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c3.sock
  {"ok":true,"shutdown":true}
  $ wait

A second server refuses to steal a live coordinator or server socket:

  $ fixq serve --socket $D/s.sock 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/s.sock ] && break; sleep 0.1; done
  $ fixq serve --socket $D/s.sock </dev/null 2>&1 | tail -1 | sed "s,$D,DIR,"
  fixq serve: DIR/s.sock is in use by a live server (stop it or pick another path)
  $ echo '{"op":"shutdown"}' | fixq client -s $D/s.sock
  {"ok":true,"shutdown":true}
  $ wait
  $ rm -rf $D
