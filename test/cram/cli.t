End-to-end CLI coverage: load a curriculum, query it, inspect
distributivity verdicts and plans.

  $ cat > curriculum.xml <<'XML'
  > <!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
  > <curriculum>
  >   <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  >   <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  >   <course code="c3"><prerequisites/></course>
  >   <course code="c4"><prerequisites/></course>
  > </curriculum>
  > XML

  $ cat > q1.xq <<'XQ'
  > with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
  > recurse $x/id(./prerequisites/pre_code)
  > XQ

  $ fixq run --doc curriculum.xml=curriculum.xml -e 'count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse $x/id(./prerequisites/pre_code))' --stats 2>stats.txt
  3
  $ grep "delta used" stats.txt
  delta used: true
  $ grep "nodes fed" stats.txt
  nodes fed: 4, depth: 3

Both distributivity verdicts:

  $ fixq check --doc curriculum.xml=curriculum.xml q1.xq
  syntactic check (Figure 5): distributive — Delta applies
  algebraic check (∪ push-up): distributive — µ∆ applies
  SQL:1999 rendering: renderable — WITH RECURSIVE applies

Q2 (Example 2.4) is rejected by both:

  $ fixq check -e 'let $seed := (<a/>,<b><c><d/></c></b>) return with $x seeded by $seed recurse if (count($x/self::a)) then $x/* else ()'
  syntactic check (Figure 5): not established
  algebraic check (∪ push-up): not distributive
  SQL:1999 rendering: not renderable (operator ⋈ has no SQL:1999 rendering)

The plan subcommand prints the push-up outcome:

  $ fixq plan --doc curriculum.xml=curriculum.xml q1.xq | tail -1
  distributive (∪ pushed through: «loop»)

Forcing Naïve costs more feeding:

  $ fixq run --doc curriculum.xml=curriculum.xml --mode naive q1.xq --stats 2>stats.txt >/dev/null
  $ grep "nodes fed" stats.txt
  nodes fed: 6, depth: 3

Queries without an IFP:

  $ fixq check -e '1 + 1'
  the query contains no inflationary fixed point
  $ fixq run -e 'string-join(("a", "b"), "-")'
  a-b

Engine selection and parity:

  $ fixq run --doc curriculum.xml=curriculum.xml --engine algebra q1.xq > alg.out
  $ fixq run --doc curriculum.xml=curriculum.xml --engine interp q1.xq > int.out
  $ cmp alg.out int.out

The SQL:1999 backend: plan --sql prints the WITH RECURSIVE rendering of
the first IFP site with the provenance of each materialized relation,
and --engine sql executes it byte-identically:

  $ fixq plan --sql --doc curriculum.xml=curriculum.xml q1.xq
  WITH RECURSIVE fixpoint(iter, item) AS (
      (SELECT a0.iter, a4.dst
       FROM seed a0, step_0 a1, step_1 a2, val_1 a3, ids_1 a4
       WHERE a0.item = a1.src AND a1.dst = a2.src AND a2.dst = a3.src AND a3.v = a4.v)
    UNION ALL
      (SELECT a0.iter, a4.dst
       FROM fixpoint a0, step_0 a1, step_1 a2, val_1 a3, ids_1 a4
       WHERE a0.item = a1.src AND a1.dst = a2.src AND a2.dst = a3.src AND a3.v = a4.v)
  )
  SELECT DISTINCT iter, item FROM fixpoint
  -- step_0(src, dst): child::prerequisites over every document node
  -- step_1(src, dst): child::pre_code over every document node
  -- val_1(src, v): string values of step_1 targets
  -- ids_1(v, dst): fn:id resolution of val_1 values
  -- seed(iter, item): the loop-lifted seed relation

  $ fixq run --doc curriculum.xml=curriculum.xml --engine sql q1.xq > sql.out
  $ cmp sql.out int.out

A generated hospital document renders too (a pure step chain), and the
engine falls back to the interpreter when the body is outside the
SQL:1999 subset — parity holds either way:

  $ fixq generate hospital --size 60 > hospital.xml
  $ cat > hq.xq <<'XQ'
  > with $x seeded by doc("hospital.xml")/hospital/patient
  > recurse $x/parents/patient
  > XQ
  $ fixq run --doc hospital.xml=hospital.xml --engine sql hq.xq > hsql.out
  $ fixq run --doc hospital.xml=hospital.xml --engine interp hq.xq > hint.out
  $ cmp hsql.out hint.out

The stratified-difference refinement (Section 6):

  $ fixq check -e 'with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse ($x/id(./prerequisites/pre_code) except doc("curriculum.xml")/curriculum/course[@code="c3"])' --doc curriculum.xml=curriculum.xml
  syntactic check (Figure 5): not established
  algebraic check (∪ push-up): not distributive
  SQL:1999 rendering: not renderable (operator \ has no SQL:1999 rendering)
  $ fixq run --stratified --doc curriculum.xml=curriculum.xml -e 'count(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"] recurse ($x/id(./prerequisites/pre_code) except doc("curriculum.xml")/curriculum/course[@code="c3"]))' --stats 2>stats.txt
  2
  $ grep "delta used" stats.txt
  delta used: true

Workload generation is deterministic:

  $ fixq generate curriculum --size 6 --seed 5 > c1.xml
  $ fixq generate curriculum --size 6 --seed 5 > c2.xml
  $ cmp c1.xml c2.xml

Errors are reported on stderr with a non-zero exit:

  $ fixq run -e '1 +'
  error: parse error at 1:4: expected an expression, found end of input
  [1]
  $ fixq run -e 'doc("missing.xml")'
  error: doc: document "missing.xml" is not available
  [1]

The repl reads one query per line:

  $ printf '1 + 1\ncount((1, 2, 3))\n\n' | fixq repl
  fixq repl — one query per line, blank line or EOF to quit
  fixq> 2
  fixq> 3
  fixq> 

Generation covers all four workloads:

  $ fixq generate xmark --size 0.001 | head -1
  <site>
  $ fixq generate play | head -1
  <PLAY>
  $ fixq generate hospital --size 50 | head -1
  <hospital>

Static errors are caught before evaluation:

  $ fixq check -e 'count($nope)'
  error (main): undefined variable $nope
  [1]

With --template, the explain subcommand instantiates the paper's
Figure 2/4 templates:

  $ fixq explain --template naive -e 'with $x seeded by . recurse $x/a' | head -2
  declare function fix_1($x as node()*) as node()* { (let $res_1 := rec_1($x) return (if (empty(($res_1 except $x))) then $x else fix_1(($res_1 union $x)))) };
  declare function rec_1($x as node()*) as node()* { $x/child::a };
  $ fixq explain --template hint -e 'with $x seeded by . recurse count($x)' 
  (with $x seeded by . recurse (for $y_1 in $x return count($y_1)))

The lint subcommand reports located, coded findings. A non-distributive
body gets blamed at its smallest offending subexpression, the blocked
algebra operator is mapped back to the same construct, and --fix-hints
applies the Section-3.2 rewrite and re-runs both checkers:

  $ printf '<r><a/><b/></r>' > t.xml
  $ fixq lint --doc t=t.xml -e 'with $x seeded by doc("t")/r recurse ($x/a except $x/b)'
  1:1: info FQ032 (main): the distributivity hint can repair this recursion body (fixq lint --fix-hints)
  1:1: info FQ053 (main): certified fixpoint round bound: <= 3 (node-only IFP: at most 2 reachable nodes over the synopsis, so at most 3 rounds)
  1:39: warning FQ030 (main): not distributive for $x: 'except'/'intersect' with $x free must see both sides (rule EXCEPT/INTERSECT)
  1:39: info FQ031 (main): the algebraic ∪-push is blocked at plan operator '\ (∪ arrives on both inputs)' — introduced by this construct
  ifp $x (main) at 1:1: divergence=terminates syntactic=blamed algebraic=blocked
  $ fixq lint --doc t=t.xml --fix-hints -e 'with $x seeded by doc("t")/r recurse ($x/a except $x/b)' | tail -4
  fix-hints: applied to 1 fixed point(s)
  fix-hints: syntactic after repair: distributive
  fix-hints: algebraic after repair: distributive
  (with $x seeded by doc("t")/child::r recurse (for $y_1 in $x return ($y_1/child::a except $y_1/child::b)))

Error-severity findings drive the exit status; warnings alone do not:

  $ fixq lint -e 'let $u := 1 return count($nope)'
  1:5: warning FQ020 (main): the let binding $u is never used
  1:26: error FQ010 (main): undefined variable $nope
  [1]
  $ fixq lint -e 'for $i in (1, 2) return 3'
  1:5: warning FQ021 (main): the for binding $i is never used

The cost analyzer: explain prints the synopsis-driven report (work,
cardinalities, the certified round bound, per-engine costs with the
chosen engine starred), plan annotates each operator with its
cardinality interval, and --engine auto logs its pick under --stats:

  $ fixq explain --doc curriculum.xml=curriculum.xml q1.xq
  cost estimate
    work: 106 units
    result cardinality: 0..4
    rounds bound: <= 5 (certified)
    doc curriculum.xml: synopsis available
  engines
  * interp         74  native   Delta (Figure 5) halves refeeding
    algebra       144  native   Table-1 plan, mu-delta (push-up holds)
    sql           252  native   WITH RECURSIVE over materialized document relations
    chosen: interp 74, algebra 144, sql 252 (cheapest: interp)
  operators
    1:1   0..4  ifp $x  [rounds <= 5 (certified)]
    1:19  1       doc("curriculum.xml")  [25 nodes]
    1:41  1         step child::curriculum  [curriculum]
    1:52  4         step child::course  [curriculum/course]
    1:52  0..4      filter
    1:59  4           step attribute::code
    2:17  0..1        step child::prerequisites  [curriculum/course/prerequisites]
    2:31  0..2        step child::pre_code  [curriculum/course/prerequisites/pre_code]
    2:12  0..4      id(...)
  $ fixq plan --doc curriculum.xml=curriculum.xml q1.xq | head -3
  «loop»  {card 0..144}
  └─ δ  {card 0..144}
     └─ πiter:iter',item  {card 0..144}
  $ fixq run --doc curriculum.xml=curriculum.xml --engine auto q1.xq --stats 2>stats.txt >auto.out
  $ grep "engine chosen" stats.txt
  engine chosen: interp
  $ cmp auto.out int.out

The lint subcommand speaks SARIF 2.1.0 for code-scanning upload:

  $ fixq lint --format sarif -e 'let $u := 1 return 2' | jq '{version, tool: .runs[0].tool.driver.name, results: [.runs[0].results[] | {ruleId, level, line: .locations[0].physicalLocation.region.startLine}]}'
  {
    "version": "2.1.0",
    "tool": "fixq",
    "results": [
      {
        "ruleId": "FQ020",
        "level": "warning",
        "line": 1
      }
    ]
  }
