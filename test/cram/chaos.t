Deterministic fault injection (--chaos) and the resource governor:
graceful degradation on the single-process server, and a seeded chaos
schedule against the cluster whose every answer stays byte-identical
to a fault-free run.

  $ cat > tree.xml <<'XML'
  > <r><a><b/><b/></a><a><b/></a></r>
  > XML
  $ Q='{"op":"run","id":2,"query":"with $x seeded by doc(\"t.xml\")/r/* recurse $x/*","cache":false}'
  $ L='{"op":"load-doc","id":1,"uri":"t.xml","path":"tree.xml"}'

Part 1 -- a malformed schedule is rejected up front:

  $ fixq serve --pipe --chaos "transport.recv=explode" </dev/null
  fixq serve: chaos: unknown fault kind "explode"
  [2]

Part 2 -- simulated Out_of_memory mid-round. The second fixpoint round
of the first run raises; the request degrades to a structured error,
the server keeps serving, and the identical follow-up run succeeds
(nothing poisoned either cache). The stats line — full of timings — is
reduced to its governor counters, which record one degraded request:

  $ printf '%s\n' "$L" "$Q" "$Q" '{"op":"stats"}' '{"op":"shutdown"}' \
  >   | fixq serve --pipe --chaos "seed=1,fixpoint.round=oom@2" \
  >   | sed -E 's/,"wall_ms":[0-9.e+-]+//; s/^.*"stats".*("governor":\{[^}]*\}).*$/\1/'
  {"ok":true,"id":1,"uri":"t.xml","generation":1}
  {"ok":false,"id":2,"error":"out of memory: request aborted (memory budget exceeded)"}
  {"ok":true,"id":2,"engine":"interp","mode":"delta","used_delta":true,"prepared_cache":"hit","result_cache":"miss","generation":1,"nodes_fed":5,"depth":2,"result":"<b/> <b/> <b/>"}
  "governor":{"inflight":0,"shed":0,"oom":1,"stack_overflow":0}
  {"ok":true,"shutdown":true}

Part 3 -- load shedding. With an in-flight cap of zero every query is
shed with a retry hint, while control-plane ops keep answering:

  $ printf '%s\n' "$L" "$Q" '{"op":"ping","id":7}' '{"op":"shutdown"}' \
  >   | fixq serve --pipe --max-pending 0 --retry-after-ms 55
  {"ok":true,"id":1,"uri":"t.xml","generation":1}
  {"ok":false,"id":2,"error":"overloaded: too many requests in flight (0)","retry_after_ms":55}
  {"ok":true,"id":7,"pong":true}
  {"ok":true,"shutdown":true}

Part 4 -- the cluster under a seeded schedule. Deterministic @nth drops
sever connections mid-conversation (spaced so no worker's retry budget
can be exhausted), a scatter leg is dropped in flight twice, and the
workers delay rounds and requests. Every fault is parity-safe: twelve
runs must all answer, byte-identical to a fault-free single process.

  $ D=$(mktemp -d /tmp/fixq-chaos-XXXXXX)
  $ CHAOS="seed=4,transport.send=drop@3,transport.send=drop@6,transport.send=drop@9"
  $ CHAOS="$CHAOS,transport.recv=drop@2,transport.recv=drop@5,transport.recv=drop@8"
  $ CHAOS="$CHAOS,coordinator.scatter=drop@2,coordinator.scatter=drop@4"
  $ CHAOS="$CHAOS,server.handle=delay1#6,fixpoint.round=delay1#8"
  $ fixq cluster --socket $D/c.sock --workers 2 --replication 2 \
  >   --worker-dir $D/w --health-interval-ms 3600000 \
  >   --chaos "$CHAOS" --chaos-log $D/chaos.log 2>/dev/null &
  $ for i in $(seq 150); do [ -S $D/c.sock ] && break; sleep 0.1; done
  $ echo "$L" | fixq client -s $D/c.sock
  {"ok":true,"id":1,"uri":"t.xml","generation":1,"workers":["w0","w1"]}
  $ printf '%s\n' "$L" "$Q" '{"op":"shutdown"}' | fixq serve --pipe \
  >   | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > single.txt
  $ for i in $(seq 12); do
  >   echo "$Q" | fixq client -s $D/c.sock \
  >     | sed -n 's/.*"result":"\([^"]*\)".*/\1/p'
  > done > chaos_runs.txt

All twelve runs answered (a degraded or crashed request would leave a
hole), and with exactly the fault-free bytes:

  $ wc -l < chaos_runs.txt | tr -d ' '
  12
  $ sort -u chaos_runs.txt | cmp - single.txt && echo identical
  identical

The coordinator survived every injected fault and still answers:

  $ echo '{"op":"ping","id":9}' | fixq client -s $D/c.sock
  {"ok":true,"id":9,"pong":true,"workers":2}
  $ echo '{"op":"shutdown"}' | fixq client -s $D/c.sock
  {"ok":true,"shutdown":true}
  $ wait

The event log (written with O_APPEND across coordinator and workers)
shows a substantial, well-formed fault sequence:

  $ test $(wc -l < $D/chaos.log) -ge 20 && echo at-least-20-faults
  at-least-20-faults
  $ grep -cvE '^[0-9]+ [0-9]+ [a-z.]+ (drop|truncate|kill|oom|delay[0-9.]+)$' $D/chaos.log
  0
  [1]
  $ awk '{print $3}' $D/chaos.log | sort -u
  coordinator.scatter
  fixpoint.round
  server.handle
  transport.recv
  transport.send
  $ rm -rf $D
