(* The columnar executor's batch kernels: every vectorized operator
   against a row-at-a-time reference on typed, mixed and node-valued
   columns, plus two parity properties — kernel-vs-reference on random
   relations, and [--engine sql] byte-identical to the interpreter
   across the four workload families. *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Doc_registry = Fixq_xdm.Doc_registry
module Xml_parser = Fixq_xdm.Xml_parser
module Serializer = Fixq_xdm.Serializer
module Value = Fixq_algebra.Value
module R = Fixq_algebra.Relation
module W = Fixq_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small pool of real nodes for node-valued cells. *)
let pool =
  let doc =
    Xml_parser.parse_string ~strip_whitespace:true
      {|<r><a k="1"><b>x</b></a><a k="2"><b>y</b><b>z</b></a><c k="1"/></r>|}
  in
  let out = ref [] in
  Node.iter_subtree (fun n -> out := n :: !out) doc;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Row-at-a-time references                                            *)
(* ------------------------------------------------------------------ *)

(* Compare rows via {!Value.key} — nodes carry cyclic parent pointers,
   so polymorphic compare on raw rows must never run. *)
let keys row = Array.to_list (Array.map Value.key row)
let sorted rows = List.sort compare (List.map keys rows)

(* Multiset equality modulo order — the batch kernels may emit any
   order for set-semantics operators. *)
let same_bag a b = sorted a = sorted b

(* Exact list equality (for operators with a specified row order). *)
let same_list a b = List.map keys a = List.map keys b

let row_mem r rows = List.exists (fun r' -> keys r' = keys r) rows

let ref_distinct rows =
  List.rev
    (List.fold_left
       (fun acc r -> if row_mem r acc then acc else r :: acc)
       [] rows)

(* EXCEPT ALL: each right occurrence cancels one matching left
   occurrence. *)
let ref_difference l r =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let k = keys row in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    r;
  List.filter
    (fun row ->
      let k = keys row in
      match Hashtbl.find_opt counts k with
      | Some c when c > 0 ->
        Hashtbl.replace counts k (c - 1);
        false
      | _ -> true)
    l

let cell_eq a b = Value.equal_key_cell a b

let ref_equi_join keyidx l r =
  List.concat_map
    (fun lr ->
      List.filter_map
        (fun rr ->
          if List.for_all (fun (li, ri) -> cell_eq lr.(li) rr.(ri)) keyidx
          then Some (Array.append lr rr)
          else None)
        r)
    l

let ref_semi_join keyidx l r =
  List.filter
    (fun lr ->
      List.exists
        (fun rr ->
          List.for_all (fun (li, ri) -> cell_eq lr.(li) rr.(ri)) keyidx)
        r)
    l

(* ------------------------------------------------------------------ *)
(* Unit suites per kernel                                              *)
(* ------------------------------------------------------------------ *)

let n i = Value.Nd pool.(i mod Array.length pool)

let mixed_rows =
  [ [| Value.Int 1; Value.Str "x" |]; [| Value.Int 2; Value.Str "y" |];
    [| Value.Int 1; Value.Str "x" |]; [| Value.Bool true; n 0 |];
    [| Value.Int 2; Value.Str "y" |]; [| Value.Bool true; n 0 |];
    [| n 1; Value.Dbl 2.5 |] ]

let test_distinct_mixed () =
  let r = R.create [ "a"; "b" ] mixed_rows in
  check "distinct = reference" true
    (same_bag (R.rows (R.distinct r)) (ref_distinct mixed_rows))

let test_distinct_packed () =
  (* int/node/bool columns take the packed Pair_set path; push past any
     small-input threshold. *)
  let rows =
    List.init 4000 (fun i -> [| Value.Int (i mod 37); Value.Int (i mod 11) |])
  in
  let d = R.distinct (R.create [ "x"; "y" ] rows) in
  check "packed distinct = reference" true
    (same_bag (R.rows d) (ref_distinct rows));
  let rows_n = List.init 900 (fun i -> [| Value.Int (i mod 13); n i |]) in
  let dn = R.distinct (R.create [ "x"; "y" ] rows_n) in
  check "node-column distinct = reference" true
    (same_bag (R.rows dn) (ref_distinct rows_n))

let test_union_permuted () =
  let l = R.create [ "a"; "b" ] [ [| Value.Int 1; Value.Str "u" |] ] in
  let r = R.create [ "b"; "a" ] [ [| Value.Str "v"; Value.Int 2 |] ] in
  let u = R.union l r in
  check "schema kept" true (R.schema u = [ "a"; "b" ]);
  check "bag union, right side permuted" true
    (same_bag (R.rows u)
       [ [| Value.Int 1; Value.Str "u" |]; [| Value.Int 2; Value.Str "v" |] ])

let test_difference_all () =
  let l =
    R.create [ "a" ]
      [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 1 |];
        [| Value.Int 3 |] ]
  in
  let r = R.create [ "a" ] [ [| Value.Int 1 |] ] in
  (* EXCEPT ALL: one right occurrence cancels one of the two left 1s. *)
  check "difference = reference" true
    (same_bag
       (R.rows (R.difference l r))
       [ [| Value.Int 2 |]; [| Value.Int 1 |]; [| Value.Int 3 |] ]);
  check "difference property reference agrees" true
    (same_bag
       (R.rows (R.difference l r))
       (ref_difference (R.rows l) (R.rows r)))

let test_equi_join_both_orientations () =
  (* The kernel picks its probe side by size; a small relation joined
     with a large one must agree with the reference either way
     around. *)
  let small_rows = List.init 3 (fun i -> [| Value.Int i; Value.Str "s" |]) in
  let large_rows =
    List.init 200 (fun i -> [| Value.Int (i mod 5); n i |])
  in
  let small = R.create [ "k"; "s" ] small_rows in
  let large = R.create [ "k2"; "v" ] large_rows in
  let j1 = R.equi_join [ ("k", "k2") ] small large in
  check "small ⋈ large = reference" true
    (same_bag (R.rows j1)
       (ref_equi_join [ (0, 0) ] small_rows large_rows));
  let j2 = R.equi_join [ ("k2", "k") ] large small in
  check "large ⋈ small = reference" true
    (same_bag (R.rows j2)
       (ref_equi_join [ (0, 0) ] large_rows small_rows))

let test_equi_join_clash_and_extra () =
  let l = R.create [ "k"; "v" ]
      [ [| Value.Int 1; Value.Int 10 |]; [| Value.Int 2; Value.Int 20 |] ]
  in
  let r = R.create [ "k"; "v" ]
      [ [| Value.Int 1; Value.Int 11 |]; [| Value.Int 1; Value.Int 12 |] ]
  in
  let j = R.equi_join [ ("k", "k") ] l r in
  check "clashing right columns primed" true
    (R.schema j = [ "k"; "v"; "k'"; "v'" ]);
  check_int "rows" 2 (R.cardinal j);
  let jx = R.equi_join ~extra:(fun li ri -> li <> ri) [ ("k", "k") ] l r in
  check_int "extra predicate filters" 1 (R.cardinal jx)

let test_semi_join () =
  let l_rows =
    [ [| Value.Int 1; Value.Str "a" |]; [| Value.Int 9; Value.Str "b" |];
      [| Value.Int 2; Value.Str "c" |]; [| Value.Int 1; Value.Str "d" |] ]
  in
  let r_rows =
    [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 1 |] ]
  in
  let l = R.create [ "k"; "v" ] l_rows in
  let r = R.create [ "k" ] r_rows in
  let s = R.semi_join [ ("k", "k") ] l r in
  (* each left row at most once, in left order *)
  check "semi_join = reference, order kept" true
    (same_list (R.rows s) (ref_semi_join [ (0, 0) ] l_rows r_rows))

let test_project_select () =
  let r = R.create [ "a"; "b" ] mixed_rows in
  let p = R.project [ ("b2", "b"); ("a2", "a") ] r in
  check "project renames and reorders" true (R.schema p = [ "b2"; "a2" ]);
  check "project rows" true
    (same_list (R.rows p)
       (List.map (fun row -> [| row.(1); row.(0) |]) mixed_rows));
  let flags =
    R.col_of_values
      (Array.of_list (List.mapi (fun i _ -> Value.Bool (i mod 2 = 0)) mixed_rows))
  in
  let s = R.select_bool "f" (R.append_col "f" flags r) in
  check_int "select_bool keeps the true rows" 4 (R.cardinal s)

let test_int_rep () =
  check "int column packs" true
    (R.int_rep (R.col_of_values [| Value.Int 1; Value.Int 2 |]) <> None);
  check "bool column packs" true
    (R.int_rep (R.col_of_values [| Value.Bool true; Value.Bool false |])
     <> None);
  check "node column packs" true
    (R.int_rep (R.col_of_values [| n 0; n 1 |]) <> None);
  check "string column does not pack" true
    (R.int_rep (R.col_of_values [| Value.Str "x" |]) = None);
  check "mixed column does not pack" true
    (R.int_rep (R.col_of_values [| Value.Int 1; Value.Str "x" |]) = None);
  (* packed reps of distinct kinds must not collide *)
  let ci = R.col_of_values [| Value.Int 1 |] in
  let cb = R.col_of_values [| Value.Bool true |] in
  match (R.int_rep ci, R.int_rep cb) with
  | (Some fi, Some fb) -> check "Int 1 ≠ Bool true packed" true (fi 0 <> fb 0)
  | _ -> Alcotest.fail "expected packed reps"

let test_group_count_number_tag () =
  let r =
    R.create [ "g"; "v" ]
      [ [| Value.Str "a"; Value.Int 3 |]; [| Value.Str "b"; Value.Int 1 |];
        [| Value.Str "a"; Value.Int 2 |]; [| Value.Str "a"; Value.Int 1 |] ]
  in
  let gc = R.group_count ~partition:(Some "g") ~result:"n" r in
  check "group sizes" true
    (same_bag (R.rows gc)
       [ [| Value.Str "a"; Value.Int 3 |]; [| Value.Str "b"; Value.Int 1 |] ]);
  let total = R.group_count ~partition:None ~result:"n" r in
  check "whole-table count" true
    (same_list (R.rows total) [ [| Value.Int 4 |] ]);
  let nb = R.number ~order:[ "v" ] ~partition:(Some "g") ~result:"rk" r in
  let rank row = match row.(2) with Value.Int i -> i | _ -> -1 in
  let by_gv g v =
    List.find
      (fun row -> row.(0) = Value.Str g && row.(1) = Value.Int v)
      (R.rows nb)
  in
  check_int "rank a/1" 1 (rank (by_gv "a" 1));
  check_int "rank a/2" 2 (rank (by_gv "a" 2));
  check_int "rank a/3" 3 (rank (by_gv "a" 3));
  check_int "rank b/1" 1 (rank (by_gv "b" 1));
  let tagged = R.tag ~result:"t" r in
  let tags =
    List.map (fun row -> match row.(2) with Value.Int i -> i | _ -> -1)
      (R.rows tagged)
  in
  check "tags unique" true
    (List.length (List.sort_uniq compare tags) = List.length tags)

(* ------------------------------------------------------------------ *)
(* Property: kernels ≡ row references on random relations              *)
(* ------------------------------------------------------------------ *)

let cell_gen =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map (fun i -> Value.Int i) (QCheck2.Gen.int_range 0 4);
      QCheck2.Gen.map (fun i -> Value.Str (String.make 1 (Char.chr (97 + i))))
        (QCheck2.Gen.int_range 0 3);
      QCheck2.Gen.map (fun b -> Value.Bool b) QCheck2.Gen.bool;
      QCheck2.Gen.map n (QCheck2.Gen.int_range 0 11) ]

let rows_gen width =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (map Array.of_list (list_repeat width cell_gen)))

let prop_kernels_match_reference =
  QCheck2.Test.make ~count:120 ~name:"batch kernels = row references"
    QCheck2.Gen.(pair (rows_gen 2) (rows_gen 2))
    (fun (lrows, rrows) ->
      let l = R.create [ "a"; "b" ] lrows in
      let r = R.create [ "a"; "b" ] rrows in
      let rkeyed = R.project [ ("a2", "a"); ("b2", "b") ] r in
      same_bag (R.rows (R.distinct l)) (ref_distinct lrows)
      && same_bag (R.rows (R.union l r)) (lrows @ rrows)
      && same_bag (R.rows (R.difference l r)) (ref_difference lrows rrows)
      && same_bag
           (R.rows (R.equi_join [ ("a", "a2") ] l rkeyed))
           (ref_equi_join [ (0, 0) ] lrows rrows)
      && same_list
           (R.rows (R.semi_join [ ("a", "a2") ] l rkeyed))
           (ref_semi_join [ (0, 0) ] lrows rrows))

(* ------------------------------------------------------------------ *)
(* Property: --engine sql byte-identical to the interpreter            *)
(* ------------------------------------------------------------------ *)

(* The four workload families per generator seed: curriculum (q1 and
   the per-course check — both render to WITH RECURSIVE), bidder and
   dialogs (outside the SQL:1999 subset — the engine falls back), and
   hospital (renders). Byte parity must hold either way. *)
let sql_parity_on seed =
  let registry = Doc_registry.create () in
  ignore
    (W.Curriculum.load ~registry
       { W.Curriculum.default with W.Curriculum.courses = 60; seed });
  ignore
    (W.Xmark.load ~registry
       { W.Xmark.default with W.Xmark.scale = 0.002; W.Xmark.seed });
  ignore
    (W.Shakespeare.load ~registry
       { W.Shakespeare.default with W.Shakespeare.acts = 2;
         scenes_per_act = 2; seed });
  ignore
    (W.Hospital.load ~registry
       { W.Hospital.default with W.Hospital.total = 120; seed });
  List.for_all
    (fun src ->
      let irun = Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) src in
      let srun = Fixq.run ~registry ~engine:(Fixq.Sql Fixq.Auto) src in
      Serializer.seq_to_string irun.Fixq.result
      = Serializer.seq_to_string srun.Fixq.result)
    [ W.Queries.q1; W.Queries.curriculum_check; W.Queries.bidder_network;
      W.Queries.dialogs; W.Queries.hospital ]

let prop_sql_parity =
  QCheck2.Test.make ~count:6
    ~name:"--engine sql byte-identical to interpreter (four families)"
    QCheck2.Gen.(int_range 1 1000)
    sql_parity_on

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "columnar"
    [ ( "kernels",
        [ Alcotest.test_case "distinct mixed" `Quick test_distinct_mixed;
          Alcotest.test_case "distinct packed" `Quick test_distinct_packed;
          Alcotest.test_case "union permuted" `Quick test_union_permuted;
          Alcotest.test_case "difference all" `Quick test_difference_all;
          Alcotest.test_case "equi_join orientations" `Quick
            test_equi_join_both_orientations;
          Alcotest.test_case "equi_join clash/extra" `Quick
            test_equi_join_clash_and_extra;
          Alcotest.test_case "semi_join" `Quick test_semi_join;
          Alcotest.test_case "project/select" `Quick test_project_select;
          Alcotest.test_case "int_rep" `Quick test_int_rep;
          Alcotest.test_case "group/number/tag" `Quick
            test_group_count_number_tag ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_kernels_match_reference;
          QCheck_alcotest.to_alcotest prop_sql_parity ] ) ]
