(* Property tests for the static cost & cardinality analyzer: the
   certified round bound is never exceeded at runtime on any of the
   four workload families, the auto-chosen engine is byte-compatible
   with the interpreter, and the patch-maintained synopsis keeps every
   per-path count exact under randomized patch-doc sequences. *)

module E = Fixq_cost.Estimate
module W = Fixq_workloads
module Store = Fixq_service.Store
module Synopsis = Fixq_xdm.Synopsis
module Node = Fixq_xdm.Node
module Patch = Fixq_xdm.Patch
module Serializer = Fixq_xdm.Serializer
module Doc_registry = Fixq_xdm.Doc_registry
module Parser = Fixq_lang.Parser
module Diag = Fixq_analysis.Diag

let check = Alcotest.(check bool)

(* Same probe wiring as the CLI and the bench: the prepared-query and
   distributivity verdicts shape the per-engine costs. *)
let analyze registry query =
  let p = Parser.parse_program query in
  let no_ifp = Fixq.count_ifps p = 0 in
  let compiled =
    if no_ifp then None
    else
      Some
        (match Fixq.plan_of_first_ifp ~registry p with
        | Some _ -> true
        | None -> false
        | exception _ -> false)
  in
  let sql =
    if no_ifp then None
    else try Fixq.sql_of_first_ifp ~registry p with _ -> None
  in
  let (syntactic, algebraic) =
    match try Fixq.distributivity_verdicts ~registry p with _ -> None with
    | Some v -> v
    | None -> (false, None)
  in
  E.analyze ~registry ~compiled
    ~sql_renderable:(Option.map Result.is_ok sql)
    ~algebra_delta:(algebraic = Some true) ~interp_delta:syntactic p

(* ------------------------------------------------------------------ *)
(* Rounds bound ≥ actual and auto byte-parity, across all four
   workload families at randomized sizes and seeds. *)

let load_family registry ~family ~seed ~size =
  match family with
  | 0 ->
    ignore
      (W.Curriculum.load ~registry
         { W.Curriculum.default with
           W.Curriculum.courses = 20 + (15 * size);
           seed });
    if seed mod 2 = 0 then W.Queries.q1 else W.Queries.curriculum_check
  | 1 ->
    ignore
      (W.Xmark.load ~registry
         { W.Xmark.default with
           W.Xmark.scale = 0.001 +. (0.0004 *. float_of_int size);
           seed });
    W.Queries.bidder_network
  | 2 ->
    ignore
      (W.Shakespeare.load ~registry
         { W.Shakespeare.default with
           W.Shakespeare.seed;
           acts = 1 + size;
           max_dialog = 4 + (3 * size) });
    W.Queries.dialogs
  | _ ->
    ignore
      (W.Hospital.load ~registry
         { W.Hospital.default with
           W.Hospital.total = 200 + (150 * size);
           seed });
    W.Queries.hospital

let prop_round_bounds =
  QCheck2.Test.make ~count:24
    ~name:"certified round bound holds at runtime; auto is byte-compatible"
    QCheck2.Gen.(triple (int_range 0 3) (int_range 0 9999) (int_range 0 4))
    (fun (family, seed, size) ->
      let registry = Doc_registry.create () in
      let query = load_family registry ~family ~seed ~size in
      let est = analyze registry query in
      let interp =
        Fixq.run ~registry ~engine:(Fixq.Interpreter Fixq.Auto) query
      in
      let chosen =
        match est.E.chosen with
        | "algebra" -> Fixq.Algebra Fixq.Auto
        | "sql" -> Fixq.Sql Fixq.Auto
        | _ -> Fixq.Interpreter Fixq.Auto
      in
      let auto = Fixq.run ~registry ~engine:chosen query in
      let actual = max interp.Fixq.depth auto.Fixq.depth in
      (match est.E.rounds_bound with
      | Some bound when bound < actual ->
        QCheck2.Test.fail_reportf
          "family %d: certified bound %d < actual %d rounds" family bound
          actual
      | _ -> ());
      if
        Serializer.seq_to_string interp.Fixq.result
        <> Serializer.seq_to_string auto.Fixq.result
      then
        QCheck2.Test.fail_reportf
          "family %d: engine %s differs from the interpreter" family
          est.E.chosen;
      true)

(* ------------------------------------------------------------------ *)
(* Synopsis maintenance: after a random sequence of patch-doc edits on
   a generated document of any family, the store's maintained synopsis
   must agree exactly (paths, attributes, texts, totals) with a fresh
   build of the patched tree. *)

let fragments =
  [| "<note>x</note>";
     "<extra><leaf/><leaf/></extra>";
     "<pre_code>c1</pre_code>";
     "<wing name=\"w\"><patient><name>p</name></patient></wing>" |]

(* Every element's patch path ("/a[1]/b[2]"), per-parent same-name
   indexed as {!Patch.resolve} expects. *)
let element_paths root =
  let acc = ref [] in
  let rec walk prefix node =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun c ->
        if c.Node.kind = Node.Element then begin
          let nm = Node.name c in
          let k = (try Hashtbl.find seen nm with Not_found -> 0) + 1 in
          Hashtbl.replace seen nm k;
          let p = Printf.sprintf "%s/%s[%d]" prefix nm k in
          acc := p :: !acc;
          walk p c
        end)
      (Node.children node)
  in
  walk "" root;
  List.rev !acc

let kinds = [| ("curriculum", 10.); ("xmark", 0.001); ("play", 1.); ("hospital", 120.) |]

let prop_synopsis_exact =
  QCheck2.Test.make ~count:40
    ~name:"synopsis path counts stay exact under random patch sequences"
    QCheck2.Gen.(triple (int_range 0 3) (int_range 0 99999) (int_range 1 12))
    (fun (kind_ix, seed, nops) ->
      let store = Store.create () in
      let rng = Random.State.make [| seed; nops |] in
      let uri = "doc.xml" in
      let (kind, size) = kinds.(kind_ix) in
      Store.load_generated store ~uri ~kind ~size ~seed;
      (* force the lazy build so every edit takes the incremental
         maintenance path rather than a fresh walk at the end *)
      ignore (Store.synopsis store uri);
      for _ = 1 to nops do
        match Doc_registry.find ~registry:(Store.registry store) uri with
        | None -> ()
        | Some root ->
          let paths = element_paths root in
          if paths <> [] then begin
            let pick l = List.nth l (Random.State.int rng (List.length l)) in
            let path = pick paths in
            let top = List.length (String.split_on_char '/' path) <= 2 in
            let xml = fragments.(Random.State.int rng (Array.length fragments)) in
            let op =
              match Random.State.int rng (if top then 2 else 4) with
              | 0 ->
                Patch.Insert
                  { path;
                    position =
                      (if top then pick [ Patch.First; Patch.Last ]
                       else
                         pick
                           [ Patch.First; Patch.Last; Patch.Before;
                             Patch.After ]);
                    xml }
              | 1 ->
                Patch.Set_text
                  { path; text = "t" ^ string_of_int (Random.State.int rng 100) }
              | 2 -> Patch.Replace { path; xml }
              | _ -> Patch.Delete { path }
            in
            (* invalid edits (duplicate IDs, …) are rejected before any
               mutation; the synopsis must survive them unchanged *)
            try ignore (Store.patch store ~uri op) with _ -> ()
          end
      done;
      match
        ( Doc_registry.find ~registry:(Store.registry store) uri,
          Store.synopsis store uri )
      with
      | Some root, Some maintained ->
        if not (Synopsis.equal_counts maintained (Synopsis.build root)) then
          QCheck2.Test.fail_reportf
            "%s: maintained synopsis diverged after %d ops" kind nops;
        true
      | _ ->
        QCheck2.Test.fail_reportf "%s: document or synopsis vanished" kind)

(* ------------------------------------------------------------------ *)
(* Deterministic spot checks on the diagnostics and the report. *)

let registry = Doc_registry.create ()

let () =
  ignore
    (W.Curriculum.load ~registry
       { W.Curriculum.default with W.Curriculum.courses = 12 })

let has_code code (est : E.t) =
  List.exists (fun d -> d.Diag.code = code) est.E.diagnostics

let test_certified_bound_diag () =
  let est = analyze registry W.Queries.q1 in
  check "FQ053 on a node-only IFP" true (has_code "FQ053" est);
  check "a bound is derived" true (est.E.rounds_bound <> None);
  check "the chosen engine is one of the estimates" true
    (List.exists (fun e -> e.E.eng_name = est.E.chosen) est.E.engines)

let test_empty_step_diag () =
  let est =
    analyze registry
      "with $x seeded by doc(\"curriculum.xml\")/curriculum/course \
       recurse $x/no_such_child/course"
  in
  check "FQ050 on a statically empty step" true (has_code "FQ050" est)

let test_empty_seed_diag () =
  let est =
    analyze registry
      "with $x seeded by doc(\"curriculum.xml\")/nowhere recurse $x/course"
  in
  check "FQ052 on a statically empty seed" true (has_code "FQ052" est)

let test_uncertified_diag () =
  let est = analyze registry "with $x seeded by 1 recurse $x + 1" in
  check "FQ054 when no bound is derivable" true (has_code "FQ054" est);
  check "no bound" true (est.E.rounds_bound = None)

let test_explain_text () =
  let est = analyze registry W.Queries.q1 in
  let text = E.to_text est in
  check "explain text names the chosen engine" true
    (let needle = "* " ^ est.E.chosen in
     let rec find i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "cost"
    [ ("diagnostics",
       [ Alcotest.test_case "certified bound" `Quick test_certified_bound_diag;
         Alcotest.test_case "empty step" `Quick test_empty_step_diag;
         Alcotest.test_case "empty seed" `Quick test_empty_seed_diag;
         Alcotest.test_case "uncertifiable" `Quick test_uncertified_diag;
         Alcotest.test_case "explain text" `Quick test_explain_text ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_round_bounds;
         QCheck_alcotest.to_alcotest prop_synopsis_exact ]) ]
