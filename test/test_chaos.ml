(* The fault-injection registry (Fixq_chaos), the resource governor,
   and the robustness behaviour they buy the serving layer: structured
   degradation instead of dead processes, caches intact after a failed
   request, and a wire loop that survives arbitrary garbage. *)

module Chaos = Fixq_chaos
module Service = Fixq_service
module Json = Service.Json
module Server = Service.Server
module Governor = Service.Governor
module Frame = Service.Frame

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* every test leaves the process-global registry clean *)
let with_chaos spec f =
  (match Chaos.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S: %s" spec e);
  Fun.protect ~finally:Chaos.reset f

(* ------------------------------------------------------------------ *)
(* Schedule parsing                                                    *)
(* ------------------------------------------------------------------ *)

let test_spec_errors () =
  let rejected spec =
    match Chaos.configure spec with
    | Ok () -> Alcotest.failf "expected rejection of %S" spec
    | Error _ -> ()
  in
  rejected "nonsense";
  rejected "bogus.point=drop";
  rejected "transport.send=explode";
  rejected "transport.send=drop:1.5";
  rejected "transport.send=drop:x";
  rejected "transport.send=drop@0";
  rejected "transport.send=drop#0";
  rejected "seed=abc";
  rejected "transport.send=delayxx";
  (* a bad item must not clobber the active schedule *)
  with_chaos "server.handle=drop" (fun () ->
      rejected "bogus.point=drop";
      checkb "previous schedule still active" true (Chaos.active ()))

let test_spec_inactive () =
  Chaos.reset ();
  checkb "inactive after reset" true (not (Chaos.active ()));
  checkb "inactive check is None" true (Chaos.check "transport.send" = None);
  (match Chaos.configure "" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checkb "empty spec stays inactive" true (not (Chaos.active ()));
  (* seed alone activates nothing *)
  (match Chaos.configure "seed=9" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checkb "seed-only spec stays inactive" true (not (Chaos.active ()));
  Chaos.reset ();
  (match Chaos.check "no.such.point" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for unknown point")

(* ------------------------------------------------------------------ *)
(* Firing semantics                                                    *)
(* ------------------------------------------------------------------ *)

let pattern point n =
  List.init n (fun _ -> match Chaos.check point with Some _ -> '1' | None -> '0')
  |> List.to_seq |> String.of_seq

let test_nth_and_max () =
  with_chaos "seed=1,server.handle=drop@3" (fun () ->
      checks "@3 fires exactly on the third arrival" "0010000000"
        (pattern "server.handle" 10);
      checki "one event" 1 (Chaos.fired ()));
  with_chaos "seed=1,server.handle=drop#2" (fun () ->
      checks "#2 caps total firings" "1100000000"
        (pattern "server.handle" 10));
  with_chaos "seed=1,server.handle=drop" (fun () ->
      checks "default fires always" "1111111111"
        (pattern "server.handle" 10))

let test_probability_deterministic () =
  let spec = "seed=42,transport.recv=drop:0.5#100" in
  let run () = with_chaos spec (fun () -> pattern "transport.recv" 60) in
  let a = run () and b = run () in
  checks "same seed, same firing pattern" a b;
  checkb "some fired" true (String.contains a '1');
  checkb "some did not" true (String.contains a '0');
  let c =
    with_chaos "seed=43,transport.recv=drop:0.5#100" (fun () ->
        pattern "transport.recv" 60)
  in
  checkb "different seed, different pattern" true (a <> c)

let test_rules_and_events () =
  with_chaos "seed=5,fixpoint.round=delay1@2,fixpoint.round=oom@4" (fun () ->
      let faults =
        List.init 5 (fun _ -> Chaos.check "fixpoint.round")
      in
      (match faults with
      | [ None; Some (Chaos.Delay _); None; Some Chaos.Oom; None ] -> ()
      | _ -> Alcotest.fail "independent rules on one point");
      let evs = Chaos.events () in
      checki "two events" 2 (List.length evs);
      checks "event order" "delay1,oom"
        (String.concat ","
           (List.map (fun e -> Chaos.fault_to_string e.Chaos.fault) evs));
      checkb "points recorded" true
        (List.for_all (fun e -> e.Chaos.point = "fixpoint.round") evs))

let test_event_log_file () =
  let path = Filename.temp_file "fixq-chaos" ".log" in
  Chaos.set_log (Some path);
  with_chaos "seed=1,store.read=drop@1" (fun () ->
      Chaos.set_log (Some path);
      ignore (Chaos.check "store.read"));
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  (match String.split_on_char ' ' line with
  | [ pid; seq; point; fault ] ->
    checki "pid" (Unix.getpid ()) (int_of_string pid);
    checks "seq" "1" seq;
    checks "point" "store.read" point;
    checks "fault" "drop" fault
  | _ -> Alcotest.failf "malformed log line %S" line)

(* ------------------------------------------------------------------ *)
(* Governor                                                            *)
(* ------------------------------------------------------------------ *)

let test_governor_shedding () =
  let g =
    Governor.create
      { Governor.default_config with max_pending = Some 2; retry_after_ms = 77 }
  in
  Governor.admit g;
  Governor.admit g;
  checki "two in flight" 2 (Governor.inflight g);
  (match Governor.admit g with
  | () -> Alcotest.fail "expected shed"
  | exception Governor.Shed { retry_after_ms; _ } ->
    checki "retry hint" 77 retry_after_ms);
  Governor.release g;
  Governor.admit g;  (* back under the cap *)
  Governor.release g;
  Governor.release g;
  checki "drained" 0 (Governor.inflight g);
  checkb "shed counted" true
    (List.assoc "shed" (Governor.counter_rows g) = 1)

let test_governor_memory_budget () =
  let g =
    Governor.create { Governor.default_config with max_heap_mb = Some 8 }
  in
  Governor.with_memory_budget g (fun ~round_check ->
      round_check ();  (* under budget: no-op *)
      (* 4M floats = 32 MB, allocated directly on the major heap *)
      let big = Array.make (4 * 1024 * 1024) 0.0 in
      Gc.full_major ();
      match round_check () with
      | () -> Alcotest.fail "expected Out_of_memory past the budget"
      | exception Out_of_memory -> ignore (Sys.opaque_identity big));
  (* without a budget the hook must be free *)
  let g0 = Governor.create Governor.default_config in
  Governor.with_memory_budget g0 (fun ~round_check -> round_check ())

(* ------------------------------------------------------------------ *)
(* Server-level degradation                                            *)
(* ------------------------------------------------------------------ *)

let tree_xml = "<r><a><b><c/><c/></b><b><c/></b></a><a><b><c/></b></a></r>"
let closure_query = {|with $x seeded by doc("t.xml")/r/* recurse $x/*|}

let load_line =
  Printf.sprintf {|{"op":"load-doc","uri":"t.xml","xml":%s}|}
    (Json.to_string (Json.Str tree_xml))

let run_line ?(extra = "") query =
  Printf.sprintf {|{"op":"run","query":%s%s}|}
    (Json.to_string (Json.Str query))
    extra

let ok j = Json.bool_opt (Json.member "ok" j) = Some true
let str name j = Option.value ~default:"" (Json.str_opt (Json.member name j))

let parse_response line =
  match Json.parse line with
  | j -> j
  | exception Json.Parse_error m -> Alcotest.failf "unparseable response: %s" m

let request server line =
  let (resp, _) = Server.handle_line server line in
  parse_response resp

(* A simulated Out_of_memory mid-round degrades to a structured error;
   the same server keeps answering and neither cache holds a poisoned
   entry from the failed run. *)
let test_server_oom_degrades () =
  let server = Server.create () in
  ignore (request server load_line);
  let before =
    request server (run_line closure_query)
  in
  checkb "warm-up run ok" true (ok before);
  with_chaos "seed=3,fixpoint.round=oom@2" (fun () ->
      let j = request server (run_line ~extra:{|,"cache":false|} closure_query) in
      checkb "request failed, server answered" true (not (ok j));
      checkb "structured out-of-memory error" true
        (String.length (str "error" j) >= 13
        && String.sub (str "error" j) 0 13 = "out of memory"));
  (* chaos off: the server still works, and the cached entry from the
     warm-up run is still the correct one *)
  let j = request server (run_line closure_query) in
  checkb "server still answers" true (ok j);
  checks "cache intact" (str "result" before) (str "result" j);
  checks "served from cache" "hit" (str "result_cache" j);
  let stats = Json.member "stats" (request server {|{"op":"stats"}|}) in
  checkb "oom counted" true
    (Json.int_opt (Json.member "oom" (Json.member "governor" stats))
    = Some 1)

let test_server_sheds_with_retry_hint () =
  let config =
    { Server.default_config with
      governor =
        { Governor.default_config with max_pending = Some 0;
          retry_after_ms = 55 } }
  in
  let server = Server.create ~config () in
  let j = request server (run_line closure_query) in
  checkb "query work shed" true (not (ok j));
  checkb "overloaded error" true
    (String.length (str "error" j) >= 10
    && String.sub (str "error" j) 0 10 = "overloaded");
  checkb "retry_after_ms hint" true
    (Json.int_opt (Json.member "retry_after_ms" j) = Some 55);
  (* control-plane ops are never shed *)
  let p = request server {|{"op":"ping"}|} in
  checkb "ping still answered" true (ok p);
  let s = request server {|{"op":"stats"}|} in
  checkb "stats still answered" true (ok s)

let test_server_handle_chaos_faults () =
  let server = Server.create () in
  ignore (request server load_line);
  with_chaos "seed=2,server.handle=drop@1" (fun () ->
      let j = request server (run_line closure_query) in
      checkb "drop becomes an error response" true (not (ok j)));
  let j = request server (run_line closure_query) in
  checkb "healthy afterwards" true (ok j)

(* ------------------------------------------------------------------ *)
(* Protocol fuzz                                                       *)
(* ------------------------------------------------------------------ *)

let base_frames =
  [ {|{"op":"ping"}|};
    run_line closure_query;
    load_line;
    {|{"op":"stats","format":"prometheus"}|};
    {|{"op":"check","query":"1 + 2"}|};
    {|{"op":"load-doc","uri":"g.xml","generate":"xmark","size":0.001}|} ]

let mutate rng frame =
  let n = String.length frame in
  match Random.State.int rng 5 with
  | 0 -> String.sub frame 0 (Random.State.int rng (max 1 n))  (* truncate *)
  | 1 ->
    let b = Bytes.of_string frame in
    Bytes.set b (Random.State.int rng (max 1 n))
      (Char.chr (Random.State.int rng 256));
    Bytes.to_string b  (* flip a byte *)
  | 2 ->
    let at = Random.State.int rng (n + 1) in
    String.sub frame 0 at
    ^ String.make 1 (Char.chr (Random.State.int rng 256))
    ^ String.sub frame at (n - at)  (* insert a byte *)
  | 3 -> frame ^ frame  (* doubled: trailing garbage *)
  | _ ->
    String.concat ""
      (List.init (Random.State.int rng 64) (fun _ ->
           String.make 1 (Char.chr (32 + Random.State.int rng 95))))

(* Whatever bytes arrive, the handler answers a well-formed frame and
   never raises — on the single-process server and on the cluster
   coordinator alike. *)
let fuzz_handler name handle =
  let rng = Random.State.make [| 0xC0FFEE |] in
  for _ = 1 to 400 do
    let frame =
      mutate rng (List.nth base_frames (Random.State.int rng (List.length base_frames)))
    in
    match handle frame with
    | (resp, _shutdown) -> (
      match Json.parse resp with
      | j ->
        checkb
          (Printf.sprintf "%s: response carries ok (frame %S)" name frame)
          true
          (Json.bool_opt (Json.member "ok" j) <> None)
      | exception Json.Parse_error m ->
        Alcotest.failf "%s: unparseable response %S to %S: %s" name resp frame
          m)
    | exception e ->
      Alcotest.failf "%s: handler raised %s on %S" name
        (Printexc.to_string e) frame
  done

let test_fuzz_server () =
  let server = Server.create () in
  fuzz_handler "server" (Server.handle_line server)

let test_fuzz_coordinator () =
  let module Coordinator = Fixq_cluster.Coordinator in
  let servers = List.init 2 (fun i -> (Printf.sprintf "w%d" i, Server.create ())) in
  let send name ~timeout_ms:_ line =
    let (resp, _) = Server.handle_line (List.assoc name servers) line in
    Ok resp
  in
  let backend =
    { Coordinator.workers = List.map fst servers; send;
      info = (fun _ -> []); restarts = (fun () -> 0); stop = ignore;
      add_worker = (fun () -> Error "fuzz harness: fixed fleet");
      retire_worker = ignore; kill_worker = ignore }
  in
  let c =
    Coordinator.create
      ~config:{ Coordinator.default_config with backoff_ms = 1. }
      backend
  in
  fuzz_handler "coordinator" (Coordinator.handle_line c)

(* deep nesting must come back as a parse error, not a stack overflow
   ripping through the serve loop *)
let test_fuzz_deep_nesting () =
  let server = Server.create () in
  let deep = String.make 200_000 '[' in
  let (resp, _) = Server.handle_line server deep in
  let j = parse_response resp in
  checkb "deep nesting answered" true (not (ok j));
  let deep_obj =
    String.concat "" (List.init 100_000 (fun _ -> {|{"a":|})) ^ "1"
  in
  let (resp, _) = Server.handle_line server deep_obj in
  checkb "deep objects answered" true (not (ok (parse_response resp)))

(* the pipe transport: a stream dying mid-frame yields a protocol error
   frame, not a truncated request handed to the handler *)
let test_pipe_truncated_frame () =
  let server = Server.create () in
  let (r_in, w_in) = Unix.pipe () in
  let (r_out, w_out) = Unix.pipe () in
  let ic = Unix.in_channel_of_descr r_in in
  let oc = Unix.out_channel_of_descr w_out in
  let writer =
    Thread.create
      (fun () ->
        let out = Unix.out_channel_of_descr w_in in
        output_string out "{\"op\":\"ping\"}\n";
        output_string out "{\"op\":\"ping\"";  (* no newline: cut mid-frame *)
        flush out;
        close_out out)
      ()
  in
  Server.serve_pipe server ic oc;
  Thread.join writer;
  close_out oc;
  let resp_ic = Unix.in_channel_of_descr r_out in
  let first = input_line resp_ic in
  let second = input_line resp_ic in
  close_in resp_ic;
  (try Unix.close w_out with Unix.Unix_error _ -> ());
  checkb "complete frame answered" true (ok (parse_response first));
  let j = parse_response second in
  checkb "truncated frame answered with an error" true (not (ok j));
  checkb "protocol error named" true
    (String.length (str "error" j) >= 14
    && String.sub (str "error" j) 0 14 = "protocol error")

let test_frame_reader () =
  let feed s f =
    let (r, w) = Unix.pipe () in
    let oc = Unix.out_channel_of_descr w in
    output_string oc s;
    close_out oc;
    let ic = Unix.in_channel_of_descr r in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)
  in
  feed "hello\nworld" (fun ic ->
      (match Frame.read ic with
      | `Line l -> checks "first line" "hello" l
      | _ -> Alcotest.fail "expected line");
      (match Frame.read ic with
      | `Truncated p -> checks "partial bytes" "world" p
      | _ -> Alcotest.fail "expected truncation");
      match Frame.read ic with
      | `Eof -> ()
      | _ -> Alcotest.fail "expected eof");
  feed "" (fun ic ->
      match Frame.read ic with
      | `Eof -> ()
      | _ -> Alcotest.fail "expected eof on empty stream");
  feed "0123456789\nnext\n" (fun ic ->
      (match Frame.read ~max_len:4 ic with
      | `Oversized -> ()
      | _ -> Alcotest.fail "expected oversized");
      match Frame.read ~max_len:4 ic with
      | `Line l -> checks "stream stays framed after oversize" "next" l
      | _ -> Alcotest.fail "expected next line")

let () =
  Alcotest.run "chaos"
    [ ("spec",
       [ Alcotest.test_case "malformed schedules rejected" `Quick
           test_spec_errors;
         Alcotest.test_case "inactive fast path" `Quick test_spec_inactive ]);
      ("firing",
       [ Alcotest.test_case "@nth and #max" `Quick test_nth_and_max;
         Alcotest.test_case "seeded determinism" `Quick
           test_probability_deterministic;
         Alcotest.test_case "independent rules and events" `Quick
           test_rules_and_events;
         Alcotest.test_case "event log file" `Quick test_event_log_file ]);
      ("governor",
       [ Alcotest.test_case "load shedding" `Quick test_governor_shedding;
         Alcotest.test_case "memory budget" `Quick
           test_governor_memory_budget ]);
      ("degradation",
       [ Alcotest.test_case "oom mid-round degrades, caches intact" `Quick
           test_server_oom_degrades;
         Alcotest.test_case "shed with retry_after hint" `Quick
           test_server_sheds_with_retry_hint;
         Alcotest.test_case "handle-point faults answered" `Quick
           test_server_handle_chaos_faults ]);
      ("fuzz",
       [ Alcotest.test_case "server survives mutated frames" `Quick
           test_fuzz_server;
         Alcotest.test_case "coordinator survives mutated frames" `Quick
           test_fuzz_coordinator;
         Alcotest.test_case "deep nesting is a parse error" `Quick
           test_fuzz_deep_nesting;
         Alcotest.test_case "pipe answers truncated frames" `Quick
           test_pipe_truncated_frame;
         Alcotest.test_case "frame reader" `Quick test_frame_reader ]) ]
