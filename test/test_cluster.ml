(* The fixq_cluster subsystem: rendezvous placement, seed
   partitioning (Theorem 3.2 soundness of scatter-gather), and the
   coordinator's routing / scatter / retry / failover behaviour over
   in-process workers (real [Server.t]s behind an injectable backend —
   the process-and-socket layer is exercised by the cram test). *)

module Xdm = Fixq_xdm
module Lang = Fixq_lang
module Service = Fixq_service
module Json = Service.Json
module Server = Service.Server
module Router = Fixq_cluster.Router
module Coordinator = Fixq_cluster.Coordinator

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let names n = List.init n (Printf.sprintf "w%d")

let test_router_basic () =
  let r = Router.create ~workers:(names 4) ~replication:2 in
  checki "replication" 2 (Router.replication r);
  (* clamped *)
  checki "clamped" 4
    (Router.replication (Router.create ~workers:(names 4) ~replication:9));
  List.iter
    (fun key ->
      let ranking = Router.ranking r ~key in
      checki "ranking is a permutation" 4 (List.length ranking);
      checki "distinct" 4
        (List.length (List.sort_uniq compare ranking));
      checks "deterministic"
        (String.concat "," ranking)
        (String.concat "," (Router.ranking r ~key));
      let reps = Router.replicas r ~key in
      checki "replica count" 2 (List.length reps);
      checkb "replicas prefix ranking" true
        (reps = [ List.nth ranking 0; List.nth ranking 1 ]))
    [ "a.xml"; "b.xml"; "some/long/path.xml"; "" ]

(* the HRW property: removing a worker only moves keys that worker
   held; every other key keeps its exact replica set *)
let test_router_stability () =
  let before = Router.create ~workers:(names 5) ~replication:2 in
  let after = Router.create ~workers:(names 4) ~replication:2 in
  let keys = List.init 200 (Printf.sprintf "doc-%d.xml") in
  let moved = ref 0 in
  List.iter
    (fun key ->
      let b = Router.replicas before ~key in
      if List.mem "w4" b then incr moved
      else
        checks ("stable " ^ key) (String.concat "," b)
          (String.concat "," (Router.replicas after ~key)))
    keys;
  (* sanity: the removed worker did hold some replicas *)
  checkb "w4 held some keys" true (!moved > 0);
  (* and roughly its fair share: 2/5 of all replica slots *)
  checkb "roughly fair share" true (!moved < 160)

let test_router_spread () =
  let r = Router.create ~workers:(names 4) ~replication:1 in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun key ->
      let w = List.hd (Router.replicas r ~key) in
      Hashtbl.replace counts w
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts w)))
    (List.init 400 (Printf.sprintf "k%d"));
  Hashtbl.iter
    (fun w n ->
      checkb (Printf.sprintf "%s gets a reasonable share (%d)" w n) true
        (n > 40 && n < 250))
    counts

(* ------------------------------------------------------------------ *)
(* Seed partitioning (the paper's Theorem 3.2, operationally)          *)
(* ------------------------------------------------------------------ *)

let tree_xml =
  "<r><a><b><c/><c/></b><b><c/></b></a><a><b><c/></b></a></r>"

let make_registry () =
  let registry = Xdm.Doc_registry.create () in
  Xdm.Doc_registry.register ~registry "t.xml"
    (Xdm.Xml_parser.parse_string ~uri:"t.xml" tree_xml);
  registry

let closure_query = {|with $x seeded by doc("t.xml")/r/* recurse $x/*|}

let test_partition_union_equals_whole () =
  let registry = make_registry () in
  let program = Lang.Parser.parse_program closure_query in
  let engine = Fixq.Interpreter Fixq.Auto in
  let whole = (Fixq.run_program ~registry ~engine program).Fixq.result in
  List.iter
    (fun count ->
      let slices =
        List.init count (fun index ->
            let p = Fixq.partition_first_seed ~index ~count program in
            (Fixq.run_program ~registry ~engine p).Fixq.result)
      in
      let union = Xdm.Item.ddo (List.concat slices) in
      checks
        (Printf.sprintf "union of %d slices = whole" count)
        (Xdm.Serializer.seq_to_string whole)
        (Xdm.Serializer.seq_to_string union))
    [ 1; 2; 3; 5 ]

let test_partition_validation () =
  let program = Lang.Parser.parse_program closure_query in
  let invalid index count =
    match Fixq.partition_first_seed ~index ~count program with
    | _ -> Alcotest.failf "expected rejection of %d/%d" index count
    | exception Fixq.Error _ -> ()
  in
  invalid (-1) 2;
  invalid 2 2;
  invalid 0 0;
  match
    Fixq.partition_first_seed ~index:0 ~count:2
      (Lang.Parser.parse_program "1 + 2")
  with
  | _ -> Alcotest.fail "expected rejection of IFP-free program"
  | exception Fixq.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Coordinator over in-process workers                                 *)
(* ------------------------------------------------------------------ *)

(* Real servers, injectable transport: [failing name] makes every send
   to [name] fail like a torn connection; removing it heals the link.
   [add_worker]/[retire_worker] grow and shrink the in-process fleet;
   [kill_worker] models SIGKILL + supervisor respawn: the state is
   lost, a fresh empty server takes the name, and [on_worker_respawn]
   fires from a background thread (queueing on the coordinator's
   document lock exactly like the real health thread would). *)
type harness = {
  mutable servers : (string * Server.t) list;
  failing : (string, unit) Hashtbl.t;
  mutable sends : (string * string) list;  (** (worker, line), newest first *)
  mutable respawns : Thread.t list;
  coordinator : Coordinator.t;
}

let make_harness ?config ~workers () =
  let servers =
    List.init workers (fun i -> (Printf.sprintf "w%d" i, Server.create ()))
  in
  let failing = Hashtbl.create 4 in
  let h = ref None in
  let next = ref workers in
  let send name ~timeout_ms:_ line =
    let harness = Option.get !h in
    harness.sends <- (name, line) :: harness.sends;
    if Hashtbl.mem failing name then Error "injected failure"
    else
      match List.assoc_opt name harness.servers with
      | None -> Error ("unknown worker " ^ name)
      | Some s ->
        let (resp, _) = Server.handle_line s line in
        Ok resp
  in
  let add_worker () =
    let harness = Option.get !h in
    let name = Printf.sprintf "w%d" !next in
    incr next;
    harness.servers <- harness.servers @ [ (name, Server.create ()) ];
    Ok name
  in
  let retire_worker name =
    let harness = Option.get !h in
    harness.servers <- List.filter (fun (n, _) -> n <> name) harness.servers
  in
  let kill_worker name =
    let harness = Option.get !h in
    Hashtbl.replace failing name ();
    let th =
      Thread.create
        (fun () ->
          Thread.delay 0.05;
          harness.servers <-
            List.map
              (fun (n, s) -> if n = name then (n, Server.create ()) else (n, s))
              harness.servers;
          Hashtbl.remove failing name;
          Coordinator.on_worker_respawn harness.coordinator name)
        ()
    in
    harness.respawns <- th :: harness.respawns
  in
  let backend =
    { Coordinator.workers = List.map fst servers; send;
      info = (fun _ -> []); restarts = (fun () -> 0); stop = ignore;
      add_worker; retire_worker; kill_worker }
  in
  let config =
    Option.value
      ~default:{ Coordinator.default_config with backoff_ms = 1. }
      config
  in
  let harness =
    { servers; failing; sends = []; respawns = [];
      coordinator = Coordinator.create ~config backend }
  in
  h := Some harness;
  harness

(* wait for in-flight kill/respawn threads *)
let settle h =
  List.iter Thread.join h.respawns;
  h.respawns <- []

let request h line =
  let (resp, _) = Coordinator.handle_line h.coordinator line in
  Json.parse resp

let ok j = Json.bool_opt (Json.member "ok" j) = Some true
let str name j = Option.value ~default:"" (Json.str_opt (Json.member name j))

let load_line =
  Printf.sprintf {|{"op":"load-doc","uri":"t.xml","xml":%s}|}
    (Json.to_string (Json.Str tree_xml))

let run_line ?(extra = "") query =
  Printf.sprintf {|{"op":"run","query":%s%s}|}
    (Json.to_string (Json.Str query))
    extra

(* what a single process answers, for parity checks *)
let single_process_result query =
  let server = Server.create () in
  let (_, _) = Server.handle_line server load_line in
  let (resp, _) = Server.handle_line server (run_line query) in
  let j = Json.parse resp in
  checkb "single-process run ok" true (ok j);
  str "result" j

let test_coordinator_load_replication () =
  let h = make_harness ~workers:4 () in
  let j = request h load_line in
  checkb "load ok" true (ok j);
  let holders =
    List.filter
      (fun (_, s) -> Service.Store.uris (Server.store s) = [ "t.xml" ])
      h.servers
  in
  checki "document on exactly replication-many workers" 2
    (List.length holders)

let test_coordinator_routing_deterministic () =
  let h = make_harness ~workers:4 () in
  ignore (request h load_line);
  (* non-distributive: predicate mentions $x, so Figure 5 refuses and
     the query routes whole *)
  let q = {|with $x seeded by doc("t.xml")/r recurse doc("t.xml")//b[$x]|} in
  let j1 = request h (run_line q) in
  let j2 = request h (run_line q) in
  checkb "ok" true (ok j1 && ok j2);
  checkb "routed, not scattered" true
    (Json.member "scatter" j1 = Json.Null);
  checkb "worker reported" true (str "worker" j1 <> "");
  checks "same worker both times" (str "worker" j1) (str "worker" j2)

let test_coordinator_scatter_parity () =
  let h = make_harness ~workers:3 () in
  ignore (request h load_line);
  let j = request h (run_line closure_query) in
  checkb "ok" true (ok j);
  checki "two legs (replication 2)" 2
    (Option.value ~default:0
       (Json.int_opt (Json.member "legs" (Json.member "scatter" j))));
  checks "scatter-gather equals single process"
    (single_process_result closure_query)
    (str "result" j)

let test_coordinator_scatter_respects_optout () =
  let h =
    make_harness
      ~config:{ Coordinator.default_config with scatter = false }
      ~workers:3 ()
  in
  ignore (request h load_line);
  let j = request h (run_line closure_query) in
  checkb "ok" true (ok j);
  checkb "no scatter when disabled" true (Json.member "scatter" j = Json.Null);
  checks "still the right answer"
    (single_process_result closure_query)
    (str "result" j)

(* a dead scatter leg falls back to one whole-query run on a live
   worker: the client still gets exactly one correct answer *)
let test_coordinator_failover () =
  let h = make_harness ~workers:3 () in
  ignore (request h load_line);
  let reps =
    Router.replicas (Coordinator.router h.coordinator) ~key:"t.xml"
  in
  Hashtbl.replace h.failing (List.hd reps) ();
  let j = request h (run_line closure_query) in
  checkb "ok despite dead replica" true (ok j);
  checkb "fell back from scatter" true (Json.member "scatter" j = Json.Null);
  checks "answer unchanged" (single_process_result closure_query)
    (str "result" j);
  let stats = Json.member "stats" (request h {|{"op":"stats"}|}) in
  checkb "failover counted" true
    (Option.value ~default:0 (Json.int_opt (Json.member "failovers" stats))
     >= 1);
  checkb "dead worker marked" true
    (not
       (List.mem (List.hd reps)
          (Coordinator.alive_workers h.coordinator)))

let test_coordinator_respawn_replays_docs () =
  let h = make_harness ~workers:2 () in
  ignore (request h load_line);
  let victim =
    List.hd (Router.replicas (Coordinator.router h.coordinator) ~key:"t.xml")
  in
  Hashtbl.replace h.failing victim ();
  ignore (request h (run_line closure_query));
  checkb "victim dead" true
    (not (List.mem victim (Coordinator.alive_workers h.coordinator)));
  (* "respawn": heal the transport, then fire the supervisor hook *)
  Hashtbl.remove h.failing victim;
  h.sends <- [];
  Coordinator.on_worker_respawn h.coordinator victim;
  checkb "victim alive again" true
    (List.mem victim (Coordinator.alive_workers h.coordinator));
  let replayed =
    List.exists
      (fun (name, line) ->
        name = victim
        &&
        match Json.parse line with
        | j -> Json.str_opt (Json.member "op" j) = Some "load-doc"
        | exception Json.Parse_error _ -> false)
      h.sends
  in
  checkb "documents replayed on respawn" true replayed;
  (* and the healed worker serves scatter legs again *)
  let j = request h (run_line ~extra:{|,"cache":false|} closure_query) in
  checkb "scatter resumed" true (Json.member "scatter" j <> Json.Null);
  checks "answer unchanged" (single_process_result closure_query)
    (str "result" j)

(* ------------------------------------------------------------------ *)
(* Load-order soundness and atom results                               *)
(* ------------------------------------------------------------------ *)

let a_xml = "<r><p><q/><q/></p></r>"
let b_xml = "<r><s><u/></s><s/></r>"

(* seed spans both documents through a union, so its enumeration —
   which position()-mod-N slices — follows cross-document node-id
   order, i.e. each worker's local document load order *)
let multi_doc_query =
  {|with $x seeded by doc("a.xml")/r/* union doc("b.xml")/r/* recurse $x/*|}

let load_uri_line uri xml =
  Printf.sprintf {|{"op":"load-doc","uri":%s,"xml":%s}|}
    (Json.to_string (Json.Str uri))
    (Json.to_string (Json.Str xml))

(* what a single process answers after this exact load sequence *)
let single_process_after loads query =
  let server = Server.create () in
  List.iter (fun l -> ignore (Server.handle_line server l)) loads;
  let (resp, _) = Server.handle_line server (run_line query) in
  let j = Json.parse resp in
  checkb "single-process run ok" true (ok j);
  str "result" j

(* A worker holding documents out of the global load order must not
   serve scatter legs (its seed enumeration disagrees with its peers',
   so the slices would overlap or miss), and routed multi-document
   runs must prefer order-consistent workers. Reloading moves the
   document to the end of the global order on every replica, healing
   the divergence. *)
let test_scatter_excludes_out_of_order_worker () =
  let h = make_harness ~workers:2 () in
  (* replication 2 over 2 workers: both replicate everything — but w1
     is down while a.xml loads, so only w0 takes it *)
  Coordinator.mark_dead h.coordinator "w1";
  checkb "load a while w1 down" true
    (ok (request h (load_uri_line "a.xml" a_xml)));
  Coordinator.on_worker_respawn h.coordinator "w1" (* nothing to replay *);
  checkb "load b with both up" true
    (ok (request h (load_uri_line "b.xml" b_xml)));
  (* w1 holds only b.xml: shipping a.xml now would append it AFTER b,
     inverting the global order — so no scatter, and the whole query
     goes to the order-consistent worker *)
  let j = request h (run_line multi_doc_query) in
  checkb "ok" true (ok j);
  checkb "routed, not scattered" true (Json.member "scatter" j = Json.Null);
  checks "parity with a single process that loaded a then b"
    (single_process_after
       [ load_uri_line "a.xml" a_xml; load_uri_line "b.xml" b_xml ]
       multi_doc_query)
    (str "result" j);
  (* reloading a.xml re-ships it everywhere with a fresh sequence:
     both workers agree on the order (b before a) and scatter resumes *)
  checkb "reload a" true (ok (request h (load_uri_line "a.xml" a_xml)));
  let j = request h (run_line ~extra:{|,"cache":false|} multi_doc_query) in
  checkb "ok" true (ok j);
  checkb "scatter resumed after reload" true
    (Json.member "scatter" j <> Json.Null);
  checks "parity with a single process that loaded a, b, then a again"
    (single_process_after
       [ load_uri_line "a.xml" a_xml; load_uri_line "b.xml" b_xml;
         load_uri_line "a.xml" a_xml ]
       multi_doc_query)
    (str "result" j)

(* Respawn replay must follow the global load order, not hash-table
   fold order: the respawned worker's node-id order has to match its
   peers' or it cannot serve multi-document scatter legs. *)
let test_respawn_replay_order () =
  let h = make_harness ~workers:2 () in
  let uris = List.init 8 (Printf.sprintf "d%d.xml") in
  List.iter
    (fun uri ->
      checkb ("load " ^ uri) true (ok (request h (load_uri_line uri a_xml))))
    uris;
  (* replication 2 over 2 workers: w0 holds all eight *)
  h.sends <- [];
  Coordinator.on_worker_respawn h.coordinator "w0";
  let replayed =
    List.rev h.sends
    |> List.filter_map (fun (name, line) ->
           if name <> "w0" then None
           else
             match Json.parse line with
             | j when Json.str_opt (Json.member "op" j) = Some "load-doc" ->
               Json.str_opt (Json.member "uri" j)
             | _ -> None
             | exception Json.Parse_error _ -> None)
  in
  checks "replayed in load order" (String.concat "," uris)
    (String.concat "," replayed)

(* Distributive body, but the seed constructs nodes: constructed nodes
   have no portable identity (each scatter leg would build its own
   copies, and the gathered union could only order them by serialized
   content, not by the single process's document order), so the query
   must route whole — and still answer byte-identically. *)
let test_constructed_seed_routes_whole () =
  let h = make_harness ~workers:2 () in
  let q = {|with $x seeded by <r><c/></r> recurse $x/*|} in
  let c =
    request h
      (Printf.sprintf {|{"op":"check","query":%s}|}
         (Json.to_string (Json.Str q)))
  in
  checkb "body is distributive (scatter is only stopped by the seed)" true
    (Json.bool_opt (Json.member "syntactic" c) = Some true);
  let j = request h (run_line q) in
  checkb "ok" true (ok j);
  checkb "constructed seed routes whole" true
    (Json.member "scatter" j = Json.Null);
  checks "parity" (single_process_after [] q) (str "result" j)

let test_coordinator_retry_accounting () =
  let h = make_harness ~workers:2 () in
  ignore (request h load_line);
  let victim =
    List.hd (Router.replicas (Coordinator.router h.coordinator) ~key:"t.xml")
  in
  Hashtbl.replace h.failing victim ();
  let j = request h (run_line ~extra:{|,"cache":false|} closure_query) in
  checkb "still answered" true (ok j);
  let stats = Json.member "stats" (request h {|{"op":"stats"}|}) in
  checkb "retries counted" true
    (Option.value ~default:0 (Json.int_opt (Json.member "retries" stats)) >= 1)

let test_coordinator_parse_error_local () =
  let h = make_harness ~workers:2 () in
  let j = request h (run_line "with $x seeded") in
  checkb "not ok" true (not (ok j));
  checkb "parse error mentioned" true
    (String.length (str "error" j) > 0
    && String.sub (str "error" j) 0 5 = "parse");
  (* nothing was forwarded: the coordinator rejected locally *)
  checki "no worker saw it" 0 (List.length h.sends)

(* Failover during an in-flight scatter-gather, triggered by the
   deterministic chaos point rather than timing: the first leg's worker
   is killed after the legs launch, the gather falls back to one whole
   run on a survivor, and the answer is byte-identical. *)
let test_chaos_kill_mid_scatter () =
  let h = make_harness ~workers:3 () in
  ignore (request h load_line);
  (match Fixq_chaos.configure "seed=11,coordinator.scatter=kill@1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Fixq_chaos.reset (fun () ->
      let j = request h (run_line ~extra:{|,"cache":false|} closure_query) in
      checkb "ok despite leg killed in flight" true (ok j);
      checkb "gather fell back to a whole run" true
        (Json.member "scatter" j = Json.Null);
      checks "answer byte-identical to single process"
        (single_process_result closure_query)
        (str "result" j);
      checki "exactly one fault injected" 1 (Fixq_chaos.fired ());
      (match Fixq_chaos.events () with
      | [ e ] ->
        checks "fault at the scatter point" "coordinator.scatter"
          e.Fixq_chaos.point
      | _ -> Alcotest.fail "expected exactly one chaos event");
      checki "killed worker marked dead" 2
        (List.length (Coordinator.alive_workers h.coordinator));
      let stats = Json.member "stats" (request h {|{"op":"stats"}|}) in
      checkb "failover counted" true
        (Option.value ~default:0
           (Json.int_opt (Json.member "failovers" stats))
        >= 1))

(* ------------------------------------------------------------------ *)
(* Online rebalancing                                                   *)
(* ------------------------------------------------------------------ *)

let rebalance_uris = List.init 12 (Printf.sprintf "d%d.xml")

let load_fleet h =
  List.iter
    (fun u ->
      checkb ("load " ^ u) true (ok (request h (load_uri_line u a_xml))))
    rebalance_uris

let moved_of j =
  match Json.member "moved" j with
  | Json.List l -> List.filter_map Json.str_opt l |> List.sort compare
  | _ -> []

let doc_query uri =
  Printf.sprintf {|with $x seeded by doc(%s)/r/* recurse $x/*|}
    (Json.to_string (Json.Str uri))

(* parity of one moved document's query against a single process *)
let check_moved_doc_parity h uri =
  let j = request h (run_line ~extra:{|,"cache":false|} (doc_query uri)) in
  checkb ("post-rebalance run ok for " ^ uri) true (ok j);
  checks ("post-rebalance parity for " ^ uri)
    (single_process_after [ load_uri_line uri a_xml ] (doc_query uri))
    (str "result" j)

(* add-worker: the HRW property — the keys that move are exactly the
   keys whose replica set now includes the new worker *)
let test_add_worker_moves_exactly () =
  let h = make_harness ~workers:3 () in
  load_fleet h;
  let before = Coordinator.router h.coordinator in
  let j = request h {|{"op":"add-worker"}|} in
  checkb "add-worker ok" true (ok j);
  let name = str "worker" j in
  checks "supervisor names it w3" "w3" name;
  let after = Coordinator.router h.coordinator in
  checkb "routing includes the new worker" true
    (List.mem name (Router.workers after));
  let expected =
    List.filter
      (fun u -> Router.replicas before ~key:u <> Router.replicas after ~key:u)
      rebalance_uris
    |> List.sort compare
  in
  List.iter
    (fun u ->
      checkb ("every moved key gained " ^ name ^ ": " ^ u) true
        (List.mem name (Router.replicas after ~key:u)))
    expected;
  checkb "the new worker took some keys" true (expected <> []);
  checks "moved = exactly the keys whose replica set changed"
    (String.concat "," expected)
    (String.concat "," (moved_of j));
  checki "nothing left pending" 0
    (match Json.member "pending" j with
    | Json.List l -> List.length l
    | _ -> 0);
  check_moved_doc_parity h (List.hd expected)

(* drain: the keys that move are exactly the drained worker's keys;
   the worker leaves the routing table but stays a member *)
let test_drain_moves_its_keys () =
  let h = make_harness ~workers:3 () in
  load_fleet h;
  let before = Coordinator.router h.coordinator in
  let victim = "w1" in
  let expected =
    List.filter
      (fun u -> List.mem victim (Router.replicas before ~key:u))
      rebalance_uris
    |> List.sort compare
  in
  let j = request h {|{"op":"drain","worker":"w1"}|} in
  checkb "drain ok" true (ok j);
  checks "moved = exactly the drained worker's keys"
    (String.concat "," expected)
    (String.concat "," (moved_of j));
  let after = Coordinator.router h.coordinator in
  checkb "victim out of the routing table" true
    (not (List.mem victim (Router.workers after)));
  checkb "victim still a member (running, unrouted)" true
    (List.mem victim (Coordinator.current_workers h.coordinator));
  (* every survivor key kept its exact replica set: the HRW property *)
  List.iter
    (fun u ->
      if not (List.mem u expected) then
        checks ("stable " ^ u)
          (String.concat "," (Router.replicas before ~key:u))
          (String.concat "," (Router.replicas after ~key:u)))
    rebalance_uris;
  check_moved_doc_parity h (List.hd expected);
  let stats = Json.member "stats" (request h {|{"op":"stats"}|}) in
  let drained_flags =
    match Json.member "workers" stats with
    | Json.List rows ->
      List.filter_map
        (fun r ->
          if Json.str_opt (Json.member "name" r) = Some victim then
            Json.bool_opt (Json.member "drained" r)
          else None)
        rows
    | _ -> []
  in
  checkb "stats marks the worker drained" true (drained_flags = [ true ])

let test_remove_worker_retires () =
  let h = make_harness ~workers:3 () in
  load_fleet h;
  let j = request h {|{"op":"remove-worker","worker":"w2"}|} in
  checkb "remove ok" true (ok j);
  checkb "membership shrank" true
    (not (List.mem "w2" (Coordinator.current_workers h.coordinator)));
  checkb "backend retired the server" true
    (not (List.mem_assoc "w2" h.servers));
  check_moved_doc_parity h (List.hd (moved_of j));
  (* the last worker cannot be drained away *)
  ignore (request h {|{"op":"remove-worker","worker":"w1"}|});
  let j = request h {|{"op":"remove-worker","worker":"w0"}|} in
  checkb "last worker refuses" true (not (ok j))

(* patch past the threshold: the history folds into one materialized
   load line, so a respawn replays 1 line instead of load + patches —
   and the replayed document still answers byte-identically *)
let test_compaction_after_patches () =
  let h =
    make_harness
      ~config:
        { Coordinator.default_config with backoff_ms = 1.; compact_patches = 3 }
      ~workers:2 ()
  in
  checkb "load" true (ok (request h (load_uri_line "t.xml" tree_xml)));
  let patch =
    {|{"op":"patch-doc","uri":"t.xml","action":"insert","path":"/r","xml":"<z/>"}|}
  in
  for i = 1 to 5 do
    checkb (Printf.sprintf "patch %d" i) true (ok (request h patch))
  done;
  let stats = Json.member "stats" (request h {|{"op":"stats"}|}) in
  checkb "compaction counted" true
    (Option.value ~default:0 (Json.int_opt (Json.member "compactions" stats))
     >= 1);
  (* respawn: the replay must be ONE load-doc line, no patch lines *)
  h.sends <- [];
  Coordinator.on_worker_respawn h.coordinator "w0";
  let (loads, patches) =
    List.fold_left
      (fun (l, p) (name, line) ->
        if name <> "w0" then (l, p)
        else
          match Json.parse line with
          | j when Json.str_opt (Json.member "op" j) = Some "load-doc" ->
            (l + 1, p)
          | j when Json.str_opt (Json.member "op" j) = Some "patch-doc" ->
            (l, p + 1)
          | _ -> (l, p)
          | exception Json.Parse_error _ -> (l, p))
      (0, 0) h.sends
  in
  checki "one materialized load replayed" 1 loads;
  checki "no patch lines replayed" 0 patches;
  let j = request h (run_line ~extra:{|,"cache":false|} closure_query) in
  checkb "run ok after respawn from compacted history" true (ok j);
  checks "parity with a single process that loaded and patched"
    (single_process_after
       [ load_uri_line "t.xml" tree_xml; patch; patch; patch; patch; patch ]
       closure_query)
    (str "result" j)

(* chaos kill of a move's destination: the rebalance retries after the
   "supervisor" respawns the worker, finishes, and answers match *)
let test_chaos_rebalance_kill_recovers () =
  let h = make_harness ~workers:2 () in
  load_fleet h;
  (match Fixq_chaos.configure "seed=7,coordinator.rebalance=kill@1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Fixq_chaos.reset (fun () ->
      let j = request h {|{"op":"add-worker"}|} in
      checkb "add-worker ok despite mid-move kill" true (ok j);
      checki "exactly one fault injected" 1 (Fixq_chaos.fired ());
      (match Fixq_chaos.events () with
      | [ e ] ->
        checks "fault at the rebalance point" "coordinator.rebalance"
          e.Fixq_chaos.point
      | _ -> Alcotest.fail "expected exactly one chaos event");
      let moved = moved_of j in
      checkb "keys still moved" true (moved <> []);
      checki "no move abandoned" 0
        (match Json.member "pending" j with
        | Json.List l -> List.length l
        | _ -> 0);
      settle h;
      List.iter (check_moved_doc_parity h) moved)

let () =
  Alcotest.run "cluster"
    [ ("router",
       [ Alcotest.test_case "basic" `Quick test_router_basic;
         Alcotest.test_case "join/leave stability" `Quick
           test_router_stability;
         Alcotest.test_case "spread" `Quick test_router_spread ]);
      ("partition",
       [ Alcotest.test_case "union of slices = whole" `Quick
           test_partition_union_equals_whole;
         Alcotest.test_case "validation" `Quick test_partition_validation ]);
      ("coordinator",
       [ Alcotest.test_case "load-doc replication" `Quick
           test_coordinator_load_replication;
         Alcotest.test_case "deterministic routing" `Quick
           test_coordinator_routing_deterministic;
         Alcotest.test_case "scatter parity" `Quick
           test_coordinator_scatter_parity;
         Alcotest.test_case "scatter opt-out" `Quick
           test_coordinator_scatter_respects_optout;
         Alcotest.test_case "failover exactly-once" `Quick
           test_coordinator_failover;
         Alcotest.test_case "respawn replays documents" `Quick
           test_coordinator_respawn_replays_docs;
         Alcotest.test_case "out-of-order worker excluded from scatter"
           `Quick test_scatter_excludes_out_of_order_worker;
         Alcotest.test_case "respawn replays in load order" `Quick
           test_respawn_replay_order;
         Alcotest.test_case "constructed seed routes whole" `Quick
           test_constructed_seed_routes_whole;
         Alcotest.test_case "retry accounting" `Quick
           test_coordinator_retry_accounting;
         Alcotest.test_case "local parse errors" `Quick
           test_coordinator_parse_error_local;
         Alcotest.test_case "chaos kill mid-scatter fails over" `Quick
           test_chaos_kill_mid_scatter ]);
      ("rebalance",
       [ Alcotest.test_case "add-worker moves exactly the gained keys"
           `Quick test_add_worker_moves_exactly;
         Alcotest.test_case "drain moves exactly the drained keys" `Quick
           test_drain_moves_its_keys;
         Alcotest.test_case "remove-worker retires" `Quick
           test_remove_worker_retires;
         Alcotest.test_case "patch history compacts" `Quick
           test_compaction_after_patches;
         Alcotest.test_case "chaos kill mid-move recovers" `Quick
           test_chaos_rebalance_kill_recovers ]) ]
