(* The pretty-printer: printed expressions re-parse to equal trees, on
   a corpus and on random ASTs. *)

module Parser = Fixq_lang.Parser
module Pretty = Fixq_lang.Pretty
module Atom = Fixq_xdm.Atom
module Axis = Fixq_xdm.Axis
module Semiring = Fixq_semiring.Semiring
open Fixq_lang.Ast

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let roundtrip e =
  let printed = Pretty.expr_to_string e in
  match Parser.parse_expr printed with
  | parsed -> if equal_expr e parsed then Ok () else Error printed
  | exception Parser.Error { msg; _ } -> Error (printed ^ " !! " ^ msg)

let check_rt msg e =
  match roundtrip e with
  | Ok () -> ()
  | Error printed -> Alcotest.failf "%s: no roundtrip via %s" msg printed

(* ------------------------------------------------------------------ *)
(* Corpus: parse → print → parse must be identity                      *)
(* ------------------------------------------------------------------ *)

let corpus =
  [ "1 + 2 * 3";
    {|"he said ""hi"""|};
    "2.5"; "1.0"; "-4";
    "$x/a/b[@k = \"v\"]";
    "$x//descendant::b";
    "/r/a";
    "(/)";
    "for $x at $i in $s return ($i, $x)";
    "let $v := 1 return $v + 1";
    "if ($c) then 1 else 2";
    "some $v in $s satisfies $v = 1";
    "every $v in $s satisfies $v = 1";
    "$a union $b except $c intersect $d";
    "$a is $b"; "$a << $b"; "$a >> $b";
    "$a eq 1 and $b ne 2 or $c";
    "1 to 10";
    "count(distinct-values($x))";
    "with $x seeded by . recurse $x/a";
    "with $x seeded by . recurse $x/a accumulate by bool";
    "with $x seeded by . recurse $x/a accumulate by count";
    "with $x seeded by . recurse $x/a accumulate by why";
    "with $x seeded by . recurse $x/a accumulate by min(number(./@cost))";
    "with $x seeded by . recurse $x/a accumulate by max(number(./@r), 1)";
    "with $x seeded by . recurse with $y seeded by . recurse $y/a \
     accumulate by why";
    "<a k=\"v{$x}w\"><b/>{$y}</a>";
    "element n { attribute k { 1 }, text { \"t\" } }";
    "comment { \"c\" }";
    "document { <r/> }";
    {|typeswitch ($x) case $e as element() return $e
      case xs:integer+ return 0 default $d return count($d)|};
    "$x/a[1][@k]";
    "..//b"; "@k"; "$x instance of node()*";
    "$x cast as xs:integer?"; "$x castable as xs:string";
    "for $x in $s order by $x/k descending return $x";
    "($x instance of element(a)?) and $y" ]

let test_corpus () =
  List.iter
    (fun src ->
      let e = Parser.parse_expr src in
      check_rt src e)
    corpus

let test_programs () =
  let src =
    {|declare function f($x as node()*, $y) as node()* { $x union $y };
      declare variable $d := 42;
      f($d, ())|}
  in
  let p = Parser.parse_program src in
  let printed = Pretty.program_to_string p in
  let p2 = Parser.parse_program printed in
  check "program roundtrip" true (equal_program p p2)

let test_seq_types () =
  List.iter
    (fun src ->
      let t = Parser.parse_seq_type src in
      check_str src src (Pretty.seq_type_to_string t))
    [ "node()*"; "element(a)+"; "xs:integer?"; "empty-sequence()";
      "item()"; "document-node()" ]

(* ------------------------------------------------------------------ *)
(* Random ASTs                                                         *)
(* ------------------------------------------------------------------ *)

let expr_gen =
  let open QCheck2.Gen in
  let var = oneofl [ "x"; "y"; "v1" ] in
  let name = oneofl [ "a"; "b"; "union" (* keyword as name *) ] in
  let atom =
    oneof
      [ map (fun i -> Literal (Atom.Int i)) (int_bound 9);
        map (fun s -> Literal (Atom.Str s)) (oneofl [ "s"; "a\"b"; "" ]);
        (* no boolean literals: XQuery spells them true()/false(), which
           parse as calls *)
        return (Call ("true", []));
        map (fun v -> Var v) var;
        return Empty_seq;
        return Context_item;
        map (fun n -> Axis_step { axis = Axis.Child; test = Axis.Name n }) name;
        return
          (Axis_step { axis = Axis.Descendant_or_self; test = Axis.Kind_node })
      ]
  in
  sized_size (int_bound 20)
  @@ fix (fun self n ->
         if n <= 1 then atom
         else
           let half = self (n / 2) in
           oneof
             [ atom;
               map2 (fun a b -> Sequence (a, b)) half half;
               map2 (fun a b -> Union (a, b)) half half;
               map2 (fun a b -> Except (a, b)) half half;
               map2 (fun a b -> Path (a, b)) half half;
               map2 (fun a b -> Filter (a, b)) half half;
               map2 (fun a b -> Arith (Add, a, b)) half half;
               map2 (fun a b -> Gen_cmp (Lt, a, b)) half half;
               map2 (fun a b -> Val_cmp (Ge, a, b)) half half;
               map2 (fun a b -> And (a, b)) half half;
               map2 (fun a b -> Or (a, b)) half half;
               map2 (fun a b -> Range (a, b)) half half;
               map (fun a -> Neg a) half;
               map (fun a -> Call ("count", [ a ])) half;
               map2
                 (fun v (s, b) ->
                   For { var = v; pos = None; source = s; body = b })
                 var (pair half half);
               map2
                 (fun v (s, b) -> Let { var = v; value = s; body = b })
                 var (pair half half);
               map2
                 (fun v (s, b) -> Quantified (Some_, v, s, b))
                 var (pair half half);
               map3 (fun a b c -> If (a, b, c)) half half half;
               (let accum =
                  oneof
                    [ return None;
                      map
                        (fun k -> Some { kind = k; weight = None })
                        (oneofl [ Semiring.Bool; Semiring.Count; Semiring.Why ]);
                      map2
                        (fun k w -> Some { kind = k; weight = Some w })
                        (oneofl [ Semiring.Min; Semiring.Max ])
                        half ]
                in
                map3
                  (fun v (s, b) accum -> Ifp { var = v; seed = s; body = b; accum })
                  var (pair half half) accum);
               map (fun a -> Comp_elem ("e", a)) half;
               map (fun a -> Text_constr a) half;
               map2
                 (fun (a, b) c ->
                   Elem_constr
                     ("w", [ ("k", [ A_lit "l"; A_expr a ]) ], [ b; c ]))
                 (pair half half) half ])

let prop_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"print ∘ parse = id on random ASTs"
    expr_gen
    (fun e -> match roundtrip e with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "pretty"
    [ ( "roundtrip",
        [ Alcotest.test_case "corpus" `Quick test_corpus;
          Alcotest.test_case "programs" `Quick test_programs;
          Alcotest.test_case "sequence types" `Quick test_seq_types ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]) ]
