(* Durability: the WAL + snapshot pair (lib/durable), recovery
   (Service.Durability), and the server's end-to-end crash/restart
   behaviour — cold starts replay snapshot + tail, torn tails truncate
   to the last complete record with a structured diagnostic (never an
   exception, never silent loss), and a clean shutdown leaves nothing
   to replay. *)

module Wal = Fixq_durable.Wal
module Snapshot = Fixq_durable.Snapshot
module Service = Fixq_service
module Json = Service.Json
module Server = Service.Server
module Durability = Service.Durability

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fixq-durable-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* WAL unit behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let payloads =
  List.init 20 (fun i ->
      Printf.sprintf {|{"op":"load-doc","uri":"d%d.xml","xml":"<r n=\"%d\"/>"}|}
        i i)

let write_wal dir =
  let path = Filename.concat dir "wal" in
  let w = Wal.open_wal path in
  List.iteri (fun i p -> Wal.append w ~seq:(i + 1) p) payloads;
  Wal.close w;
  path

let test_wal_roundtrip () =
  let path = write_wal (fresh_dir ()) in
  let r = Wal.load path in
  checki "all records back" (List.length payloads) (List.length r.Wal.records);
  checki "nothing truncated" 0 r.Wal.truncated_bytes;
  checkb "no diagnostic" true (r.Wal.diagnostic = None);
  List.iteri
    (fun i (seq, payload) ->
      checki "seq" (i + 1) seq;
      checks "payload" (List.nth payloads i) payload)
    r.Wal.records;
  (* a missing file is an empty, diagnostic-free log *)
  let r = Wal.load (Filename.concat (fresh_dir ()) "absent") in
  checki "missing file: no records" 0 (List.length r.Wal.records);
  checkb "missing file: no diagnostic" true (r.Wal.diagnostic = None)

let test_wal_rewind () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal" in
  let w = Wal.open_wal path in
  Wal.append w ~seq:1 {|{"a":1}|};
  let saved = Wal.size w in
  Wal.append w ~seq:2 {|{"b":2}|};
  Wal.rewind w saved;
  Wal.append w ~seq:2 {|{"c":3}|};
  Wal.close w;
  let r = Wal.load path in
  checki "two records" 2 (List.length r.Wal.records);
  checks "rewound record replaced" {|{"c":3}|} (snd (List.nth r.Wal.records 1))

let test_wal_newline_payload_rejected () =
  match Wal.render ~seq:1 "a\nb" with
  | _ -> Alcotest.fail "newline payload must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Torn-write recovery fuzz (truncations and byte flips at random      *)
(* offsets must recover a prefix with a diagnostic — never raise,      *)
(* never lose a record silently)                                       *)
(* ------------------------------------------------------------------ *)

let is_prefix_of records =
  let rec go i = function
    | [] -> true
    | (seq, payload) :: rest ->
      i < List.length payloads
      && seq = i + 1
      && payload = List.nth payloads i
      && go (i + 1) rest
  in
  go 0 records

let test_wal_torn_tail_fuzz () =
  let rng = Random.State.make [| 0xD15C |] in
  let dir = fresh_dir () in
  let pristine = read_file (write_wal dir) in
  let total = String.length pristine in
  for _ = 1 to 200 do
    let cut = Random.State.int rng (total + 1) in
    let path = Filename.concat dir "wal" in
    write_file path (String.sub pristine 0 cut);
    let r = Wal.load path in
    checkb "prefix recovered" true (is_prefix_of r.Wal.records);
    checki "accounts for every byte" cut
      (r.Wal.valid_bytes + r.Wal.truncated_bytes);
    if r.Wal.truncated_bytes > 0 then
      checkb "torn tail reported" true (r.Wal.diagnostic <> None);
    (* the valid prefix survives whole: no record before the cut is lost *)
    let complete_before_cut =
      (* records are newline-framed: count full lines within the cut *)
      String.fold_left
        (fun acc c -> if c = '\n' then acc + 1 else acc)
        0 (String.sub pristine 0 r.Wal.valid_bytes)
    in
    checki "no silent loss" complete_before_cut (List.length r.Wal.records);
    (* repair truncates physically; a reopened log appends cleanly *)
    let r2 = Wal.repair path in
    checki "repair keeps the prefix" (List.length r.Wal.records)
      (List.length r2.Wal.records);
    let w = Wal.open_wal path in
    let next = List.length r2.Wal.records + 1 in
    Wal.append w ~seq:next {|{"op":"ping"}|};
    Wal.close w;
    let r3 = Wal.load path in
    checki "clean append after repair" (next) (List.length r3.Wal.records);
    checkb "no diagnostic after repair+append" true (r3.Wal.diagnostic = None)
  done

let test_wal_byte_flip_fuzz () =
  let rng = Random.State.make [| 0xF11B |] in
  let dir = fresh_dir () in
  let pristine = read_file (write_wal dir) in
  let total = String.length pristine in
  for _ = 1 to 200 do
    let off = Random.State.int rng total in
    let b = Bytes.of_string pristine in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x41));
    let path = Filename.concat dir "wal" in
    write_file path (Bytes.to_string b);
    match Wal.load path with
    | r ->
      checkb "prefix recovered after flip" true (is_prefix_of r.Wal.records);
      checkb "flip reported or harmless" true
        (r.Wal.truncated_bytes = 0 || r.Wal.diagnostic <> None)
    | exception e ->
      Alcotest.failf "byte flip at %d raised %s" off (Printexc.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* Snapshot atomicity                                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let dir = fresh_dir () in
  let items = [ {|{"t":"doc","u":"a.xml","x":"<r/>"}|}; {|{"t":"cache"}|} ] in
  (match Snapshot.write ~dir ~meta:{|{"last_seq":7}|} ~items with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Snapshot.read ~dir with
  | Ok (Some s) ->
    checks "meta" {|{"last_seq":7}|} s.Snapshot.meta;
    checki "items" 2 (List.length s.Snapshot.items);
    List.iteri
      (fun i it -> checks "item" (List.nth items i) it)
      s.Snapshot.items
  | Ok None -> Alcotest.fail "snapshot missing"
  | Error e -> Alcotest.fail e);
  (* absent dir: Ok None, not an error *)
  match Snapshot.read ~dir:(fresh_dir ()) with
  | Ok None -> ()
  | _ -> Alcotest.fail "absent snapshot must read as None"

let test_snapshot_torn_and_corrupt () =
  let dir = fresh_dir () in
  (match Snapshot.write ~dir ~meta:{|{"last_seq":3}|} ~items:[] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a torn tmp file (crash mid-write) must not disturb the committed
     snapshot *)
  write_file (Filename.concat dir "snapshot.tmp") "FXQW1 0 garbage";
  (match Snapshot.read ~dir with
  | Ok (Some s) -> checks "committed snapshot read" {|{"last_seq":3}|} s.Snapshot.meta
  | _ -> Alcotest.fail "torn tmp must be ignored");
  (* corrupting the committed file yields a diagnostic Error, no raise *)
  let path = Snapshot.file ~dir in
  let bytes = read_file path in
  write_file path (String.sub bytes 0 (String.length bytes - 3));
  match Snapshot.read ~dir with
  | Error msg -> checkb "diagnostic" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "truncated snapshot must be invalid"

(* ------------------------------------------------------------------ *)
(* End-to-end server recovery                                          *)
(* ------------------------------------------------------------------ *)

let server_with ?(threshold = 0) dir =
  Server.create
    ~config:
      { Server.default_config with
        state_dir = Some dir; snapshot_threshold = threshold }
    ()

let send server line =
  let (resp, _) = Server.handle_line server line in
  Json.parse resp

let ok j = Json.bool_opt (Json.member "ok" j) = Some true
let str name j = Option.value ~default:"" (Json.str_opt (Json.member name j))

let load_line uri xml =
  Json.to_string
    (Json.Obj
       [ ("op", Json.Str "load-doc"); ("uri", Json.Str uri);
         ("xml", Json.Str xml) ])

let patch_line uri =
  Printf.sprintf
    {|{"op":"patch-doc","uri":%s,"action":"insert","path":"/r","xml":"<z/>"}|}
    (Json.to_string (Json.Str uri))

let run_line ?(extra = "") query =
  Printf.sprintf {|{"op":"run","query":%s%s}|}
    (Json.to_string (Json.Str query))
    extra

let closure_query = {|with $x seeded by doc("t.xml")/r/* recurse $x/*|}

let recovered_stat server name =
  let j = send server {|{"op":"stats"}|} in
  let d = Json.member "durability" (Json.member "stats" j) in
  Option.value ~default:(-1) (Json.int_opt (Json.member name (Json.member "recovered" d)))

let test_server_crash_recovery_wal_only () =
  let dir = fresh_dir () in
  let a = server_with dir in
  checkb "load" true (ok (send a (load_line "t.xml" "<r><a><b/></a></r>")));
  for _ = 1 to 3 do
    checkb "patch" true (ok (send a (patch_line "t.xml")))
  done;
  let expected = str "result" (send a (run_line closure_query)) in
  (* crash: drop the handle without shutdown — state must come back
     from the WAL alone (no snapshot was ever taken) *)
  let b = server_with dir in
  checki "four ops replayed" 4 (recovered_stat b "tail_ops");
  let j = send b (run_line closure_query) in
  checkb "recovered run ok" true (ok j);
  checks "byte-identical after cold start" expected (str "result" j)

let test_server_snapshot_recovery () =
  let dir = fresh_dir () in
  let a = server_with ~threshold:0 dir in
  checkb "load" true (ok (send a (load_line "t.xml" "<r><a><b/></a></r>")));
  for _ = 1 to 5 do
    checkb "patch" true (ok (send a (patch_line "t.xml")))
  done;
  let expected = str "result" (send a (run_line closure_query)) in
  let js = send a {|{"op":"snapshot"}|} in
  checkb "explicit snapshot ok" true (ok js);
  checkb "patch after snapshot" true (ok (send a (patch_line "t.xml")));
  let expected2 = str "result" (send a (run_line ~extra:{|,"cache":false|} closure_query)) in
  ignore expected;
  let b = server_with dir in
  checki "only the post-snapshot op replayed" 1 (recovered_stat b "tail_ops");
  checki "snapshot restored the document" 1 (recovered_stat b "docs");
  let j = send b (run_line closure_query) in
  checkb "recovered run ok" true (ok j);
  checks "byte-identical from snapshot + tail" expected2 (str "result" j)

let test_server_clean_shutdown_replays_nothing () =
  let dir = fresh_dir () in
  let a = server_with dir in
  checkb "load" true (ok (send a (load_line "t.xml" "<r><a/></r>")));
  checkb "patch" true (ok (send a (patch_line "t.xml")));
  let expected = str "result" (send a (run_line closure_query)) in
  let (_, stopped) = Server.handle_line a {|{"op":"shutdown"}|} in
  checkb "shutdown acknowledged" true stopped;
  let b = server_with dir in
  checki "clean restart replays zero ops" 0 (recovered_stat b "tail_ops");
  checki "snapshot carried the document" 1 (recovered_stat b "docs");
  let j = send b (run_line closure_query) in
  checks "byte-identical after clean restart" expected (str "result" j)

let test_server_result_cache_recovered () =
  let dir = fresh_dir () in
  let a = server_with dir in
  checkb "load" true (ok (send a (load_line "t.xml" "<r><a><b/></a></r>")));
  let j1 = send a (run_line closure_query) in
  checkb "first run ok" true (ok j1);
  checks "first run misses" "miss" (str "result_cache" j1);
  checkb "snapshot" true (ok (send a {|{"op":"snapshot"}|}));
  let b = server_with dir in
  checkb "cache entries recovered" true (recovered_stat b "cache_entries" >= 1);
  let j2 = send b (run_line closure_query) in
  checkb "recovered run ok" true (ok j2);
  checks "recovered run hits the restored cache" "hit" (str "result_cache" j2);
  checks "and answers identically" (str "result" j1) (str "result" j2);
  (* the recovered entry is maintainable: a patch after recovery keeps
     byte parity with a fresh recompute *)
  checkb "patch after recovery" true (ok (send b (patch_line "t.xml")));
  let maintained = send b (run_line closure_query) in
  let fresh = send b (run_line ~extra:{|,"cache":false|} closure_query) in
  checks "maintained equals recomputed" (str "result" fresh)
    (str "result" maintained)

let test_server_torn_wal_tail_recovers_prefix () =
  let dir = fresh_dir () in
  let a = server_with dir in
  checkb "load" true (ok (send a (load_line "t.xml" "<r><a/></r>")));
  checkb "patch" true (ok (send a (patch_line "t.xml")));
  (* tear the last record in half, as a crash mid-append would *)
  let wal = Filename.concat dir "wal" in
  let bytes = read_file wal in
  write_file wal (String.sub bytes 0 (String.length bytes - 7));
  let b = server_with dir in
  checki "only the complete record replayed" 1 (recovered_stat b "tail_ops");
  checkb "torn bytes reported" true (recovered_stat b "truncated_bytes" > 0);
  let j = send b (run_line closure_query) in
  checkb "server serves the recovered prefix" true (ok j)

let test_snapshot_threshold_triggers () =
  let dir = fresh_dir () in
  let a = server_with ~threshold:3 dir in
  checkb "load" true (ok (send a (load_line "t.xml" "<r><a/></r>")));
  for _ = 1 to 4 do
    checkb "patch" true (ok (send a (patch_line "t.xml")))
  done;
  let j = send a {|{"op":"stats"}|} in
  let d = Json.member "durability" (Json.member "stats" j) in
  checkb "op-count threshold took a snapshot" true
    (Option.value ~default:0 (Json.int_opt (Json.member "snapshots" d)) >= 1);
  checkb "snapshot file exists" true
    (Sys.file_exists (Filename.concat dir "snapshot"))

let () =
  Alcotest.run "durable"
    [ ("wal",
       [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
         Alcotest.test_case "rewind" `Quick test_wal_rewind;
         Alcotest.test_case "newline payload rejected" `Quick
           test_wal_newline_payload_rejected ]);
      ("torn-write fuzz",
       [ Alcotest.test_case "random truncation" `Quick test_wal_torn_tail_fuzz;
         Alcotest.test_case "random byte flip" `Quick test_wal_byte_flip_fuzz ]);
      ("snapshot",
       [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
         Alcotest.test_case "torn tmp + corrupt file" `Quick
           test_snapshot_torn_and_corrupt ]);
      ("server",
       [ Alcotest.test_case "crash recovery from WAL" `Quick
           test_server_crash_recovery_wal_only;
         Alcotest.test_case "snapshot + tail recovery" `Quick
           test_server_snapshot_recovery;
         Alcotest.test_case "clean shutdown replays nothing" `Quick
           test_server_clean_shutdown_replays_nothing;
         Alcotest.test_case "result cache + IVM recovered" `Quick
           test_server_result_cache_recovered;
         Alcotest.test_case "torn WAL tail keeps the prefix" `Quick
           test_server_torn_wal_tail_recovers_prefix;
         Alcotest.test_case "op-count snapshot threshold" `Quick
           test_snapshot_threshold_triggers ]) ]
