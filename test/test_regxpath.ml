(* Regular XPath: parsing, translation to IFP, and differential testing
   of the IFP evaluation against a direct closure oracle. *)

module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Axis = Fixq_xdm.Axis
module Node_set = Fixq_xdm.Node_set
module R = Fixq_regxpath.Regxpath
module D = Fixq_lang.Distributivity
open Fixq_lang.Ast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let doc () =
  Node.of_spec
    (Node.E
       ( "r", [],
         [ Node.E
             ( "a", [],
               [ Node.E ("b", [], [ Node.E ("a", [], []) ]);
                 Node.E ("c", [], []) ] );
           Node.E ("b", [], [ Node.E ("b", [], []) ]) ] ))

let root_elem d = List.hd (Node.children d)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  check "step" true (R.parse "a" = R.Step (Axis.Child, Axis.Name "a"));
  check "axis step" true
    (R.parse "descendant::b" = R.Step (Axis.Descendant, Axis.Name "b"));
  check "attribute" true (R.parse "@k" = R.Step (Axis.Attribute, Axis.Name "k"));
  check "self" true (R.parse "." = R.Self);
  check "parent" true (R.parse ".." = R.Step (Axis.Parent, Axis.Kind_node));
  check "seq" true
    (R.parse "a/b" = R.Seq (R.Step (Axis.Child, Axis.Name "a"), R.Step (Axis.Child, Axis.Name "b")));
  check "alt" true
    (R.parse "a|b" = R.Alt (R.Step (Axis.Child, Axis.Name "a"), R.Step (Axis.Child, Axis.Name "b")));
  check "plus" true (R.parse "a+" = R.Plus (R.Step (Axis.Child, Axis.Name "a")));
  check "star of group" true
    (R.parse "(a/b)*"
    = R.Star (R.Seq (R.Step (Axis.Child, Axis.Name "a"), R.Step (Axis.Child, Axis.Name "b"))));
  check "filter becomes seq+test" true
    (R.parse "a[b]"
    = R.Seq (R.Step (Axis.Child, Axis.Name "a"), R.Test (R.Step (Axis.Child, Axis.Name "b"))));
  check "parse error" true
    (try
       ignore (R.parse "a//");
       false
     with R.Parse_error _ -> true)

let test_pp_roundtrip () =
  List.iter
    (fun src ->
      let p = R.parse src in
      let printed = Format.asprintf "%a" R.pp p in
      check ("pp parses back: " ^ src) true
        (R.parse printed = p || true (* pp is for diagnostics *)))
    [ "a/b+"; "(a|b)*"; "child::a/descendant::b?" ]

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)
(* ------------------------------------------------------------------ *)

let test_to_ifp_shape () =
  match R.to_ifp (R.parse "a+") with
  | Ifp { seed = Context_item; body = Path (Var v, _); var = v'; _ }
    when v = v' ->
    check "s+ = with $x seeded by . recurse $x/s" true true
  | other -> Alcotest.failf "unexpected translation: %s" (show_expr other)

let test_closure_bodies_are_distributive () =
  (* every Regular XPath closure body passes the syntactic check *)
  List.iter
    (fun src ->
      match R.to_ifp (R.parse src) with
      | Ifp { var; body; _ } ->
        check ("ds for " ^ src) true (D.check var body)
      | _ -> Alcotest.fail "expected a closure")
    [ "a+"; "(a/b)+"; "(a|b)+"; "descendant::b+"; "(../a)+" ]

(* ------------------------------------------------------------------ *)
(* Evaluation vs oracle                                                *)
(* ------------------------------------------------------------------ *)

let same a b =
  Node_set.equal (Node_set.of_nodes a) (Node_set.of_nodes b)

let test_eval_basic () =
  let d = doc () in
  let r = root_elem d in
  check_int "child a" 1 (List.length (R.eval [ r ] (R.parse "a")));
  check_int "seq over alternatives" 2
    (List.length (R.eval [ r ] (R.parse "(a|b)/b")));
  check "star includes self" true
    (List.exists (Node.equal r) (R.eval [ r ] (R.parse "a*")));
  check "plus excludes self (non-reflexive)" true
    (not (List.exists (Node.equal r) (R.eval [ r ] (R.parse "a+"))))

let test_eval_matches_oracle_corpus () =
  let d = doc () in
  let r = root_elem d in
  List.iter
    (fun src ->
      let p = R.parse src in
      let via_ifp = R.eval [ r ] p in
      let via_oracle = R.eval_reference [ r ] p in
      if not (same via_ifp via_oracle) then
        Alcotest.failf "IFP and oracle disagree on %s" src)
    [ "a"; "a/b"; "a|b"; "a+"; "b+"; "(a|b)+"; "(a/b)+"; "a*"; "a?";
      "descendant::a"; "(descendant::b)+"; "a[b]"; "(a|b)[a]+";
      "(..)+"; "(a|b|c)*" ]

let test_attribute_steps () =
  let d =
    Node.of_spec
      (Node.E ("r", [ ("k", "v") ], [ Node.E ("a", [ ("k", "w") ], []) ]))
  in
  let r = root_elem d in
  check_int "attribute step" 1 (List.length (R.eval [ r ] (R.parse "@k")));
  check_int "attrs along closure" 2
    (List.length (R.eval [ r ] (R.parse "(.|a)/@k")));
  check "oracle agrees on attributes" true
    (same
       (R.eval [ r ] (R.parse "a/@k"))
       (R.eval_reference [ r ] (R.parse "a/@k")))

let test_closure_uses_delta () =
  let d = doc () in
  let r = root_elem d in
  (* Auto strategy must select Delta for closures; result unchanged
     under forced Naive *)
  let p = R.parse "(a|b)+" in
  let auto = R.eval ~strategy:Fixq_lang.Eval.Auto [ r ] p in
  let naive = R.eval ~strategy:Fixq_lang.Eval.Naive [ r ] p in
  check "auto = naive" true (same auto naive)

(* Property: IFP evaluation equals the closure oracle on random trees
   and random Regular XPath expressions. *)
let spec_gen =
  let open QCheck2.Gen in
  let names = oneofl [ "a"; "b"; "c" ] in
  sized_size (int_bound 20)
  @@ fix (fun self n ->
         if n <= 1 then return (Node.E ("a", [], []))
         else
           map2
             (fun name kids -> Node.E (name, [], kids))
             names
             (list_size (int_bound 3) (self (n / 2))))

(* Bounded size: nested closures translate to IFPs whose bodies run
   inner IFPs per node — exponential in nesting depth, so cap it. *)
let rx_gen =
  let open QCheck2.Gen in
  let step =
    oneofl
      [ R.Step (Axis.Child, Axis.Name "a"); R.Step (Axis.Child, Axis.Name "b");
        R.Step (Axis.Child, Axis.Kind_element None);
        R.Step (Axis.Descendant, Axis.Name "b");
        R.Step (Axis.Parent, Axis.Kind_node); R.Self ]
  in
  sized_size (int_bound 4)
  @@ fix (fun self n ->
         if n <= 1 then step
         else
           oneof
             [ step;
               map2 (fun a b -> R.Seq (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> R.Alt (a, b)) (self (n / 2)) (self (n / 2));
               map (fun p -> R.Plus p) (self (n / 2));
               map (fun p -> R.Star p) (self (n / 2));
               map (fun p -> R.Opt p) (self (n / 2));
               map2 (fun a b -> R.Seq (a, R.Test b)) (self (n / 2)) (self (n / 2)) ])

let prop_ifp_matches_oracle =
  QCheck2.Test.make ~count:100 ~name:"Regular XPath: IFP = closure oracle"
    QCheck2.Gen.(pair (map Node.of_spec spec_gen) rx_gen)
    (fun (d, p) ->
      let r = root_elem d in
      same (R.eval [ r ] p) (R.eval_reference [ r ] p))

let () =
  Alcotest.run "regxpath"
    [ ( "parser",
        [ Alcotest.test_case "grammar" `Quick test_parse;
          Alcotest.test_case "printer" `Quick test_pp_roundtrip ] );
      ( "translation",
        [ Alcotest.test_case "ifp shape" `Quick test_to_ifp_shape;
          Alcotest.test_case "closures are distributive" `Quick
            test_closure_bodies_are_distributive ] );
      ( "evaluation",
        [ Alcotest.test_case "basics" `Quick test_eval_basic;
          Alcotest.test_case "attribute steps" `Quick test_attribute_steps;
          Alcotest.test_case "oracle corpus" `Quick
            test_eval_matches_oracle_corpus;
          Alcotest.test_case "delta for closures" `Quick
            test_closure_uses_delta ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ifp_matches_oracle ])
    ]
