(* The fixq_service subsystem: JSON wire format, LRU caches, registry
   generations, the prepared-query layer, and the server's caching and
   failure behaviour end-to-end (through Server.handle_line, exactly
   what the pipe/socket transports feed). *)

module Service = Fixq_service
module Json = Service.Json
module Lru = Service.Lru
module Store = Service.Store
module Prepared = Service.Prepared
module Server = Service.Server
module Doc_registry = Fixq_xdm.Doc_registry
module Parser = Fixq_lang.Parser

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let samples =
    [ "null"; "true"; "false"; "0"; "-12"; "3.5"; "\"\"";
      "\"a \\\"b\\\" \\\\ \\n\""; "[]"; "[1,2,3]"; "{}";
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}" ]
  in
  List.iter
    (fun s -> checks s s (Json.to_string (Json.parse s)))
    samples

let test_json_unicode () =
  checks "u-escape" "\"é\"" (Json.to_string (Json.parse {|"\u00e9"|}));
  (* surrogate pair: U+1F600 *)
  checks "surrogate" "\"\240\159\152\128\""
    (Json.to_string (Json.parse {|"\ud83d\ude00"|}));
  checks "control" {|"a\nb"|} (Json.to_string (Json.parse "\"a\\nb\""))

let test_json_errors () =
  let fails s =
    match Json.parse s with
    | _ -> Alcotest.failf "expected parse failure on %S" s
    | exception Json.Parse_error _ -> ()
  in
  List.iter fails
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}";
      "{\"a\":}"; "nul"; "[1]]" ]

let test_json_members () =
  let j = Json.parse {|{"op":"run","n":3,"b":true,"f":2.5}|} in
  checks "op" "run" (Option.get (Json.str_opt (Json.member "op" j)));
  checki "n" 3 (Option.get (Json.int_opt (Json.member "n" j)));
  checkb "b" true (Option.get (Json.bool_opt (Json.member "b" j)));
  checkb "f not int" true (Json.int_opt (Json.member "f" j) = None);
  checkb "absent" true (Json.member "missing" j = Json.Null)

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;  (* evicts a *)
  checkb "a evicted" true (Lru.find c "a" = None);
  checkb "b live" true (Lru.find c "b" = Some 2);
  checkb "c live" true (Lru.find c "c" = Some 3);
  checki "len" 2 (Lru.length c)

let test_lru_promotion () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  ignore (Lru.find c "a");  (* a becomes MRU, b is now LRU *)
  Lru.put c "c" 3;  (* evicts b *)
  checkb "b evicted" true (Lru.find c "b" = None);
  checkb "a survived" true (Lru.find c "a" = Some 1);
  check
    Alcotest.(list string)
    "mru order" [ "a"; "c" ]
    (List.sort compare (Lru.keys c))

let test_lru_counters () =
  let c = Lru.create ~capacity:4 () in
  ignore (Lru.find c "x");  (* miss *)
  Lru.put c "x" 0;
  ignore (Lru.find c "x");  (* hit *)
  ignore (Lru.find c "y");  (* miss *)
  checki "hits" 1 (Lru.hits c);
  checki "misses" 2 (Lru.misses c)

(* ------------------------------------------------------------------ *)
(* Doc_registry generations                                            *)
(* ------------------------------------------------------------------ *)

let parse_doc xml = Fixq_xdm.Xml_parser.parse_string ~uri:"t.xml" xml

let test_registry_generation () =
  let registry = Doc_registry.create () in
  let gen () = Doc_registry.generation ~registry () in
  checki "fresh" 0 (gen ());
  Doc_registry.register ~registry "a.xml" (parse_doc "<a/>");
  checki "after register" 1 (gen ());
  Doc_registry.register ~registry "a.xml" (parse_doc "<a2/>");
  checki "re-register bumps" 2 (gen ());
  Doc_registry.unregister ~registry "missing.xml";
  checki "no-op unregister keeps" 2 (gen ());
  Doc_registry.unregister ~registry "a.xml";
  checki "unregister bumps" 3 (gen ());
  checkb "gone" true (Doc_registry.find ~registry "a.xml" = None);
  Doc_registry.register ~registry "b.xml" (parse_doc "<b/>");
  Doc_registry.clear ~registry ();
  checki "clear bumps" 5 (gen ());
  check Alcotest.(list string) "uris empty" [] (Doc_registry.uris ~registry ())

(* ------------------------------------------------------------------ *)
(* Prepared                                                            *)
(* ------------------------------------------------------------------ *)

let curriculum_xml =
  {|<!DOCTYPE curriculum [ <!ATTLIST course code ID #REQUIRED> ]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites/></course>
</curriculum>|}

let q1 =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
    recurse $x/id(./prerequisites/pre_code)|}

let q2 =
  {|let $seed := (<a/>,<b><c><d/></c></b>) return
    with $x seeded by $seed
    recurse if (count($x/self::a)) then $x/* else ()|}

let make_store () =
  let store = Store.create () in
  Store.load_xml store ~uri:"curriculum.xml" curriculum_xml;
  store

let prepare store q =
  Prepared.prepare ~store ~stratified:false ~max_iterations:10_000 q

let test_prepared_modes () =
  let store = make_store () in
  let p1 = prepare store q1 in
  checki "q1 one ifp" 1 p1.Prepared.ifp_count;
  checkb "q1 syntactic" true p1.Prepared.syntactic;
  checkb "q1 algebraic" true (p1.Prepared.algebraic = Some true);
  checkb "q1 interp pins delta" true (p1.Prepared.interp_mode = Fixq.Delta);
  checkb "q1 algebra pins delta" true (p1.Prepared.algebra_mode = Fixq.Delta);
  checkb "q1 has plan" true (p1.Prepared.plan <> None);
  let p2 = prepare store q2 in
  checkb "q2 syntactic" false p2.Prepared.syntactic;
  checkb "q2 algebraic" true (p2.Prepared.algebraic = Some false);
  checkb "q2 interp pins naive" true (p2.Prepared.interp_mode = Fixq.Naive);
  checkb "q2 algebra pins naive" true (p2.Prepared.algebra_mode = Fixq.Naive);
  let p3 = prepare store "1 + 1" in
  checki "no ifp" 0 p3.Prepared.ifp_count;
  checkb "no plan" true (p3.Prepared.plan = None)

(* The prepared layer must agree with what `fixq check` reports — both
   call the same verdicts, but this pins the wiring. *)
let test_prepared_parity_with_check () =
  let store = make_store () in
  let registry = Store.registry store in
  List.iter
    (fun q ->
      let p = prepare store q in
      match
        Fixq.distributivity_verdicts ~registry (Parser.parse_program q)
      with
      | None -> checki "no ifp" 0 p.Prepared.ifp_count
      | Some (syn, alg) ->
        checkb "syntactic parity" syn p.Prepared.syntactic;
        checkb "algebraic parity" true (alg = p.Prepared.algebraic))
    [ q1; q2; "count((1,2,3))" ]

let test_prepared_multi_ifp_keeps_auto () =
  let store = make_store () in
  let q =
    {|(with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
       recurse $x/id(./prerequisites/pre_code)),
      (with $y seeded by doc("curriculum.xml")/curriculum/course[@code="c2"]
       recurse $y/id(./prerequisites/pre_code))|}
  in
  let p = prepare store q in
  checki "two ifps" 2 p.Prepared.ifp_count;
  checkb "interp auto" true (p.Prepared.interp_mode = Fixq.Auto);
  checkb "algebra auto" true (p.Prepared.algebra_mode = Fixq.Auto)

let test_prepared_rejects () =
  let store = make_store () in
  let rejected q =
    match prepare store q with
    | _ -> Alcotest.failf "expected Rejected on %S" q
    | exception Prepared.Rejected _ -> ()
  in
  rejected "1 +";  (* parse error *)
  rejected "count($nope)"  (* static error *)

(* ------------------------------------------------------------------ *)
(* Server: caching and invalidation end-to-end                         *)
(* ------------------------------------------------------------------ *)

let mk_server () = Server.create ()

let send server line =
  let (response, _) = Server.handle_line server line in
  Json.parse response

let ok j = Json.bool_opt (Json.member "ok" j) = Some true
let field name j = Json.member name j
let sfield name j = Option.get (Json.str_opt (field name j))

let load_doc_line =
  Json.to_string
    (Json.Obj
       [ ("op", Json.Str "load-doc"); ("uri", Json.Str "curriculum.xml");
         ("xml", Json.Str curriculum_xml) ])

let run_line =
  Json.to_string
    (Json.Obj
       [ ("op", Json.Str "run");
         ("query",
          Json.Str
            ("count(" ^ q1 ^ ")")) ])

(* The ISSUE's acceptance scenario: same query twice hits both caches;
   a load-doc between runs invalidates the result cache but not the
   prepared query; the stats op reports the counters. *)
let test_server_cache_lifecycle () =
  let server = mk_server () in
  checkb "load ok" true (ok (send server load_doc_line));
  let r1 = send server run_line in
  checkb "r1 ok" true (ok r1);
  checks "r1 result" "3" (sfield "result" r1);
  checks "r1 prepared" "miss" (sfield "prepared_cache" r1);
  checks "r1 results" "miss" (sfield "result_cache" r1);
  checks "r1 mode" "delta" (sfield "mode" r1);
  let r2 = send server run_line in
  checks "r2 prepared" "hit" (sfield "prepared_cache" r2);
  checks "r2 results" "hit" (sfield "result_cache" r2);
  checks "r2 result" "3" (sfield "result" r2);
  checki "r2 nodes_fed preserved" 4
    (Option.get (Json.int_opt (field "nodes_fed" r2)));
  (* swap the document: generation bump must invalidate results only *)
  checkb "reload ok" true (ok (send server load_doc_line));
  let r3 = send server run_line in
  checks "r3 prepared survives reload" "hit" (sfield "prepared_cache" r3);
  checks "r3 results invalidated" "miss" (sfield "result_cache" r3);
  let r4 = send server run_line in
  checks "r4 results hit again" "hit" (sfield "result_cache" r4);
  let st = send server {|{"op":"stats"}|} in
  let stats = field "stats" st in
  let cache name counter =
    Option.get (Json.int_opt (field counter (field name stats)))
  in
  checki "prepared hits" 3 (cache "prepared" "hits");
  checki "prepared misses" 1 (cache "prepared" "misses");
  checki "result hits" 2 (cache "results" "hits");
  checki "result misses" 2 (cache "results" "misses");
  checki "generation" 2
    (Option.get (Json.int_opt (field "generation" stats)))

let test_server_engines_agree () =
  let server = mk_server () in
  ignore (send server load_doc_line);
  let run engine =
    send server
      (Json.to_string
         (Json.Obj
            [ ("op", Json.Str "run"); ("engine", Json.Str engine);
              ("query", Json.Str ("count(" ^ q1 ^ ")")) ]))
  in
  let ri = run "interp" in
  let ra = run "algebra" in
  checkb "both ok" true (ok ri && ok ra);
  checks "same result" (sfield "result" ri) (sfield "result" ra);
  (* distinct engine configurations must not share result-cache slots *)
  checks "algebra cold" "miss" (sfield "result_cache" ra)

let test_server_failures_stay_up () =
  let server = mk_server () in
  let err line =
    let r = send server line in
    checkb ("not ok: " ^ line) false (ok r);
    Option.get (Json.str_opt (field "error" r))
  in
  ignore (err "this is not json");
  ignore (err {|{"no_op":1}|});
  ignore (err {|{"op":"frobnicate"}|});
  ignore (err {|{"op":"run"}|});
  ignore (err {|{"op":"run","query":"1 +"}|});
  ignore (err {|{"op":"run","query":"count($nope)"}|});
  ignore (err {|{"op":"load-doc","uri":"x.xml","xml":"<unclosed>"}|});
  ignore (err {|{"op":"load-doc","uri":"x.xml","generate":"nope"}|});
  (* iteration budget: divergent IFP degrades to an error response *)
  let e =
    err {|{"op":"run","query":"with $x seeded by <a/> recurse <b/>","max_iterations":10}|}
  in
  checkb "diverged reported" true
    (String.length e > 0 && String.sub e 0 12 = "IFP diverged");
  (* wall-clock budget: a deadline in the past trips on round one *)
  let e =
    err {|{"op":"run","query":"with $x seeded by <a/> recurse <b/>","timeout_ms":0}|}
  in
  checkb "deadline reported" true
    (String.length e >= 8 && String.sub e 0 8 = "deadline");
  (* and the server still serves *)
  let r = send server {|{"op":"run","query":"1 + 1"}|} in
  checkb "alive" true (ok r);
  checks "alive result" "2" (sfield "result" r)

let test_server_cache_bypass () =
  let server = mk_server () in
  ignore (send server load_doc_line);
  let line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "run"); ("cache", Json.Bool false);
           ("query", Json.Str ("count(" ^ q1 ^ ")")) ])
  in
  let r1 = send server line in
  let r2 = send server line in
  checks "bypass never hits" "miss" (sfield "result_cache" r2);
  checks "but prepared does" "hit" (sfield "prepared_cache" r2);
  checkb "results agree" true (sfield "result" r1 = sfield "result" r2)

let test_server_shutdown_and_ids () =
  let server = mk_server () in
  let (resp, stop) = Server.handle_line server {|{"op":"ping","id":42}|} in
  checkb "ping continues" false stop;
  let j = Json.parse resp in
  checki "id echoed" 42 (Option.get (Json.int_opt (field "id" j)));
  let (resp, stop) =
    Server.handle_line server {|{"op":"shutdown","id":"bye"}|}
  in
  checkb "shutdown stops" true stop;
  checks "id echoed on shutdown" "bye" (sfield "id" (Json.parse resp))

let test_server_unload_and_generated () =
  let server = mk_server () in
  let r =
    send server
      {|{"op":"load-doc","uri":"c.xml","generate":"curriculum","size":12,"seed":5}|}
  in
  checkb "generated ok" true (ok r);
  let r = send server {|{"op":"run","query":"count(doc(\"c.xml\")/curriculum/course)"}|} in
  checks "twelve courses" "12" (sfield "result" r);
  let r = send server {|{"op":"unload-doc","uri":"c.xml"}|} in
  checki "unload bumps generation" 2
    (Option.get (Json.int_opt (field "generation" r)));
  let r = send server {|{"op":"run","query":"count(doc(\"c.xml\")/curriculum/course)"}|} in
  checkb "doc gone" false (ok r)

(* The analyzer's divergence verdict gates serving: an un-budgeted
   may-diverge query is refused up front (FQ040) instead of spinning
   against the config backstop; any explicit budget, or a verdict of
   terminates/bounded, lets it through. *)
let test_server_divergence_refusal () =
  let server = mk_server () in
  let diverging = {|with $x seeded by 1 recurse $x * 1|} in
  let r =
    send server
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "run"); ("query", Json.Str diverging) ]))
  in
  checkb "refused" false (ok r);
  checks "code" "FQ040" (sfield "code" r);
  checks "class" "may-diverge" (sfield "divergence" r);
  let e = sfield "error" r in
  checkb "explains the refusal" true
    (String.length e >= 17 && String.sub e 0 17 = "query may diverge");
  (* the same query with an iteration budget clears the gate: it is
     attempted (and fails downstream on its own merits — atoms have no
     document order), not refused up front *)
  let r =
    send server
      (Json.to_string
         (Json.Obj
            [ ("op", Json.Str "run"); ("query", Json.Str diverging);
              ("max_iterations", Json.Num 10.) ]))
  in
  checkb "budgeted not refused" true (field "code" r = Json.Null);
  (* a budgeted constructor-divergent query likewise reaches the
     evaluator and trips the iteration budget, not the gate *)
  let r =
    send server
      {|{"op":"run","query":"with $x seeded by <a/> recurse <b/>","max_iterations":10}|}
  in
  let e = sfield "error" r in
  checkb "budget trips, not the gate" true
    (String.length e >= 12 && String.sub e 0 12 = "IFP diverged");
  (* node-only queries are classified terminates: no budget required *)
  ignore (send server load_doc_line);
  let r =
    send server
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "run"); ("query", Json.Str q1) ]))
  in
  checkb "terminating unbudgeted ok" true (ok r);
  (* refusals are counted *)
  let st = send server {|{"op":"stats"}|} in
  let analysis = field "analysis" (field "stats" st) in
  checki "refused counted" 1
    (Option.get (Json.int_opt (field "refused" analysis)))

let test_server_check_diagnostics () =
  let server = mk_server () in
  ignore (send server load_doc_line);
  let check_op q =
    send server
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "check"); ("query", Json.Str q) ]))
  in
  let r = check_op q1 in
  checkb "check ok" true (ok r);
  checks "divergence surfaced" "terminates" (sfield "divergence" r);
  checkb "node_only surfaced" true
    (Json.bool_opt (field "node_only" r) = Some true);
  (* a clean query still gets the cost analyzer's certified round
     bound as an info diagnostic — and nothing else *)
  checkb "only the certified-bound info on clean query" true
    (match field "diagnostics" r with
    | Json.List [ d ] ->
      Json.str_opt (Json.member "code" d) = Some "FQ053"
      && Json.str_opt (Json.member "severity" d) = Some "info"
    | _ -> false);
  (* a blamed query: FQ030 located, blocking operator surfaced *)
  let r =
    check_op
      ("with $x seeded by doc(\"curriculum.xml\")/curriculum/course \
        recurse ($x/prereq except $x/course)")
  in
  checkb "blamed check ok" true (ok r);
  let codes =
    match field "diagnostics" r with
    | Json.List ds ->
      List.map (fun d -> Option.get (Json.str_opt (Json.member "code" d))) ds
    | _ -> Alcotest.fail "diagnostics must be a list"
  in
  checkb "FQ030 present" true (List.mem "FQ030" codes);
  checkb "FQ031 present" true (List.mem "FQ031" codes);
  checkb "FQ032 present" true (List.mem "FQ032" codes);
  (match field "diagnostics" r with
  | Json.List (d :: _) ->
    checkb "diagnostics located" true
      (Option.get (Json.int_opt (Json.member "line" d)) >= 1)
  | _ -> Alcotest.fail "expected at least one diagnostic");
  checkb "blocking operator surfaced" true
    (Json.str_opt (field "blocking" r) <> None);
  (* rejected queries answer with located structured diagnostics *)
  let r = check_op "1 + count($nope)" in
  checkb "static error not ok" false (ok r);
  (match field "diagnostics" r with
  | Json.List [ d ] ->
    checks "code" "FQ010"
      (Option.get (Json.str_opt (Json.member "code" d)));
    checki "line" 1 (Option.get (Json.int_opt (Json.member "line" d)));
    checki "col" 11 (Option.get (Json.int_opt (Json.member "col" d)))
  | _ -> Alcotest.fail "expected exactly one diagnostic");
  let r = check_op "1 +" in
  checkb "parse error not ok" false (ok r);
  (match field "diagnostics" r with
  | Json.List [ d ] ->
    checks "parse code" "FQ001"
      (Option.get (Json.str_opt (Json.member "code" d)))
  | _ -> Alcotest.fail "expected exactly one parse diagnostic")

(* A cached prepared entry must not serve a stale cost estimate: after
   patch-doc grows the document, the same check (a prepared hit) has
   to report the re-analyzed round bound and costs. *)
let test_server_cost_refresh () =
  let server = mk_server () in
  ignore (send server load_doc_line);
  let check_q () =
    send server
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "check"); ("query", Json.Str q1) ]))
  in
  let before = check_q () in
  let bound r = Option.get (Json.int_opt (field "rounds_bound" r)) in
  let patch =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "patch-doc");
           ("uri", Json.Str "curriculum.xml");
           ("action", Json.Str "insert");
           ("path", Json.Str "/curriculum");
           ("position", Json.Str "into-last");
           ("xml",
            Json.Str "<course code=\"c9\"><prerequisites/></course>") ])
  in
  checkb "patch ok" true (ok (send server patch));
  let after = check_q () in
  checks "still a prepared hit" "hit" (sfield "prepared_cache" after);
  checki "bound tracks the grown document" (bound before + 1) (bound after)

let () =
  Alcotest.run "service"
    [ ("json",
       [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
         Alcotest.test_case "unicode" `Quick test_json_unicode;
         Alcotest.test_case "errors" `Quick test_json_errors;
         Alcotest.test_case "members" `Quick test_json_members ]);
      ("lru",
       [ Alcotest.test_case "eviction" `Quick test_lru_eviction;
         Alcotest.test_case "promotion" `Quick test_lru_promotion;
         Alcotest.test_case "counters" `Quick test_lru_counters ]);
      ("registry",
       [ Alcotest.test_case "generation" `Quick test_registry_generation ]);
      ("prepared",
       [ Alcotest.test_case "modes" `Quick test_prepared_modes;
         Alcotest.test_case "parity with check" `Quick
           test_prepared_parity_with_check;
         Alcotest.test_case "multi-ifp keeps auto" `Quick
           test_prepared_multi_ifp_keeps_auto;
         Alcotest.test_case "rejects" `Quick test_prepared_rejects ]);
      ("server",
       [ Alcotest.test_case "cache lifecycle" `Quick
           test_server_cache_lifecycle;
         Alcotest.test_case "engines agree" `Quick test_server_engines_agree;
         Alcotest.test_case "failures stay up" `Quick
           test_server_failures_stay_up;
         Alcotest.test_case "cache bypass" `Quick test_server_cache_bypass;
         Alcotest.test_case "shutdown and ids" `Quick
           test_server_shutdown_and_ids;
         Alcotest.test_case "unload and generated docs" `Quick
           test_server_unload_and_generated;
         Alcotest.test_case "divergence refusal" `Quick
           test_server_divergence_refusal;
         Alcotest.test_case "check diagnostics" `Quick
           test_server_check_diagnostics;
         Alcotest.test_case "cost refresh after patch" `Quick
           test_server_cost_refresh ]) ]
