(* fixq — command-line front end.

   Subcommands:
     run       evaluate a query (file or --expr) against XML documents
     check     report both distributivity verdicts for a query's IFP
     plan      print the compiled algebra plan of a query's IFP
     generate  emit a benchmark document (xmark/curriculum/play/hospital)
     serve     long-lived query server (prepared-query + result caches)
     cluster   multi-process cluster: sharded workers behind a coordinator
     client    forward stdin request lines to a serve/cluster socket *)

module Xdm = Fixq_xdm
module Lang = Fixq_lang
module W = Fixq_workloads
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --doc uri=path registrations *)
let load_docs registry docs =
  List.iter
    (fun spec ->
      let (uri, path) =
        match String.index_opt spec '=' with
        | Some i ->
          ( String.sub spec 0 i,
            String.sub spec (i + 1) (String.length spec - i - 1) )
        | None -> (spec, spec)
      in
      match Xdm.Xml_parser.parse_string ~uri (read_file path) with
      | doc -> Xdm.Doc_registry.register ~registry uri doc
      | exception Sys_error msg ->
        Printf.eprintf "error: --doc %s: %s\n" uri msg;
        exit 1
      | exception Xdm.Xml_parser.Parse_error { line; col; msg } ->
        Printf.eprintf "error: --doc %s: parse error at %d:%d: %s\n" uri line
          col msg;
        exit 1)
    docs

(* --patch "URI ACTION [PAYLOAD] at /PATH [POSITION]" applications.
   [fixq run] applies them locally after --doc registration; [fixq
   client] translates each into a patch-doc request line sent before
   the stdin loop. *)
let parse_patch_specs specs =
  List.map
    (fun spec ->
      match Fixq_service.Protocol.parse_patch_spec spec with
      | Ok parsed -> parsed
      | Error msg ->
        Printf.eprintf "error: --patch %S: %s\n" spec msg;
        exit 1)
    specs

let apply_patches registry specs =
  List.iter
    (fun (uri, op) ->
      match Xdm.Doc_registry.find ~registry uri with
      | None ->
        Printf.eprintf "error: --patch: no document loaded under %S\n" uri;
        exit 1
      | Some root -> (
        match Xdm.Patch.apply root op with
        | delta -> Xdm.Doc_registry.register ~registry uri delta.Xdm.Patch.new_root
        | exception Xdm.Patch.Patch_error msg ->
          Printf.eprintf "error: --patch %s: %s\n" uri msg;
          exit 1))
    (parse_patch_specs specs)

let patch_request_line uri op =
  let module Json = Fixq_service.Json in
  let module P = Xdm.Patch in
  let fields =
    match op with
    | P.Insert { path; position; xml } ->
      [ ("action", Json.Str "insert"); ("path", Json.Str path);
        ("position", Json.Str (P.string_of_position position));
        ("xml", Json.Str xml) ]
    | P.Delete { path } ->
      [ ("action", Json.Str "delete"); ("path", Json.Str path) ]
    | P.Replace { path; xml } ->
      [ ("action", Json.Str "replace"); ("path", Json.Str path);
        ("xml", Json.Str xml) ]
    | P.Set_text { path; text } ->
      [ ("action", Json.Str "set-text"); ("path", Json.Str path);
        ("text", Json.Str text) ]
  in
  Json.to_string
    (Json.Obj (("op", Json.Str "patch-doc") :: ("uri", Json.Str uri) :: fields))

let query_source file expr =
  match (file, expr) with
  | (_, Some e) -> e
  | (Some f, None) -> read_file f
  | (None, None) ->
    (* read the query from stdin *)
    let buf = Buffer.create 256 in
    (try
       while true do
         Buffer.add_channel buf stdin 1
       done
     with End_of_file -> ());
    Buffer.contents buf

(* shared args *)
let docs_arg =
  let doc = "Register an XML document: URI=PATH (or just PATH)." in
  Arg.(value & opt_all string [] & info [ "doc"; "d" ] ~docv:"URI=PATH" ~doc)

let patch_arg =
  let doc =
    "Apply a document edit (repeatable, applied in order): \"URI ACTION \
     [PAYLOAD] at /PATH [POSITION]\", e.g. 'auction.xml insert <x/> at \
     /site/people' or 'auction.xml delete at /site/regions[2]'. ACTION is \
     insert|delete|replace|set-text; POSITION is \
     into|into-first|into-last|before|after (default into-last)."
  in
  Arg.(value & opt_all string [] & info [ "patch" ] ~docv:"SPEC" ~doc)

let file_arg =
  let doc = "Query file; omit to read from stdin." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"QUERY.xq" ~doc)

let expr_arg =
  let doc = "Inline query text (overrides the file argument)." in
  Arg.(value & opt (some string) None & info [ "expr"; "e" ] ~docv:"QUERY" ~doc)

let engine_arg =
  let doc =
    "Engine: 'interp' (tree-walking), 'algebra' (relational), 'sql' \
     (WITH RECURSIVE over materialized document relations; \
     non-renderable IFP sites fall back to the interpreter), or 'auto' \
     (the cost analyzer picks the cheapest estimate)."
  in
  Arg.(value
       & opt
           (enum
              [ ("interp", `Interp); ("algebra", `Algebra); ("sql", `Sql);
                ("auto", `Auto) ])
           `Interp
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

let mode_arg =
  let doc = "Fixpoint algorithm: naive, delta (forced), or auto." in
  Arg.(value
       & opt (enum [ ("naive", Fixq.Naive); ("delta", Fixq.Delta); ("auto", Fixq.Auto) ])
           Fixq.Auto
       & info [ "mode" ] ~docv:"MODE" ~doc)

let stats_arg =
  let doc = "Print fixpoint statistics (nodes fed, depth, time)." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stratified_arg =
  let doc =
    "Enable the stratified-difference refinement: 'x except R' with \
     fixed R counts as distributive (the paper's Section 6)."
  in
  Arg.(value & flag & info [ "stratified" ] ~doc)

let domains_arg =
  let doc =
    "Run Delta-eligible interpreter fixpoints on N OCaml domains \
     (Section 7 parallel Delta). Default: sequential."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let chunk_threshold_arg =
  let doc =
    "With --domains: rounds feeding fewer than N items stay sequential \
     (spawning domains costs more than small rounds save)."
  in
  Arg.(value & opt int 64 & info [ "chunk-threshold" ] ~docv:"N" ~doc)

let to_engine engine mode =
  match engine with
  | `Interp -> Fixq.Interpreter mode
  | `Algebra -> Fixq.Algebra mode
  | `Sql -> Fixq.Sql mode

(* The full static cost report for an already-parsed program: both
   distributivity verdicts plus the compiled/renderable probes shape
   the per-engine estimates exactly as [Prepared.prepare] does. *)
let cost_report ?spans registry p =
  let module E = Fixq_cost.Estimate in
  let no_ifp = Fixq.count_ifps p = 0 in
  let compiled =
    if no_ifp then None
    else
      Some
        (match Fixq.plan_of_first_ifp ~registry p with
        | Some _ -> true
        | None -> false
        | exception _ -> false)
  in
  let sql =
    if no_ifp then None
    else try Fixq.sql_of_first_ifp ~registry p with _ -> None
  in
  let (syntactic, algebraic) =
    match try Fixq.distributivity_verdicts ~registry p with _ -> None with
    | Some v -> v
    | None -> (false, None)
  in
  E.analyze ~registry ?spans ~compiled
    ~sql_renderable:(Option.map Result.is_ok sql)
    ~algebra_delta:(algebraic = Some true) ~interp_delta:syntactic p

(* [--engine auto]: resolve to a fixed engine before execution, so an
   auto run is byte-identical to the chosen engine spelled out. *)
let resolve_engine registry src engine =
  match engine with
  | (`Interp | `Algebra | `Sql) as e -> e
  | `Auto -> (
    match Lang.Parser.parse_program src with
    | exception _ -> `Interp (* let the evaluator report the error *)
    | p -> (
      match (cost_report registry p).Fixq_cost.Estimate.chosen with
      | "algebra" -> `Algebra
      | "sql" -> `Sql
      | _ -> `Interp))

let engine_name = function
  | `Interp -> "interp"
  | `Algebra -> "algebra"
  | `Sql -> "sql"

(* ------------------------------------------------------------------ *)

let run_cmd =
  let action file expr docs patches engine mode stats stratified domains
      chunk_threshold =
    let registry = Xdm.Doc_registry.create () in
    load_docs registry docs;
    apply_patches registry patches;
    let src = query_source file expr in
    let auto = engine = `Auto in
    let engine = resolve_engine registry src engine in
    if auto && stats then
      Printf.eprintf "engine chosen: %s\n" (engine_name engine);
    match
      Fixq.run ~registry ~stratified ?domains ~chunk_threshold
        ~engine:(to_engine engine mode) src
    with
    | report ->
      print_endline (Xdm.Serializer.seq_to_string report.Fixq.result);
      (match report.Fixq.semiring with
      | None -> ()
      | Some kind ->
        Printf.printf "-- accumulate by %s --\n" kind;
        List.iter
          (fun (x, a) -> Printf.printf "%s @ %s\n" x a)
          report.Fixq.annotations);
      if stats then begin
        Printf.eprintf "time: %.1f ms\n" report.Fixq.wall_ms;
        Printf.eprintf "delta used: %s\n"
          (match report.Fixq.used_delta with
          | None -> "no IFP"
          | Some b -> string_of_bool b);
        Printf.eprintf "nodes fed: %d, depth: %d\n" report.Fixq.nodes_fed
          report.Fixq.depth;
        List.iter (Printf.eprintf "fallback: %s\n") report.Fixq.fallbacks
      end;
      0
    | exception Fixq.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  let term =
    Term.(const action $ file_arg $ expr_arg $ docs_arg $ patch_arg
          $ engine_arg $ mode_arg $ stats_arg $ stratified_arg $ domains_arg
          $ chunk_threshold_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Evaluate a query.") term

let repl_cmd =
  let action docs engine mode stratified =
    let registry = Xdm.Doc_registry.create () in
    load_docs registry docs;
    print_endline
      "fixq repl — one query per line, blank line or EOF to quit";
    let rec loop () =
      print_string "fixq> ";
      match read_line () with
      | "" | exception End_of_file -> 0
      | line -> (
        (match
           Fixq.run ~registry ~stratified
             ~engine:(to_engine (resolve_engine registry line engine) mode)
             line
         with
        | report ->
          print_endline (Xdm.Serializer.seq_to_string report.Fixq.result);
          (match report.Fixq.used_delta with
          | Some d -> Printf.printf "  [delta: %b, fed %d, depth %d]\n" d
                        report.Fixq.nodes_fed report.Fixq.depth
          | None -> ())
        | exception Fixq.Error msg -> Printf.printf "error: %s\n" msg);
        loop ())
    in
    loop ()
  in
  let term =
    Term.(const action $ docs_arg $ engine_arg $ mode_arg $ stratified_arg)
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive query loop.") term

let check_cmd =
  let action file expr docs =
    let registry = Xdm.Doc_registry.create () in
    load_docs registry docs;
    let src = query_source file expr in
    match Lang.Parser.parse_program src with
    | exception Lang.Parser.Error { line; col; msg } ->
      Printf.eprintf "parse error at %d:%d: %s\n" line col msg;
      1
    | p -> (
      let diagnostics = Lang.Static.check_program p in
      List.iter
        (fun d -> Format.printf "%a@." Lang.Static.pp_diagnostic d)
        diagnostics;
      if Lang.Static.errors diagnostics <> [] then 1
      else
      match Fixq.distributivity_verdicts ~registry p with
      | None ->
        print_endline "the query contains no inflationary fixed point";
        0
      | Some (syn, alg) ->
        Printf.printf "syntactic check (Figure 5): %s\n"
          (if syn then "distributive — Delta applies" else "not established");
        Printf.printf "algebraic check (∪ push-up): %s\n"
          (match alg with
          | Some true -> "distributive — µ∆ applies"
          | Some false -> "not distributive"
          | None -> "body outside the compilable subset");
        Printf.printf "SQL:1999 rendering: %s\n"
          (match Fixq.sql_of_first_ifp ~registry p with
          | Some (Ok _) -> "renderable — WITH RECURSIVE applies"
          | Some (Error reason) -> "not renderable (" ^ reason ^ ")"
          | None -> "body outside the compilable subset");
        0)
  in
  let term = Term.(const action $ file_arg $ expr_arg $ docs_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Report both distributivity verdicts for the first IFP.")
    term

let lint_cmd =
  let module Json = Fixq_service.Json in
  let module Analyze = Fixq_analysis.Analyze in
  let module Diag = Fixq_analysis.Diag in
  let format_arg =
    Arg.(value
         & opt
             (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
             `Text
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:
               "Output format: 'text' (one line per finding), 'json', or \
                'sarif' (SARIF 2.1.0, for code-scanning upload).")
  in
  let fix_hints_arg =
    Arg.(value & flag
         & info [ "fix-hints" ]
             ~doc:
               "Apply the Section-3.2 distributivity hint to every \
                hint-repairable IFP, re-run both checkers on the result, \
                and print the rewritten query.")
  in
  let diag_json (d : Diag.t) =
    let (line, col) = match d.Diag.loc with Some lc -> lc | None -> (0, 0) in
    Json.Obj
      [ ("severity", Json.Str (Diag.severity_string d.Diag.severity));
        ("code", Json.Str d.Diag.code);
        ("line", Json.of_int line);
        ("col", Json.of_int col);
        ("context", Json.Str d.Diag.context);
        ("message", Json.Str d.Diag.message) ]
  in
  let sarif_string ~artifact diagnostics =
    let level (d : Diag.t) =
      match Diag.severity_string d.Diag.severity with
      | "error" -> "error"
      | "warning" -> "warning"
      | _ -> "note"
    in
    let rules =
      List.sort_uniq compare
        (List.map (fun (d : Diag.t) -> d.Diag.code) diagnostics)
    in
    let result (d : Diag.t) =
      let (line, col) =
        match d.Diag.loc with Some lc -> lc | None -> (1, 1)
      in
      Json.Obj
        [ ("ruleId", Json.Str d.Diag.code);
          ("level", Json.Str (level d));
          ("message", Json.Obj [ ("text", Json.Str d.Diag.message) ]);
          ("locations",
           Json.List
             [ Json.Obj
                 [ ("physicalLocation",
                    Json.Obj
                      [ ("artifactLocation",
                         Json.Obj [ ("uri", Json.Str artifact) ]);
                        ("region",
                         Json.Obj
                           [ ("startLine", Json.of_int (max 1 line));
                             ("startColumn", Json.of_int (max 1 col)) ]) ])
                 ] ]) ]
    in
    Json.to_string
      (Json.Obj
         [ ("version", Json.Str "2.1.0");
           ("$schema",
            Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
           ("runs",
            Json.List
              [ Json.Obj
                  [ ("tool",
                     Json.Obj
                       [ ("driver",
                          Json.Obj
                            [ ("name", Json.Str "fixq");
                              ("rules",
                               Json.List
                                 (List.map
                                    (fun c -> Json.Obj [ ("id", Json.Str c) ])
                                    rules)) ]) ]);
                    ("results", Json.List (List.map result diagnostics)) ]
              ]) ])
  in
  let push_of registry p =
    (* Compiling the first IFP body may evaluate the program up to that
       site; missing documents or interpreter-only bodies just mean
       there is no algebraic verdict to lint. *)
    match Fixq.plan_of_first_ifp ~registry ~max_iterations:10_000 p with
    | Some (fix_id, plan) ->
      Some (Fixq_algebra.Push.check ~fix_id plan)
    | None -> None
    | exception _ -> None
  in
  let verdicts registry stratified p =
    (* both checkers, for confirming a --fix-hints repair *)
    let syntactic =
      match (Analyze.analyze ~stratified p).Analyze.ifps with
      | [] -> false
      | r :: _ -> r.Analyze.syntactic
    in
    let algebraic =
      Option.map
        (fun o -> o.Fixq_algebra.Push.distributive)
        (push_of registry p)
    in
    (syntactic, algebraic)
  in
  let action file expr docs stratified format fix_hints =
    let registry = Xdm.Doc_registry.create () in
    load_docs registry docs;
    let src = query_source file expr in
    let artifact =
      match (file, expr) with
      | (_, Some _) -> "<expr>"
      | (Some f, None) -> f
      | (None, None) -> "<stdin>"
    in
    let fail_parse ~line ~col msg =
      let d = Analyze.parse_error_diag ~line ~col msg in
      (match format with
      | `Text -> print_endline (Diag.to_text d)
      | `Json ->
        print_endline
          (Json.to_string
             (Json.Obj [ ("diagnostics", Json.List [ diag_json d ]) ]))
      | `Sarif -> print_endline (sarif_string ~artifact [ d ]));
      1
    in
    match Lang.Parser.parse_program_spans src with
    | exception Lang.Parser.Error { line; col; msg } ->
      fail_parse ~line ~col msg
    | exception Lang.Lexer.Error { pos; msg } ->
      let (line, col) = Lang.Lexer.line_col_of src pos in
      fail_parse ~line ~col msg
    | (p, spans) ->
      let analysis = Analyze.analyze ~stratified ~spans p in
      let push = push_of registry p in
      let diagnostics =
        let push_block =
          match (push, analysis.Analyze.ifps) with
          | (Some o, r :: _) -> (
            match Analyze.push_block_diag ~spans r o with
            | Some d -> [ d ]
            | None -> [])
          | _ -> []
        in
        (* the cost analyzer's FQ050–FQ054 findings lint alongside the
           structural ones *)
        let cost =
          (cost_report ~spans registry p).Fixq_cost.Estimate.diagnostics
        in
        List.stable_sort Diag.compare
          (analysis.Analyze.diagnostics @ push_block @ cost)
      in
      let errors =
        List.length (List.filter Diag.is_error diagnostics)
      in
      let fixed =
        if not fix_hints then None
        else
          let (p', applied) = Analyze.apply_hints p analysis in
          if applied = 0 then None
          else
            let src' = Lang.Pretty.program_to_string p' in
            let (syn, alg) = verdicts registry stratified p' in
            Some (src', applied, syn, alg)
      in
      (match format with
      | `Text ->
        List.iter (fun d -> print_endline (Diag.to_text d)) diagnostics;
        List.iter
          (fun (r : Analyze.ifp_report) ->
            Printf.printf
              "ifp $%s (%s)%s: divergence=%s syntactic=%s%s\n" r.Analyze.var
              r.Analyze.context
              (match r.Analyze.loc with
              | Some (l, c) -> Printf.sprintf " at %d:%d" l c
              | None -> "")
              (Analyze.divergence_string r.Analyze.divergence)
              (if r.Analyze.syntactic then "distributive" else "blamed")
              (match push with
              | Some o when r.Analyze.index = 0 ->
                Printf.sprintf " algebraic=%s"
                  (if o.Fixq_algebra.Push.distributive then "distributive"
                   else "blocked")
              | _ -> ""))
          analysis.Analyze.ifps;
        (match fixed with
        | None ->
          if fix_hints then
            print_endline "fix-hints: nothing to repair"
        | Some (src', applied, syn, alg) ->
          Printf.printf "fix-hints: applied to %d fixed point(s)\n" applied;
          Printf.printf "fix-hints: syntactic after repair: %s\n"
            (if syn then "distributive" else "still not established");
          Printf.printf "fix-hints: algebraic after repair: %s\n"
            (match alg with
            | Some true -> "distributive"
            | Some false -> "still blocked"
            | None -> "no compilable plan");
          print_endline src')
      | `Json ->
        let ifp_json (r : Analyze.ifp_report) =
          let (line, col) =
            match r.Analyze.loc with Some lc -> lc | None -> (0, 0)
          in
          Json.Obj
            ([ ("var", Json.Str r.Analyze.var);
               ("context", Json.Str r.Analyze.context);
               ("line", Json.of_int line);
               ("col", Json.of_int col);
               ("divergence",
                Json.Str (Analyze.divergence_string r.Analyze.divergence));
               ("node_only",
                Json.Bool
                  (r.Analyze.node_only_seed && r.Analyze.node_only_body));
               ("syntactic", Json.Bool r.Analyze.syntactic);
               ("hint_repairable", Json.Bool r.Analyze.hint_repairable) ]
            @ (match r.Analyze.blame with
              | None -> []
              | Some b ->
                [ ("blame_rule", Json.Str b.Lang.Distributivity.rule);
                  ("blame_reason", Json.Str b.Lang.Distributivity.reason) ])
            @
            match push with
            | Some o when r.Analyze.index = 0 ->
              [ ("algebraic", Json.Bool o.Fixq_algebra.Push.distributive) ]
              @ (match o.Fixq_algebra.Push.blocking with
                | Some b -> [ ("blocking", Json.Str b) ]
                | None -> [])
            | _ -> [])
        in
        let fixed_json =
          match fixed with
          | None -> []
          | Some (src', applied, syn, alg) ->
            [ ("fixed",
               Json.Obj
                 [ ("applied", Json.of_int applied);
                   ("syntactic", Json.Bool syn);
                   ("algebraic", Json.of_bool_opt alg);
                   ("query", Json.Str src') ]) ]
        in
        print_endline
          (Json.to_string
             (Json.Obj
                ([ ("diagnostics", Json.List (List.map diag_json diagnostics));
                   ("ifps",
                    Json.List (List.map ifp_json analysis.Analyze.ifps));
                   ("errors", Json.of_int errors) ]
                @ fixed_json)))
      | `Sarif -> print_endline (sarif_string ~artifact diagnostics));
      if errors > 0 then 1 else 0
  in
  let term =
    Term.(const action $ file_arg $ expr_arg $ docs_arg $ stratified_arg
          $ format_arg $ fix_hints_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis with located, coded diagnostics: lint rules, \
          distributivity blame, divergence classification, and \
          auto-applicable distributivity hints.")
    term

let plan_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of ASCII.")
  in
  let sql_arg =
    Arg.(value & flag
         & info [ "sql" ]
             ~doc:
               "Print the SQL:1999 WITH RECURSIVE rendering of the first \
                IFP site (with a legend of the materialized document \
                relations), or the reason it has none.")
  in
  let action file expr docs dot sql =
    let registry = Xdm.Doc_registry.create () in
    load_docs registry docs;
    let src = query_source file expr in
    if sql then
      match Fixq.sql_of_first_ifp ~registry (Lang.Parser.parse_program src) with
      | None ->
        Printf.eprintf "no compilable IFP body found\n";
        1
      | Some (Error reason) ->
        Printf.printf "not renderable: %s\n" reason;
        0
      | Some (Ok r) ->
        print_endline r.Fixq_algebra.Render_sql.sql;
        List.iter
          (fun l -> Printf.printf "-- %s\n" l)
          (Fixq_algebra.Render_sql.legend r);
        0
    else
      match Fixq.plan_of_first_ifp ~registry (Lang.Parser.parse_program src) with
      | None ->
        Printf.eprintf "no compilable IFP body found\n";
        1
      | Some (fix_id, plan) ->
        if dot then print_string (Fixq_algebra.Render.to_dot plan)
        else begin
          let cards = Fixq_cost.Estimate.plan_cards ~registry plan in
          let annot p =
            Some ("card " ^ Fixq_cost.Estimate.interval_string (cards p))
          in
          print_string
            (Fixq_algebra.Render.to_ascii_annotated ~annot plan);
          let o = Fixq_algebra.Push.check ~fix_id plan in
          Format.printf "%a@." Fixq_algebra.Push.pp_outcome o
        end;
        0
  in
  let term =
    Term.(const action $ file_arg $ expr_arg $ docs_arg $ dot_arg $ sql_arg)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Print the algebra plan of the first IFP body.")
    term

let explain_cmd =
  let template_arg =
    Arg.(value
         & opt
             (some
                (enum
                   [ ("naive", `Tnaive); ("delta", `Tdelta);
                     ("hint", `Thint) ]))
             None
         & info [ "template" ] ~docv:"KIND"
             ~doc:
               "Instead of the cost report, print the query after a \
                rewrite: 'naive' (the Figure 2 fix/rec templates), \
                'delta' (Figure 4), or 'hint' (the Section 3.2 \
                distributivity hint).")
  in
  let action file expr docs template =
    let src = query_source file expr in
    match Lang.Parser.parse_program_spans src with
    | exception Lang.Parser.Error { line; col; msg } ->
      Printf.eprintf "parse error at %d:%d: %s\n" line col msg;
      1
    | (p, spans) -> (
      match template with
      | Some template ->
        let rewritten =
          match template with
          | `Tnaive -> Lang.Rewrite.desugar_naive p
          | `Tdelta -> Lang.Rewrite.desugar_delta p
          | `Thint -> Lang.Rewrite.hint_program p
        in
        print_endline (Lang.Pretty.program_to_string rewritten);
        0
      | None ->
        let registry = Xdm.Doc_registry.create () in
        load_docs registry docs;
        let report = cost_report ~spans registry p in
        print_string (Fixq_cost.Estimate.to_text report);
        0)
  in
  let term =
    Term.(const action $ file_arg $ expr_arg $ docs_arg $ template_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print the static cost report — per-operator cardinality \
          intervals from the document synopses, the certified fixpoint \
          round bound when one is derivable, and the per-engine cost \
          estimates behind --engine auto. With --template, instead \
          print the query rewritten into the paper's recursive-function \
          templates (Figures 2/4) or the distributivity hint.")
    term

(* Shared by serve and cluster: activate a fault-injection schedule
   from --chaos/--chaos-log, falling back to FIXQ_CHAOS/FIXQ_CHAOS_LOG
   so worker processes pick a schedule up from their environment. *)
let setup_chaos ~chaos ~chaos_log =
  let r =
    match chaos with
    | Some spec -> Fixq_chaos.configure spec
    | None -> (
      match Sys.getenv_opt "FIXQ_CHAOS" with
      | Some s when String.trim s <> "" -> Fixq_chaos.configure s
      | _ -> Ok ())
  in
  (match
     ( chaos_log,
       match Sys.getenv_opt "FIXQ_CHAOS_LOG" with
       | Some p when p <> "" -> Some p
       | _ -> None )
   with
  | (Some p, _) | (None, Some p) -> Fixq_chaos.set_log (Some p)
  | (None, None) -> ());
  r

let chaos_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"SCHEDULE"
           ~doc:
             "Deterministic fault-injection schedule, e.g. \
              'seed=42,transport.recv=drop:0.1,fixpoint.round=oom@3'. \
              Items are comma-separated: seed=N, or \
              point=kind[:prob][@nth][#max] with points transport.send, \
              transport.recv, coordinator.scatter, supervisor.ping, \
              server.handle, fixpoint.round, store.read, store.patch, \
              store.wal, store.snapshot, coordinator.rebalance and kinds \
              drop, truncate, kill, oom, delayMS. Falls back to \
              \\$FIXQ_CHAOS.")

let chaos_log_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos-log" ] ~docv:"PATH"
           ~doc:
             "Append fired chaos events ('pid seq point fault' lines) to \
              this file; appends are atomic, so entries survive injected \
              SIGKILLs. Falls back to \\$FIXQ_CHAOS_LOG.")

let max_heap_arg =
  Arg.(value & opt (some int) None
       & info [ "max-heap-mb" ] ~docv:"MB"
           ~doc:
             "Per-request major-heap growth budget; a request growing the \
              heap past it is aborted at the next fixpoint round with a \
              structured error (caches stay intact).")

let shed_heap_arg =
  Arg.(value & opt (some int) None
       & info [ "shed-heap-mb" ] ~docv:"MB"
           ~doc:
             "Load-shedding watermark: reject new query work (with a \
              retry_after_ms hint) while the major heap exceeds this.")

let max_pending_arg =
  Arg.(value & opt (some int) None
       & info [ "max-pending" ] ~docv:"N"
           ~doc:
             "Load-shedding cap: reject new query work while this many \
              requests are already in flight.")

let max_call_depth_arg =
  Arg.(value & opt (some int) None
       & info [ "max-call-depth" ] ~docv:"N"
           ~doc:"User-function recursion depth bound per request.")

let retry_after_arg =
  Arg.(value & opt int 200
       & info [ "retry-after-ms" ] ~docv:"MS"
           ~doc:"retry_after_ms hint attached to shed responses.")

let max_cost_arg =
  Arg.(value & opt (some float) None
       & info [ "max-cost" ] ~docv:"UNITS"
           ~doc:
             "Admission envelope in estimated work units: an unbudgeted \
              query whose predicted cost exceeds this is refused with a \
              structured FQ055 error; a budgeted one runs with its \
              iteration cap clamped to the certified round bound.")

let governor_config ~max_heap_mb ~shed_heap_mb ~max_pending ~max_call_depth
    ~max_cost ~retry_after_ms =
  { Fixq_service.Governor.max_heap_mb; shed_heap_mb; max_pending;
    max_call_depth; max_cost; retry_after_ms }

let serve_cmd =
  let module Service = Fixq_service in
  let pipe_arg =
    Arg.(value & flag
         & info [ "pipe" ]
             ~doc:
               "Serve newline-delimited JSON on stdin/stdout instead of a \
                socket (one response line per request line).")
  in
  let socket_arg =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(value & opt (some string) None
         & info [ "socket"; "s" ] ~docv:"PATH" ~doc)
  in
  let workers_arg =
    let doc = "Worker threads for request handling." in
    Arg.(value & opt int 1 & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  let prepared_cache_arg =
    let doc = "Prepared-query LRU cache capacity (entries)." in
    Arg.(value & opt int 64 & info [ "prepared-cache" ] ~docv:"N" ~doc)
  in
  let result_cache_arg =
    let doc = "Result LRU cache capacity (entries)." in
    Arg.(value & opt int 256 & info [ "result-cache" ] ~docv:"N" ~doc)
  in
  let max_iterations_arg =
    let doc =
      "Default per-request IFP iteration budget; exceeding it yields an \
       error response, not a dead server."
    in
    Arg.(value & opt int 100_000 & info [ "max-iterations" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Default per-request wall-clock budget in milliseconds (checked once \
       per fixpoint round)."
    in
    Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let state_dir_arg =
    let doc =
      "Durability directory: write-ahead-log every accepted document op \
       and snapshot the store there, and recover from it on start \
       (snapshot + WAL tail, tolerating torn tails)."
    in
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let snapshot_threshold_arg =
    let doc =
      "Snapshot (and truncate the WAL) every N logged ops; 0 disables \
       op-triggered snapshots."
    in
    Arg.(value & opt int 64 & info [ "snapshot-threshold" ] ~docv:"N" ~doc)
  in
  let action docs pipe socket workers prepared_cap result_cap max_iterations
      timeout_ms stratified chaos chaos_log max_heap_mb shed_heap_mb
      max_pending max_call_depth max_cost retry_after_ms state_dir
      snapshot_threshold =
    match setup_chaos ~chaos ~chaos_log with
    | Error msg ->
      Printf.eprintf "fixq serve: %s\n" msg;
      2
    | Ok () -> (
    let registry = Xdm.Doc_registry.create () in
    load_docs registry docs;
    let config =
      { Service.Server.workers; prepared_capacity = prepared_cap;
        result_capacity = result_cap; max_iterations; timeout_ms; stratified;
        governor =
          governor_config ~max_heap_mb ~shed_heap_mb ~max_pending
            ~max_call_depth ~max_cost ~retry_after_ms;
        state_dir; snapshot_threshold }
    in
    let store = Service.Store.create ~registry () in
    let server = Service.Server.create ~config ~store () in
    match (pipe, socket) with
    | (true, _) ->
      Service.Server.serve_pipe server stdin stdout;
      0
    | (false, Some path) -> (
      Printf.eprintf "fixq serve: listening on %s\n%!" path;
      match Service.Server.serve_socket server ~path with
      | () -> 0
      | exception Service.Server.Socket_in_use p ->
        Printf.eprintf
          "fixq serve: %s is in use by a live server (stop it or pick \
           another path)\n"
          p;
        1)
    | (false, None) ->
      Printf.eprintf "serve: pass --pipe or --socket PATH\n";
      2)
  in
  let term =
    Term.(const action $ docs_arg $ pipe_arg $ socket_arg $ workers_arg
          $ prepared_cache_arg $ result_cache_arg $ max_iterations_arg
          $ timeout_arg $ stratified_arg $ chaos_arg $ chaos_log_arg
          $ max_heap_arg $ shed_heap_arg $ max_pending_arg
          $ max_call_depth_arg $ max_cost_arg $ retry_after_arg
          $ state_dir_arg $ snapshot_threshold_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent query service: prepared-query and result \
          caches over a versioned document store, speaking \
          newline-delimited JSON ({\"op\":\"run\"|\"check\"|\"plan\"|\
          \"load-doc\"|\"unload-doc\"|\"stats\"|\"ping\"|\"shutdown\"}).")
    term

let cluster_cmd =
  let module C = Fixq_cluster in
  let module Service = Fixq_service in
  let pipe_arg =
    Arg.(value & flag
         & info [ "pipe" ]
             ~doc:"Coordinate on stdin/stdout instead of a socket.")
  in
  let socket_arg =
    let doc = "Unix-domain socket path for the coordinator." in
    Arg.(value & opt (some string) None
         & info [ "socket"; "s" ] ~docv:"PATH" ~doc)
  in
  let workers_arg =
    let doc = "Worker processes to spawn." in
    Arg.(value & opt int 2 & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  let replication_arg =
    let doc = "Replicas per document (clamped to the worker count)." in
    Arg.(value & opt int 2 & info [ "replication"; "r" ] ~docv:"N" ~doc)
  in
  let worker_dir_arg =
    let doc = "Directory for worker sockets and logs (default: a fresh /tmp dir)." in
    Arg.(value & opt (some string) None & info [ "worker-dir" ] ~docv:"DIR" ~doc)
  in
  let no_scatter_arg =
    Arg.(value & flag
         & info [ "no-scatter" ]
             ~doc:
               "Disable seed-partitioned scatter-gather; route every query \
                whole to one worker.")
  in
  let retries_arg =
    let doc = "Re-sends per request leg before failing over." in
    Arg.(value & opt int 2 & info [ "retries"; "retry-max" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Base retry backoff in milliseconds (doubles per retry, jittered)." in
    Arg.(value & opt float 50.
         & info [ "backoff-ms"; "retry-base-ms" ] ~docv:"MS" ~doc)
  in
  let jitter_arg =
    let doc =
      "Retry jitter as a fraction of the current backoff (0 disables, \
       making retry timing deterministic)."
    in
    Arg.(value & opt float 0.5 & info [ "retry-jitter" ] ~docv:"FRACTION" ~doc)
  in
  let compact_arg =
    let doc =
      "Fold a document's request-line history into one materialized load \
       once it exceeds N lines (0 disables compaction)."
    in
    Arg.(value & opt int 16 & info [ "compact-patches" ] ~docv:"N" ~doc)
  in
  let cluster_state_dir_arg =
    let doc =
      "Per-worker durability: worker NAME write-ahead-logs and snapshots \
       under DIR/NAME, and recovers from it when respawned."
    in
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let health_arg =
    let doc = "Health-check interval in milliseconds (ping, reap, respawn)." in
    Arg.(value & opt float 500. & info [ "health-interval-ms" ] ~docv:"MS" ~doc)
  in
  let max_iterations_arg =
    let doc = "Default per-request IFP iteration budget on every worker." in
    Arg.(value & opt int 100_000 & info [ "max-iterations" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Default per-request wall-clock budget in milliseconds." in
    Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let min_slice_cost_arg =
    let doc =
      "Cost-sized scatter: cap the scatter fan-out so each leg carries \
       at least this much estimated work (0 disables — every eligible \
       replica gets a leg, the legacy sizing)."
    in
    Arg.(value & opt float 0. & info [ "min-slice-cost" ] ~docv:"UNITS" ~doc)
  in
  let action docs pipe socket workers replication worker_dir no_scatter
      retries backoff_ms jitter compact_patches state_dir health_ms
      max_iterations timeout_ms min_slice_cost stratified chaos
      chaos_log max_heap_mb shed_heap_mb max_pending max_call_depth
      max_cost retry_after_ms =
    (* the coordinator process hosts the transport/scatter/ping points;
       the same schedule is forwarded to every worker (below), where the
       server.handle/fixpoint.round/store.read points live *)
    match setup_chaos ~chaos ~chaos_log with
    | Error msg ->
      Printf.eprintf "fixq cluster: %s\n" msg;
      2
    | Ok () -> (
    let dir =
      match worker_dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "fixq-cluster-%d" (Unix.getpid ()))
    in
    let opt_int flag = function
      | Some n -> [ flag; string_of_int n ]
      | None -> []
    in
    let command ~name ~socket =
      Array.of_list
        ([ Sys.executable_name; "serve"; "--socket"; socket; "--workers"; "4";
           "--max-iterations"; string_of_int max_iterations ]
        @ (match state_dir with
          | Some d -> [ "--state-dir"; Filename.concat d name ]
          | None -> [])
        @ (match timeout_ms with
          | Some t -> [ "--timeout-ms"; string_of_float t ]
          | None -> [])
        @ (if stratified then [ "--stratified" ] else [])
        @ (match chaos with Some s -> [ "--chaos"; s ] | None -> [])
        @ (match chaos_log with Some p -> [ "--chaos-log"; p ] | None -> [])
        @ opt_int "--max-heap-mb" max_heap_mb
        @ opt_int "--shed-heap-mb" shed_heap_mb
        @ opt_int "--max-pending" max_pending
        @ opt_int "--max-call-depth" max_call_depth
        @ (match max_cost with
          | Some c -> [ "--max-cost"; string_of_float c ]
          | None -> [])
        @ [ "--retry-after-ms"; string_of_int retry_after_ms ])
    in
    let config =
      { C.Coordinator.replication; scatter = not no_scatter; retries;
        backoff_ms; jitter; compact_patches; min_slice_cost;
        (* transport read budget: the workers' own budget plus slack,
           unbounded when the workers are unbudgeted *)
        timeout_ms = Option.map (fun t -> (t *. 2.) +. 5000.) timeout_ms }
    in
    match
      C.Cluster.launch ~dir ~count:workers ~command ~config
        ~health_interval_ms:health_ms ()
    with
    | exception Failure msg ->
      Printf.eprintf "fixq cluster: %s\n" msg;
      1
    | cluster -> (
      let handle = C.Cluster.handle_line cluster in
      (* --doc preloads route through the coordinator like any client
         load-doc, so they land on their rendezvous replicas *)
      let preload_failed =
        List.exists
          (fun spec ->
            let (uri, path) =
              match String.index_opt spec '=' with
              | Some i ->
                ( String.sub spec 0 i,
                  String.sub spec (i + 1) (String.length spec - i - 1) )
              | None -> (spec, spec)
            in
            let (resp, _) =
              handle
                (Service.Json.to_string
                   (Service.Json.Obj
                      [ ("op", Service.Json.Str "load-doc");
                        ("uri", Service.Json.Str uri);
                        ("path", Service.Json.Str path) ]))
            in
            match Service.Json.parse resp with
            | j
              when Service.Json.bool_opt (Service.Json.member "ok" j)
                   = Some false ->
              Printf.eprintf "fixq cluster: --doc %s: %s\n" uri
                (Option.value ~default:"load failed"
                   (Service.Json.str_opt (Service.Json.member "error" j)));
              true
            | _ -> false
            | exception Service.Json.Parse_error _ -> true)
          docs
      in
      if preload_failed then begin
        C.Cluster.shutdown cluster;
        1
      end
      else
        let serve () =
          match (pipe, socket) with
          | (true, _) ->
            (* sequential on purpose: deterministic response order; the
               parallelism lives in the scatter legs and the workers *)
            Service.Server.serve_pipe_with ~handle ~workers:1 stdin stdout;
            0
          | (false, Some path) -> (
            Printf.eprintf "fixq cluster: %d workers in %s, listening on %s\n%!"
              workers dir path;
            match
              Service.Server.serve_socket_with ~handle ~workers:4 ~path ()
            with
            | () -> 0
            | exception Service.Server.Socket_in_use p ->
              Printf.eprintf
                "fixq cluster: %s is in use by a live server (stop it or \
                 pick another path)\n"
                p;
              1)
          | (false, None) ->
            Printf.eprintf "cluster: pass --pipe or --socket PATH\n";
            2
        in
        let code = serve () in
        C.Cluster.shutdown cluster;
        code))
  in
  let term =
    Term.(const action $ docs_arg $ pipe_arg $ socket_arg $ workers_arg
          $ replication_arg $ worker_dir_arg $ no_scatter_arg $ retries_arg
          $ backoff_arg $ jitter_arg $ compact_arg $ cluster_state_dir_arg
          $ health_arg $ max_iterations_arg $ timeout_arg
          $ min_slice_cost_arg $ stratified_arg $ chaos_arg $ chaos_log_arg
          $ max_heap_arg $ shed_heap_arg $ max_pending_arg
          $ max_call_depth_arg $ max_cost_arg $ retry_after_arg)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run a multi-process cluster: N fixq-serve workers behind a \
          coordinator that shards documents by rendezvous hashing, \
          scatter-gathers distributive fixed points across replicas, and \
          respawns crashed workers.")
    term

let client_cmd =
  let module C = Fixq_cluster in
  let socket_arg =
    let doc = "Unix-domain socket of a fixq serve or fixq cluster." in
    Arg.(required & opt (some string) None
         & info [ "socket"; "s" ] ~docv:"PATH" ~doc)
  in
  let timeout_arg =
    let doc = "Per-response read timeout in milliseconds." in
    Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let action socket timeout_ms patches =
    let tr = C.Transport.create socket in
    (* Annotated run responses additionally render their
       node @ annotation pairs, so a terminal client sees the semiring
       output without parsing JSON. *)
    let module Json = Fixq_service.Json in
    let print_annotations resp =
      match Json.parse resp with
      | Json.Obj fields -> (
        match (List.assoc_opt "semiring" fields,
               List.assoc_opt "annotations" fields) with
        | Some (Json.Str kind), Some (Json.List rows) ->
          Printf.printf "-- accumulate by %s --\n" kind;
          List.iter
            (fun row ->
              match (Json.str_opt (Json.member "x" row),
                     Json.str_opt (Json.member "a" row)) with
              | Some x, Some a -> Printf.printf "%s @ %s\n" x a
              | _ -> ())
            rows
        | _ -> ())
      | _ | (exception _) -> ()
    in
    let send line =
      match C.Transport.call ?timeout_ms tr line with
      | Ok resp ->
        print_endline resp;
        print_annotations resp;
        true
      | Error e ->
        Printf.eprintf "fixq client: %s\n" e;
        false
    in
    (* --patch requests go first, then the stdin request loop *)
    let patched =
      List.for_all
        (fun (uri, op) -> send (patch_request_line uri op))
        (parse_patch_specs patches)
    in
    let rec loop () =
      match input_line stdin with
      | exception End_of_file -> 0
      | line when String.trim line = "" -> loop ()
      | line -> if send line then loop () else 1
    in
    let code = if patched then loop () else 1 in
    C.Transport.close tr;
    code
  in
  let term = Term.(const action $ socket_arg $ timeout_arg $ patch_arg) in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Forward newline-delimited JSON requests from stdin to a serve or \
          cluster socket, one response line per request.")
    term

let generate_cmd =
  let kind_arg =
    Arg.(required
         & pos 0
             (some (enum [ ("xmark", `Xmark); ("curriculum", `Curriculum);
                           ("play", `Play); ("hospital", `Hospital) ]))
             None
         & info [] ~docv:"KIND" ~doc:"xmark | curriculum | play | hospital")
  in
  let size_arg =
    Arg.(value & opt float 0.002
         & info [ "size" ] ~docv:"N"
             ~doc:"Scale factor (xmark) or element count (others).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let action kind size seed =
    let doc =
      match kind with
      | `Xmark -> W.Xmark.generate { W.Xmark.default with scale = size; seed }
      | `Curriculum ->
        W.Curriculum.generate
          { W.Curriculum.default with courses = int_of_float size; seed }
      | `Play -> W.Shakespeare.generate { W.Shakespeare.default with seed }
      | `Hospital ->
        W.Hospital.generate
          { W.Hospital.default with total = int_of_float size; seed }
    in
    print_string (Xdm.Serializer.to_string ~indent:true doc);
    print_newline ();
    0
  in
  let term = Term.(const action $ kind_arg $ size_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a benchmark document on stdout.")
    term

let () =
  let info =
    Cmd.info "fixq" ~version:"1.0.0"
      ~doc:"An inflationary fixed point operator for XQuery (ICDE 2008 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; check_cmd; lint_cmd; plan_cmd; explain_cmd; generate_cmd;
            repl_cmd; serve_cmd; cluster_cmd; client_cmd ]))
